//! Tag-only cache models: a banked set-associative cache with true LRU
//! stacks (L1) and a sectored variant (L2).
//!
//! Both caches store full line addresses rather than split tags — the
//! model is timing-only, so there is no data array, and keeping the
//! whole line address makes the LRU stacks directly inspectable in
//! tests.

/// A banked, set-associative, tag-only cache with LRU replacement.
///
/// Banks partition the line address space by the low line bits, so
/// total capacity is `banks * sets * ways` lines. Each set is an
/// explicit LRU stack: index 0 is the most recently used way.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    bank_mask: u64,
    bank_shift: u32,
    set_mask: u64,
    sets_per_bank: u64,
}

impl SetAssocCache {
    /// Creates an empty cache. `sets` and `banks` must be powers of two
    /// and `ways >= 1` (validated by the caller's config).
    #[must_use]
    pub fn new(sets: u32, ways: u32, banks: u32) -> Self {
        SetAssocCache {
            sets: vec![Vec::new(); (sets * banks) as usize],
            ways: ways as usize,
            bank_mask: u64::from(banks - 1),
            bank_shift: banks.trailing_zeros(),
            set_mask: u64::from(sets - 1),
            sets_per_bank: u64::from(sets),
        }
    }

    fn set_index(&self, line: u64) -> usize {
        let bank = line & self.bank_mask;
        let set = (line >> self.bank_shift) & self.set_mask;
        (bank * self.sets_per_bank + set) as usize
    }

    /// Looks up `line`; on a hit, promotes it to most-recently-used.
    pub fn probe_and_touch(&mut self, line: u64) -> bool {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        match set.iter().position(|&l| l == line) {
            Some(pos) => {
                let l = set.remove(pos);
                set.insert(0, l);
                true
            }
            None => false,
        }
    }

    /// Installs `line` as most-recently-used, returning the evicted
    /// line if the set was full. Installing a resident line just
    /// promotes it.
    pub fn install(&mut self, line: u64) -> Option<u64> {
        let ways = self.ways;
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.insert(0, l);
            return None;
        }
        set.insert(0, line);
        if set.len() > ways {
            set.pop()
        } else {
            None
        }
    }

    /// Whether `line` is resident, without touching LRU state.
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_index(line)].contains(&line)
    }

    /// The LRU stack of the set holding `line`, most-recent first
    /// (exposed for property tests).
    #[must_use]
    pub fn stack_of(&self, line: u64) -> &[u64] {
        &self.sets[self.set_index(line)]
    }
}

/// One sectored line: a tag plus a valid bit per sector.
#[derive(Debug, Clone)]
struct SectorLine {
    tag: u64,
    valid: u64,
}

/// A set-associative sectored cache: one tag covers `sectors`
/// consecutive L1 lines, each validated independently. LRU is kept per
/// set over tags, like [`SetAssocCache`].
#[derive(Debug, Clone)]
pub struct SectoredCache {
    sets: Vec<Vec<SectorLine>>,
    ways: usize,
    set_mask: u64,
}

impl SectoredCache {
    /// Creates an empty sectored cache. `sets` must be a power of two.
    #[must_use]
    pub fn new(sets: u32, ways: u32) -> Self {
        SectoredCache {
            sets: vec![Vec::new(); sets as usize],
            ways: ways as usize,
            set_mask: u64::from(sets - 1),
        }
    }

    fn set_index(&self, tag: u64) -> usize {
        (tag & self.set_mask) as usize
    }

    /// Looks up sector `sector` of line `tag`; a hit needs both a tag
    /// match and a valid sector, and promotes the line to MRU.
    pub fn probe_and_touch(&mut self, tag: u64, sector: u32) -> bool {
        let idx = self.set_index(tag);
        let set = &mut self.sets[idx];
        match set.iter().position(|l| l.tag == tag) {
            Some(pos) if set[pos].valid & (1u64 << sector) != 0 => {
                let l = set.remove(pos);
                set.insert(0, l);
                true
            }
            _ => false,
        }
    }

    /// Installs sector `sector` of line `tag` as MRU. A tag miss claims
    /// a fresh line (evicting the LRU line's tag if the set is full,
    /// returned with its surviving sector mask); a tag hit just sets
    /// the sector bit.
    pub fn install(&mut self, tag: u64, sector: u32) -> Option<(u64, u64)> {
        let ways = self.ways;
        let idx = self.set_index(tag);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.tag == tag) {
            let mut l = set.remove(pos);
            l.valid |= 1u64 << sector;
            set.insert(0, l);
            return None;
        }
        set.insert(
            0,
            SectorLine {
                tag,
                valid: 1u64 << sector,
            },
        );
        if set.len() > ways {
            set.pop().map(|l| (l.tag, l.valid))
        } else {
            None
        }
    }

    /// Whether sector `sector` of line `tag` is resident and valid,
    /// without touching LRU state.
    #[must_use]
    pub fn contains(&self, tag: u64, sector: u32) -> bool {
        self.sets[self.set_index(tag)]
            .iter()
            .any(|l| l.tag == tag && l.valid & (1u64 << sector) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_stack_property_holds_under_seeded_access_stream() {
        // Reference model: per set, a list of lines in recency order.
        // The cache must evict exactly the least-recent resident line.
        let mut cache = SetAssocCache::new(4, 3, 1);
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut reference: std::collections::HashMap<usize, Vec<u64>> =
            std::collections::HashMap::new();
        for _ in 0..10_000 {
            // SplitMix64 step (self-contained to keep the crate dep-free).
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let line = (z ^ (z >> 31)) % 32;
            let set = (line & 3) as usize;
            let stack = reference.entry(set).or_default();

            let expect_hit = stack.contains(&line);
            assert_eq!(cache.probe_and_touch(line), expect_hit, "probe({line})");
            if expect_hit {
                let pos = stack.iter().position(|&l| l == line).unwrap();
                stack.remove(pos);
                stack.insert(0, line);
            } else {
                let evicted = cache.install(line);
                stack.insert(0, line);
                let expect_evicted = if stack.len() > 3 { stack.pop() } else { None };
                assert_eq!(evicted, expect_evicted, "evict on install({line})");
            }
            assert_eq!(cache.stack_of(line), &stack[..], "LRU stack of set {set}");
        }
    }

    #[test]
    fn banks_partition_the_line_space() {
        let mut cache = SetAssocCache::new(2, 1, 2);
        // Lines 0 and 1 go to different banks: neither evicts the other
        // even with a single way per set.
        cache.install(0);
        cache.install(1);
        assert!(cache.contains(0));
        assert!(cache.contains(1));
        // Line 8 aliases line 0 (same bank 0, same set) and evicts it.
        assert_eq!(cache.install(8), Some(0));
        assert!(!cache.contains(0));
    }

    #[test]
    fn sectored_hits_need_tag_and_sector() {
        let mut l2 = SectoredCache::new(4, 2);
        assert!(!l2.probe_and_touch(7, 0));
        l2.install(7, 0);
        assert!(l2.probe_and_touch(7, 0));
        // Same tag, different sector: miss until installed.
        assert!(!l2.probe_and_touch(7, 1));
        assert_eq!(l2.install(7, 1), None, "tag hit fills a sector in place");
        assert!(l2.probe_and_touch(7, 1));
        assert!(l2.contains(7, 0));
    }

    #[test]
    fn sectored_eviction_drops_all_sectors_of_the_lru_tag() {
        let mut l2 = SectoredCache::new(1, 2);
        l2.install(10, 0);
        l2.install(10, 1);
        l2.install(20, 0);
        // Tag 30 evicts tag 10 (LRU), taking both its sectors with it.
        let evicted = l2.install(30, 3);
        assert_eq!(evicted, Some((10, 0b11)));
        assert!(!l2.contains(10, 0));
        assert!(!l2.contains(10, 1));
        assert!(l2.contains(20, 0));
        assert!(l2.contains(30, 3));
    }
}
