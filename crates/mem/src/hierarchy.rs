//! The assembled two-level hierarchy: banked LRU L1 in front of a
//! sectored L2 with MSHR files at both levels and the DRAM interval
//! queue behind.
//!
//! Everything is computed at *issue time*: [`Hierarchy::load`] returns
//! the access's full latency immediately, and the resulting fill is
//! installed into the tag arrays when simulated time reaches its fill
//! cycle (lazily, via [`Hierarchy::advance`]). State is therefore a
//! pure function of the access history, which is what lets per-cycle,
//! fast-forwarding, and event-queue simulations agree bit-for-bit.

use crate::cache::{SectoredCache, SetAssocCache};
use crate::mshr::{L2MshrFile, MshrFile};
use crate::HierarchyConfig;

/// Cycles of DRAM-bandwidth slack before stores start reserving slots
/// (mirrors the legacy latency model's write buffer).
const WRITE_BUFFER_DEPTH_CYCLES: u64 = 512;

/// How a load was serviced — the telemetry-facing classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Serviced by the L1 tag array.
    L1Hit,
    /// Merged into an in-flight L1 MSHR entry for the same line.
    MshrMerge {
        /// The in-flight line.
        line: u64,
        /// The shared fill cycle every merged warp wakes at.
        fill_cycle: u64,
    },
    /// Primary miss: a fresh L1 MSHR entry was allocated.
    Miss {
        /// The missed line.
        line: u64,
        /// Cycle the fill arrives.
        fill_cycle: u64,
        /// Whether L2 serviced it (false = DRAM fetch).
        l2_hit: bool,
    },
}

/// Result of issuing one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadOutcome {
    /// Cycles until the data (and the warp's completion) arrives.
    pub latency: u32,
    /// How the access was serviced.
    pub kind: AccessKind,
}

/// Realized counters, all integers so they take part in bit-equality
/// checks across clock backends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Global loads issued.
    pub loads: u64,
    /// Loads serviced by the L1 tag array.
    pub l1_hits: u64,
    /// Loads that missed L1 (primary + merged).
    pub l1_misses: u64,
    /// Secondary misses merged into an in-flight MSHR entry.
    pub mshr_merges: u64,
    /// L1 fills installed.
    pub fills: u64,
    /// L2 lookups (one per primary L1 miss).
    pub l2_accesses: u64,
    /// L2 sector hits.
    pub l2_hits: u64,
    /// L2 sector misses (DRAM fetches).
    pub l2_misses: u64,
    /// Sector fetches that coalesced into an in-flight L2 line entry.
    pub l2_coalesced: u64,
    /// Global stores issued.
    pub stores: u64,
    /// Stores that hit L1 (write-through update).
    pub store_hits: u64,
    /// Peak L1 MSHR occupancy.
    pub l1_mshr_peak: u32,
    /// Peak L2 MSHR line-entry occupancy.
    pub l2_mshr_peak: u32,
}

/// The two-level hierarchy owned by one SM's memory subsystem.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    line_shift: u32,
    sector_mask: u64,
    sector_shift: u32,
    l1: SetAssocCache,
    l2: SectoredCache,
    l1_mshr: MshrFile,
    l2_mshr: L2MshrFile,
    dram_free_at: u64,
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds an empty hierarchy from a validated config.
    #[must_use]
    pub fn new(cfg: HierarchyConfig) -> Self {
        cfg.validate();
        Hierarchy {
            line_shift: cfg.line_size.trailing_zeros(),
            sector_mask: u64::from(cfg.l2_sectors - 1),
            sector_shift: cfg.l2_sectors.trailing_zeros(),
            l1: SetAssocCache::new(cfg.l1_sets, cfg.l1_ways, cfg.l1_banks),
            l2: SectoredCache::new(cfg.l2_sets, cfg.l2_ways),
            l1_mshr: MshrFile::new(cfg.l1_mshr_entries),
            l2_mshr: L2MshrFile::new(cfg.l2_mshr_entries, cfg.l2_sectors),
            dram_free_at: 0,
            stats: HierarchyStats::default(),
            cfg,
        }
    }

    /// The configuration this hierarchy was built from.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Installs every fill due by `cycle` into the tag arrays, in
    /// deterministic `(fill_cycle, line)` order. Idempotent; calling it
    /// once per span or once per cycle yields the same state.
    pub fn advance(&mut self, cycle: u64) {
        for (_, l2_line, sector) in self.l2_mshr.take_due(cycle) {
            self.l2.install(l2_line, sector);
        }
        let due = self.l1_mshr.take_due(cycle);
        self.stats.fills += due.len() as u64;
        for e in due {
            self.l1.install(e.line);
        }
    }

    /// Issue credits at `cycle`: how many new loads could allocate in
    /// both MSHR files. Conservative — a load that would merge is also
    /// held back at zero credits — so back-pressure always stalls and
    /// never drops.
    pub fn load_credits(&mut self, cycle: u64) -> u32 {
        self.advance(cycle);
        self.l1_mshr.free().min(self.l2_mshr.free())
    }

    /// Issues a global load of byte address `addr` at `cycle` and
    /// returns its full latency plus the servicing classification.
    ///
    /// # Panics
    ///
    /// Panics (in the MSHR files) if issued with zero
    /// [`Hierarchy::load_credits`] — the simulator must stall instead.
    pub fn load(&mut self, cycle: u64, addr: u64) -> LoadOutcome {
        self.advance(cycle);
        self.stats.loads += 1;
        let line = addr >> self.line_shift;
        if self.l1.probe_and_touch(line) {
            self.stats.l1_hits += 1;
            return LoadOutcome {
                latency: self.cfg.l1_latency,
                kind: AccessKind::L1Hit,
            };
        }
        self.stats.l1_misses += 1;
        if let Some(e) = self.l1_mshr.find_mut(line) {
            e.merges += 1;
            let fill_cycle = e.fill_cycle;
            self.stats.mshr_merges += 1;
            debug_assert!(fill_cycle > cycle, "in-flight fill must be in the future");
            return LoadOutcome {
                latency: (fill_cycle - cycle) as u32,
                kind: AccessKind::MshrMerge { line, fill_cycle },
            };
        }
        let (fill_cycle, l2_hit) = self.fetch_from_l2(cycle, line);
        self.l1_mshr.alloc(line, fill_cycle);
        self.stats.l1_mshr_peak = self.stats.l1_mshr_peak.max(self.l1_mshr.peak());
        LoadOutcome {
            latency: (fill_cycle - cycle) as u32,
            kind: AccessKind::Miss {
                line,
                fill_cycle,
                l2_hit,
            },
        }
    }

    /// Services a primary L1 miss at L2, returning the cycle the fill
    /// reaches L1 and whether L2 had the sector.
    fn fetch_from_l2(&mut self, cycle: u64, line: u64) -> (u64, bool) {
        self.stats.l2_accesses += 1;
        let l2_line = line >> self.sector_shift;
        let sector = (line & self.sector_mask) as u32;
        let through_l2 = cycle + u64::from(self.cfg.l1_latency + self.cfg.l2_latency);
        if self.l2.probe_and_touch(l2_line, sector) {
            self.stats.l2_hits += 1;
            return (through_l2, true);
        }
        self.stats.l2_misses += 1;
        if let Some(fill) = self.l2_mshr.sector_fill(l2_line, sector) {
            // The exact sector is already being fetched (reachable only
            // if L1 evicts a line while its refetch is in flight —
            // defensive, but deterministic if it ever happens).
            self.stats.l2_coalesced += 1;
            return (fill.max(through_l2), false);
        }
        let delay = self.reserve_dram_slot(cycle);
        let fill = through_l2 + u64::from(self.cfg.dram_latency) + delay;
        if self.l2_mshr.add_sector(l2_line, sector, fill) {
            self.stats.l2_coalesced += 1;
        }
        self.stats.l2_mshr_peak = self.stats.l2_mshr_peak.max(self.l2_mshr.peak());
        (fill, false)
    }

    /// Issues a global store at `cycle`: write-through, no-allocate.
    /// The store updates the L1 line in place on a hit and consumes
    /// DRAM bandwidth once the write buffer's slack is exhausted; the
    /// warp itself never waits on it.
    pub fn store(&mut self, cycle: u64, addr: u64) {
        self.advance(cycle);
        self.stats.stores += 1;
        let line = addr >> self.line_shift;
        if self.l1.probe_and_touch(line) {
            self.stats.store_hits += 1;
        }
        if self.dram_free_at <= cycle + WRITE_BUFFER_DEPTH_CYCLES {
            self.reserve_dram_slot(cycle);
        }
    }

    fn reserve_dram_slot(&mut self, cycle: u64) -> u64 {
        let start = self.dram_free_at.max(cycle);
        let delay = start - cycle;
        self.dram_free_at = start + u64::from(self.cfg.dram_interval);
        delay
    }

    /// Realized counters (peaks included).
    #[must_use]
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Loads currently waiting on fills (live L1 MSHR entries).
    #[must_use]
    pub fn outstanding_lines(&self) -> usize {
        self.l1_mshr.live()
    }

    /// End-of-run conservation check: drains every in-flight fill and
    /// asserts the cache-conservation invariants — every miss
    /// eventually fills, occupancy never exceeded capacity, and
    /// hits + misses == accesses.
    ///
    /// # Panics
    ///
    /// Panics when any invariant is violated.
    pub fn assert_conserved(&mut self, end_cycle: u64) {
        self.advance(end_cycle + u64::from(self.cfg.worst_case_latency()));
        assert_eq!(self.l1_mshr.live(), 0, "L1 MSHR not drained at end of run");
        assert_eq!(self.l2_mshr.live(), 0, "L2 MSHR not drained at end of run");
        assert_eq!(
            self.l1_mshr.allocs(),
            self.l1_mshr.retires(),
            "every L1 miss must eventually fill"
        );
        assert_eq!(
            self.l2_mshr.sector_fetches(),
            self.l2_mshr.sector_retires(),
            "every L2 sector fetch must eventually fill"
        );
        let s = &self.stats;
        assert_eq!(s.l1_hits + s.l1_misses, s.loads, "L1 hits+misses != loads");
        assert_eq!(
            s.l1_misses,
            s.mshr_merges + self.l1_mshr.allocs(),
            "misses must split into merges + allocations"
        );
        assert_eq!(
            s.l2_hits + s.l2_misses,
            s.l2_accesses,
            "L2 hits+misses != accesses"
        );
        assert!(
            s.l1_mshr_peak <= self.cfg.l1_mshr_entries,
            "L1 MSHR occupancy exceeded capacity"
        );
        assert!(
            s.l2_mshr_peak <= self.cfg.l2_mshr_entries,
            "L2 MSHR occupancy exceeded capacity"
        );
        assert_eq!(s.fills, self.l1_mshr.retires(), "fill accounting diverges");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::small_for_tests())
    }

    fn addr(line: u64) -> u64 {
        line * 64
    }

    #[test]
    fn first_touch_misses_then_hits_after_fill() {
        let mut h = hier();
        let out = h.load(0, addr(5));
        let AccessKind::Miss {
            fill_cycle, l2_hit, ..
        } = out.kind
        else {
            panic!("cold access must miss, got {:?}", out.kind);
        };
        assert!(!l2_hit, "cold L2 must miss too");
        // 8 (L1) + 20 (L2) + 60 (DRAM), empty bandwidth queue.
        assert_eq!(out.latency, 88);
        // Before the fill lands the line is not resident.
        assert!(matches!(
            h.load(fill_cycle - 1, addr(5)).kind,
            AccessKind::MshrMerge { .. }
        ));
        // At the fill cycle the line is installed and hits.
        let hit = h.load(fill_cycle, addr(5));
        assert_eq!(hit.kind, AccessKind::L1Hit);
        assert_eq!(hit.latency, 8);
    }

    #[test]
    fn merged_misses_share_one_fill_cycle() {
        let mut h = hier();
        let first = h.load(0, addr(9));
        let AccessKind::Miss { fill_cycle, .. } = first.kind else {
            panic!();
        };
        for c in [3, 7, 20] {
            let m = h.load(c, addr(9));
            let AccessKind::MshrMerge { fill_cycle: f, .. } = m.kind else {
                panic!("same-line access while in flight must merge");
            };
            assert_eq!(f, fill_cycle, "fill broadcast: one wake cycle for all");
            assert_eq!(u64::from(m.latency) + c, fill_cycle);
        }
        let s = h.stats();
        assert_eq!(s.mshr_merges, 3);
        assert_eq!(s.loads, 4);
        assert_eq!(s.l1_misses, 4);
        // One fill, not four.
        h.advance(fill_cycle);
        assert_eq!(h.stats().fills, 1);
    }

    #[test]
    fn credits_reflect_both_mshr_files_and_recover_on_fill() {
        let mut h = hier();
        assert_eq!(h.load_credits(0), 4);
        let mut last_fill = 0;
        for i in 0..4 {
            let out = h.load(0, addr(100 + i * 16)); // distinct L2 lines
            if let AccessKind::Miss { fill_cycle, .. } = out.kind {
                last_fill = last_fill.max(fill_cycle);
            }
        }
        assert_eq!(h.load_credits(0), 0, "both files full: stall, no drop");
        assert_eq!(h.load_credits(last_fill), 4, "fills recover credits");
        h.assert_conserved(last_fill);
    }

    #[test]
    fn l2_sector_misses_of_one_line_coalesce() {
        let mut h = hier();
        // Lines 40 and 41 share an L2 line (2 sectors) but are distinct
        // L1 lines, so both reach L2 and the second coalesces.
        h.load(0, addr(40));
        h.load(1, addr(41));
        let s = h.stats();
        assert_eq!(s.l2_misses, 2);
        assert_eq!(s.l2_coalesced, 1);
        assert_eq!(s.l2_mshr_peak, 1, "one line entry for both sectors");
    }

    #[test]
    fn l2_hit_after_eviction_keeps_dram_out_of_the_path() {
        let mut h = hier();
        let out = h.load(0, addr(3));
        let AccessKind::Miss { fill_cycle, .. } = out.kind else {
            panic!();
        };
        // Evict line 3 from tiny L1 (set has 2 ways; lines 3, 11, 19
        // map to the same set with 4 sets/1 bank at 64B lines).
        let mut c = fill_cycle;
        for l in [11, 19] {
            let o = h.load(c, addr(l));
            if let AccessKind::Miss { fill_cycle: f, .. } = o.kind {
                c = f;
            }
        }
        // Line 3 is gone from L1 but its sector still lives in L2.
        let back = h.load(c, addr(3));
        let AccessKind::Miss { l2_hit, .. } = back.kind else {
            panic!("evicted line must miss L1, got {:?}", back.kind);
        };
        assert!(l2_hit, "L2 retains the evicted line's sector");
        assert_eq!(back.latency, 28, "L1 + L2 latency, no DRAM");
    }

    #[test]
    fn dram_interval_queues_back_to_back_misses() {
        let mut h = hier();
        // Distinct L2 lines issued at the same cycle: each later fetch
        // waits for the 8-cycle DRAM interval of the ones before.
        let l0 = h.load(0, addr(200)).latency;
        let l1 = h.load(0, addr(216)).latency;
        let l2 = h.load(0, addr(232)).latency;
        assert_eq!(l0, 88);
        assert_eq!(l1, 96);
        assert_eq!(l2, 104);
    }

    #[test]
    fn stores_are_write_through_no_allocate() {
        let mut h = hier();
        h.store(0, addr(5));
        assert_eq!(h.stats().store_hits, 0);
        // A store miss does not allocate: the next load still misses.
        assert!(matches!(h.load(1, addr(5)).kind, AccessKind::Miss { .. }));
        let fill = match h.load(1, addr(5)).kind {
            AccessKind::MshrMerge { fill_cycle, .. } => fill_cycle,
            k => panic!("{k:?}"),
        };
        // After the fill, a store to the resident line hits in place.
        h.store(fill, addr(5));
        assert_eq!(h.stats().store_hits, 1);
        assert!(matches!(h.load(fill + 1, addr(5)).kind, AccessKind::L1Hit));
    }

    #[test]
    fn advance_batched_or_stepped_yields_identical_state() {
        // The fast-forward determinism argument in miniature: replay
        // one access trace with advance() called every cycle vs. only
        // at access cycles; stats and subsequent behavior must match.
        let cfg = HierarchyConfig::small_for_tests();
        let trace: Vec<(u64, u64, bool)> = (0..200)
            .map(|i| {
                let mut z = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                let line = z % 64;
                (i as u64 * 7, addr(line), z.is_multiple_of(5))
            })
            .collect();
        let run = |stepped: bool| -> (HierarchyStats, Vec<u32>) {
            let mut h = Hierarchy::new(cfg.clone());
            let mut lats = Vec::new();
            let mut clock = 0;
            for &(cycle, a, is_store) in &trace {
                if stepped {
                    while clock < cycle {
                        clock += 1;
                        h.advance(clock);
                    }
                }
                if is_store {
                    h.store(cycle, a);
                } else {
                    // Respect back-pressure the way the SM does.
                    if h.load_credits(cycle) == 0 {
                        continue;
                    }
                    lats.push(h.load(cycle, a).latency);
                }
            }
            h.advance(10_000_000);
            (h.stats(), lats)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn conservation_holds_on_a_seeded_stream() {
        let mut h = hier();
        let mut cycle = 0u64;
        for i in 0..500u64 {
            let mut z = i.wrapping_mul(0x2545_f491_4f6c_dd1d);
            z ^= z >> 29;
            cycle += z % 11;
            if z % 7 == 0 {
                h.store(cycle, addr(z % 96));
            } else if h.load_credits(cycle) > 0 {
                h.load(cycle, addr(z % 96));
            }
        }
        h.assert_conserved(cycle);
        let s = h.stats();
        assert!(s.l1_hits > 0 && s.l1_misses > 0, "stream exercises both");
    }
}
