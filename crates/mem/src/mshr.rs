//! Miss Status Holding Register (MSHR) files.
//!
//! The L1 file tracks in-flight missed lines; same-line misses merge
//! into one entry and the fill wakes every merged warp at the same
//! cycle. The L2 file tracks in-flight *sectored* lines; each sector
//! fetch has its own fill cycle, but sectors of one line coalesce into
//! a single entry (the sectored-cache analogue of secondary-miss
//! coalescing). Both files free entries lazily: the hierarchy drains
//! due fills in deterministic `(fill_cycle, line)` order on `advance`.

/// One in-flight L1 miss: the missed line, when its fill arrives, and
/// how many later same-line misses merged into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrEntry {
    /// Missed line address.
    pub line: u64,
    /// Cycle the fill data arrives (and every merged warp wakes).
    pub fill_cycle: u64,
    /// Secondary misses merged into this entry.
    pub merges: u32,
}

/// The L1 MSHR file: a bounded set of in-flight missed lines.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<MshrEntry>,
    capacity: usize,
    peak: u32,
    allocs: u64,
    retires: u64,
}

impl MshrFile {
    /// Creates an empty file with `capacity` entries.
    #[must_use]
    pub fn new(capacity: u32) -> Self {
        MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            peak: 0,
            allocs: 0,
            retires: 0,
        }
    }

    /// The in-flight entry for `line`, if any.
    pub fn find_mut(&mut self, line: u64) -> Option<&mut MshrEntry> {
        self.entries.iter_mut().find(|e| e.line == line)
    }

    /// Allocates an entry for a primary miss.
    ///
    /// # Panics
    ///
    /// Panics if the file is full — callers must gate issue on
    /// [`MshrFile::free`] (back-pressure stalls; it never drops).
    pub fn alloc(&mut self, line: u64, fill_cycle: u64) {
        assert!(
            self.entries.len() < self.capacity,
            "MSHR overflow: back-pressure must stall allocation"
        );
        debug_assert!(self.find_mut(line).is_none(), "line already in flight");
        self.entries.push(MshrEntry {
            line,
            fill_cycle,
            merges: 0,
        });
        self.allocs += 1;
        self.peak = self.peak.max(self.entries.len() as u32);
    }

    /// Free entries remaining (the back-pressure credit).
    #[must_use]
    pub fn free(&self) -> u32 {
        (self.capacity - self.entries.len()) as u32
    }

    /// Entries currently in flight.
    #[must_use]
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    /// Removes and returns every entry whose fill is due at `cycle`, in
    /// deterministic `(fill_cycle, line)` order.
    pub fn take_due(&mut self, cycle: u64) -> Vec<MshrEntry> {
        let mut due: Vec<MshrEntry> = Vec::new();
        self.entries.retain(|e| {
            if e.fill_cycle <= cycle {
                due.push(*e);
                false
            } else {
                true
            }
        });
        due.sort_unstable_by_key(|e| (e.fill_cycle, e.line));
        self.retires += due.len() as u64;
        due
    }

    /// Peak occupancy over the file's lifetime.
    #[must_use]
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Total primary-miss allocations.
    #[must_use]
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Total retired (filled) entries.
    #[must_use]
    pub fn retires(&self) -> u64 {
        self.retires
    }
}

/// One in-flight sectored L2 line: per-sector fill cycles (0 = sector
/// not in flight).
#[derive(Debug, Clone)]
struct L2Entry {
    l2_line: u64,
    fills: Vec<u64>,
}

/// The L2 MSHR file: bounded in-flight sectored lines. Distinct sector
/// fetches of one line share a single entry.
#[derive(Debug, Clone)]
pub struct L2MshrFile {
    entries: Vec<L2Entry>,
    capacity: usize,
    sectors: usize,
    peak: u32,
    allocs: u64,
    sector_fetches: u64,
    sector_retires: u64,
}

impl L2MshrFile {
    /// Creates an empty file with `capacity` line entries of `sectors`
    /// sectors each.
    #[must_use]
    pub fn new(capacity: u32, sectors: u32) -> Self {
        L2MshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            sectors: sectors as usize,
            peak: 0,
            allocs: 0,
            sector_fetches: 0,
            sector_retires: 0,
        }
    }

    /// Whether `l2_line` already holds an entry (a new sector fetch to
    /// it will coalesce instead of allocating).
    #[must_use]
    pub fn has_line(&self, l2_line: u64) -> bool {
        self.entries.iter().any(|e| e.l2_line == l2_line)
    }

    /// The in-flight fill cycle for `(l2_line, sector)`, if any.
    #[must_use]
    pub fn sector_fill(&self, l2_line: u64, sector: u32) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.l2_line == l2_line)
            .and_then(|e| {
                let f = e.fills[sector as usize];
                (f != 0).then_some(f)
            })
    }

    /// Records a sector fetch. Coalesces into an existing line entry
    /// when present; otherwise allocates a new one.
    ///
    /// Returns `true` when the fetch coalesced (no new entry consumed).
    ///
    /// # Panics
    ///
    /// Panics if a fresh entry is needed and the file is full — callers
    /// must gate issue on [`L2MshrFile::free`].
    pub fn add_sector(&mut self, l2_line: u64, sector: u32, fill_cycle: u64) -> bool {
        debug_assert!(fill_cycle > 0);
        self.sector_fetches += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.l2_line == l2_line) {
            debug_assert_eq!(e.fills[sector as usize], 0, "sector already in flight");
            e.fills[sector as usize] = fill_cycle;
            return true;
        }
        assert!(
            self.entries.len() < self.capacity,
            "L2 MSHR overflow: back-pressure must stall allocation"
        );
        let mut fills = vec![0u64; self.sectors];
        fills[sector as usize] = fill_cycle;
        self.entries.push(L2Entry { l2_line, fills });
        self.allocs += 1;
        self.peak = self.peak.max(self.entries.len() as u32);
        false
    }

    /// Free line entries remaining.
    #[must_use]
    pub fn free(&self) -> u32 {
        (self.capacity - self.entries.len()) as u32
    }

    /// Line entries currently in flight.
    #[must_use]
    pub fn live(&self) -> usize {
        self.entries.len()
    }

    /// Removes and returns every due sector fill as
    /// `(fill_cycle, l2_line, sector)`, in deterministic order. A line
    /// entry is freed once its last in-flight sector fills.
    pub fn take_due(&mut self, cycle: u64) -> Vec<(u64, u64, u32)> {
        let mut due: Vec<(u64, u64, u32)> = Vec::new();
        for e in &mut self.entries {
            for (s, f) in e.fills.iter_mut().enumerate() {
                if *f != 0 && *f <= cycle {
                    due.push((*f, e.l2_line, s as u32));
                    *f = 0;
                }
            }
        }
        self.entries.retain(|e| e.fills.iter().any(|&f| f != 0));
        due.sort_unstable();
        self.sector_retires += due.len() as u64;
        due
    }

    /// Peak line-entry occupancy.
    #[must_use]
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// Total line-entry allocations.
    #[must_use]
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Total sector fetches issued (allocations + coalesced).
    #[must_use]
    pub fn sector_fetches(&self) -> u64 {
        self.sector_fetches
    }

    /// Total sector fills retired.
    #[must_use]
    pub fn sector_retires(&self) -> u64 {
        self.sector_retires
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_shares_one_entry_and_one_fill() {
        let mut f = MshrFile::new(2);
        f.alloc(5, 100);
        let e = f.find_mut(5).expect("in flight");
        e.merges += 1;
        assert_eq!(f.live(), 1, "merge consumes no extra entry");
        let due = f.take_due(100);
        assert_eq!(due.len(), 1, "one fill per missed line");
        assert_eq!(due[0].merges, 1);
        assert_eq!(f.live(), 0);
    }

    #[test]
    fn take_due_is_sorted_and_leaves_future_fills() {
        let mut f = MshrFile::new(4);
        f.alloc(9, 50);
        f.alloc(3, 40);
        f.alloc(7, 40);
        f.alloc(1, 60);
        let due = f.take_due(50);
        let keys: Vec<(u64, u64)> = due.iter().map(|e| (e.fill_cycle, e.line)).collect();
        assert_eq!(keys, vec![(40, 3), (40, 7), (50, 9)]);
        assert_eq!(f.live(), 1);
        assert_eq!(f.free(), 3);
    }

    #[test]
    #[should_panic(expected = "back-pressure must stall")]
    fn overflow_panics_instead_of_dropping() {
        let mut f = MshrFile::new(1);
        f.alloc(1, 10);
        f.alloc(2, 10);
    }

    #[test]
    fn l2_sector_fetches_coalesce_into_one_line_entry() {
        let mut f = L2MshrFile::new(2, 4);
        assert!(!f.add_sector(8, 0, 100), "primary allocates");
        assert!(f.add_sector(8, 2, 120), "second sector coalesces");
        assert_eq!(f.live(), 1);
        assert_eq!(f.sector_fill(8, 2), Some(120));
        assert_eq!(f.sector_fill(8, 1), None);
        // First sector fills; the entry survives for the second.
        assert_eq!(f.take_due(100), vec![(100, 8, 0)]);
        assert_eq!(f.live(), 1);
        assert_eq!(f.take_due(120), vec![(120, 8, 2)]);
        assert_eq!(f.live(), 0);
        assert_eq!(f.allocs(), 1);
        assert_eq!(f.sector_fetches(), 2);
        assert_eq!(f.sector_retires(), 2);
    }

    #[test]
    #[should_panic(expected = "back-pressure must stall")]
    fn l2_overflow_panics_instead_of_dropping() {
        let mut f = L2MshrFile::new(1, 2);
        f.add_sector(1, 0, 10);
        f.add_sector(2, 0, 10);
    }
}
