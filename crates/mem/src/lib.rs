//! # warped-mem
//!
//! A deterministic, cycle-accurate two-level cache hierarchy with true
//! MSHR files, built for the Warped Gates SM simulator.
//!
//! The model replaces the simulator's probabilistic hit/miss latency
//! draw with real cache state, so the *shape* of memory-induced idle
//! periods — the convoys and bursts that power gating lives on — is a
//! property of the kernel's address stream instead of a dice roll:
//!
//! * a banked, set-associative **L1 data cache** per SM (configurable
//!   sets/ways/line size, LRU replacement, write-through no-allocate
//!   stores),
//! * a **sectored L2** slice behind it (one tag covers several L1
//!   lines; each sector is fetched and validated independently),
//! * **MSHR files at both levels**: same-line misses merge into one
//!   in-flight entry (the fill wakes every merged warp at the same
//!   cycle), secondary *sector* misses at L2 coalesce into the line's
//!   existing entry, and capacity back-pressure stalls new misses
//!   instead of dropping them,
//! * the existing **DRAM interval queue** (a bandwidth bound, not a
//!   DRAM model) behind L2.
//!
//! ## Determinism
//!
//! The hierarchy is driven entirely at *issue time*: an access at cycle
//! `C` computes its fill cycle immediately from current cache/MSHR
//! state, and fills are installed lazily by [`Hierarchy::advance`] in
//! `(fill_cycle, line)` order. Because installation is a pure function
//! of the access history — not of how often `advance` was called — a
//! per-cycle stepped simulation, a fast-forwarding one, and an
//! event-queue one all observe identical state at identical cycles.
//! There is no randomness anywhere in this crate; descriptor-less
//! accesses are hashed onto a bounded footprint by the *simulator*
//! before they reach the hierarchy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod mshr;

pub use cache::{SectoredCache, SetAssocCache};
pub use hierarchy::{AccessKind, Hierarchy, HierarchyStats, LoadOutcome};
pub use mshr::{L2MshrFile, MshrFile};

/// Configuration of the two-level hierarchy.
///
/// All fields are integers so the config is hashable and exactly
/// comparable; every field is folded into the serve-cache fingerprint.
/// The defaults are sized so that a full miss (L1 + L2 + DRAM) costs
/// the same 380 cycles as the legacy latency model's miss path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Cache line size in bytes (power of two).
    pub line_size: u32,
    /// L1 sets per bank (power of two).
    pub l1_sets: u32,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Number of L1 banks (power of two); banks partition the line
    /// address space, so total L1 capacity is
    /// `banks * sets * ways * line_size`.
    pub l1_banks: u32,
    /// L1 hit latency in cycles (must cover the LD/ST pipe occupancy).
    pub l1_latency: u32,
    /// L1 MSHR entries (outstanding missed lines).
    pub l1_mshr_entries: u32,
    /// L2 sets (power of two).
    pub l2_sets: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L1 lines per L2 line (power of two). Each sector is fetched and
    /// validated independently under one tag.
    pub l2_sectors: u32,
    /// Additional latency of an L2 hit, on top of L1.
    pub l2_latency: u32,
    /// L2 MSHR entries (outstanding missed *lines*; in-flight sectors
    /// of one line share an entry).
    pub l2_mshr_entries: u32,
    /// DRAM round-trip latency beyond L2.
    pub dram_latency: u32,
    /// Minimum cycles between DRAM transfers (bandwidth bound).
    pub dram_interval: u32,
    /// Footprint, in lines, that descriptor-less (hashed) accesses are
    /// spread over. Smaller footprints raise locality.
    pub fallback_footprint: u64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            line_size: 128,
            l1_sets: 32,
            l1_ways: 4,
            l1_banks: 2,
            l1_latency: 28,
            l1_mshr_entries: 32,
            l2_sets: 64,
            l2_ways: 8,
            l2_sectors: 4,
            l2_latency: 90,
            l2_mshr_entries: 32,
            dram_latency: 262,
            dram_interval: 8,
            fallback_footprint: 4096,
        }
    }
}

impl HierarchyConfig {
    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics on zero capacities, non-power-of-two geometry, or an L1
    /// latency too short to cover the simulator's 4-cycle LD/ST pipe
    /// occupancy.
    pub fn validate(&self) {
        for (name, v) in [
            ("line_size", self.line_size),
            ("l1_sets", self.l1_sets),
            ("l1_banks", self.l1_banks),
            ("l2_sets", self.l2_sets),
            ("l2_sectors", self.l2_sectors),
        ] {
            assert!(v.is_power_of_two(), "{name} must be a power of two");
        }
        assert!(self.l1_ways >= 1, "l1_ways must be >= 1");
        assert!(self.l2_ways >= 1, "l2_ways must be >= 1");
        assert!(self.l2_sectors <= 64, "l2_sectors must be <= 64");
        assert!(
            self.l1_latency >= 4,
            "l1_latency must cover the 4-cycle LD/ST pipe occupancy"
        );
        assert!(self.l2_latency >= 1, "l2_latency must be >= 1");
        assert!(self.dram_latency >= 1, "dram_latency must be >= 1");
        assert!(self.dram_interval >= 1, "dram_interval must be >= 1");
        assert!(self.l1_mshr_entries >= 1, "l1_mshr_entries must be >= 1");
        assert!(self.l2_mshr_entries >= 1, "l2_mshr_entries must be >= 1");
        assert!(
            self.fallback_footprint >= 1,
            "fallback_footprint must be >= 1"
        );
    }

    /// Upper bound on the latency of any single load issued through the
    /// hierarchy, including worst-case DRAM queueing. The simulator
    /// sizes its event ring from this, so it must be a true bound.
    #[must_use]
    pub fn worst_case_latency(&self) -> u32 {
        // Every in-flight DRAM fetch is a sector of a live L2 MSHR
        // entry, so queue depth is bounded by entries * sectors; the
        // extra kilocycle absorbs the store write-buffer reservations.
        let queue = self.l2_mshr_entries * self.l2_sectors * self.dram_interval;
        self.l1_latency + self.l2_latency + self.dram_latency + queue + 1024
    }

    /// A small configuration for unit tests: tiny caches and MSHR files
    /// so capacity effects show up in a few dozen accesses.
    #[must_use]
    pub fn small_for_tests() -> Self {
        HierarchyConfig {
            line_size: 64,
            l1_sets: 4,
            l1_ways: 2,
            l1_banks: 1,
            l1_latency: 8,
            l1_mshr_entries: 4,
            l2_sets: 8,
            l2_ways: 2,
            l2_sectors: 2,
            l2_latency: 20,
            l2_mshr_entries: 4,
            dram_latency: 60,
            dram_interval: 8,
            fallback_footprint: 256,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates_and_matches_legacy_miss_cost() {
        let c = HierarchyConfig::default();
        c.validate();
        assert_eq!(c.l1_latency + c.l2_latency + c.dram_latency, 380);
    }

    #[test]
    fn worst_case_latency_exceeds_full_miss_path() {
        let c = HierarchyConfig::default();
        assert!(c.worst_case_latency() > c.l1_latency + c.l2_latency + c.dram_latency);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_are_rejected() {
        let c = HierarchyConfig {
            l1_sets: 3,
            ..HierarchyConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "LD/ST pipe occupancy")]
    fn too_short_l1_latency_is_rejected() {
        let c = HierarchyConfig {
            l1_latency: 3,
            ..HierarchyConfig::default()
        };
        c.validate();
    }
}
