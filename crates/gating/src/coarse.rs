//! Whole-SM coarse power gating: the related-work baseline.
//!
//! Prior GPU power-gating work (Wang et al., *Power gating strategies on
//! GPUs*, ACM TACO) gates at the granularity of entire streaming
//! multiprocessors: the SM's execution resources sleep only when *all*
//! of them have been idle together for the idle-detect window, and any
//! demand wakes all of them. The Warped Gates paper argues this misses
//! most of the opportunity, because individual unit types idle long and
//! often even while the SM as a whole stays busy. This controller exists
//! to quantify that argument inside the same simulator.

use crate::machine::GateState;
use crate::params::GatingParams;
use warped_sim::{
    CycleObservation, DomainId, DomainLayout, GateTransition, GatingReport, PowerGating,
};

/// Coarse-grained, SM-level power gating.
///
/// One shared state machine covers every execution domain: it gates
/// when the whole SM's execution units have been simultaneously idle
/// for the idle-detect window and wakes (conventionally — no blackout)
/// as soon as any instruction type shows demand. Statistics are
/// reported per-domain (each domain mirrors the shared state) so the
/// usual energy accounting applies unchanged.
///
/// # Examples
///
/// ```
/// use warped_gating::{GatingParams, SmCoarseGating};
/// use warped_sim::{DomainId, PowerGating};
///
/// let ctl = SmCoarseGating::new(GatingParams::default());
/// assert!(ctl.is_on(DomainId::INT0));
/// assert_eq!(ctl.name(), "SM-Coarse");
/// ```
#[derive(Debug, Clone)]
pub struct SmCoarseGating {
    params: GatingParams,
    layout: DomainLayout,
    state: GateState,
    report: GatingReport,
}

impl SmCoarseGating {
    /// Creates the controller with the SM powered.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(params: GatingParams) -> Self {
        params.validate();
        SmCoarseGating {
            params,
            layout: DomainLayout::fermi(),
            state: GateState::active(),
            report: GatingReport::new(),
        }
    }

    /// The shared gating state of the whole SM.
    #[must_use]
    pub fn state(&self) -> GateState {
        self.state
    }

    fn bump_all(&mut self, f: impl Fn(&mut warped_sim::DomainGatingStats)) {
        for d in self.layout.all() {
            f(self.report.domain_mut(*d));
        }
    }
}

impl PowerGating for SmCoarseGating {
    fn is_on(&self, _domain: DomainId) -> bool {
        self.state.is_on()
    }

    fn observe(&mut self, obs: &CycleObservation) {
        let bet = self.params.bet;
        let any_busy = obs.busy.iter().any(|b| *b);
        let any_demand = obs.blocked_demand.iter().any(|d| *d > 0);

        self.state = match self.state {
            GateState::Active { idle_run } => {
                if any_busy {
                    GateState::Active { idle_run: 0 }
                } else {
                    let idle_run = idle_run + 1;
                    if idle_run >= self.params.idle_detect {
                        self.bump_all(|s| s.gate_events += 1);
                        GateState::Gated { elapsed: 0 }
                    } else {
                        GateState::Active { idle_run }
                    }
                }
            }
            GateState::Gated { elapsed } => {
                debug_assert!(!any_busy, "gated SM cannot be busy");
                let elapsed = elapsed + 1;
                self.bump_all(|s| {
                    s.gated_cycles += 1;
                    if elapsed <= bet {
                        s.uncompensated_cycles += 1;
                    } else {
                        s.compensated_cycles += 1;
                    }
                });
                if any_demand {
                    self.bump_all(|s| {
                        s.wakeups += 1;
                        if elapsed < bet {
                            s.premature_wakeups += 1;
                        }
                        if elapsed == bet {
                            s.critical_wakeups += 1;
                        }
                    });
                    GateState::Waking {
                        left: self.params.wakeup_delay,
                    }
                } else {
                    GateState::Gated { elapsed }
                }
            }
            GateState::Waking { left } => {
                self.bump_all(|s| s.wakeup_cycles += 1);
                let left = left - 1;
                if left == 0 {
                    GateState::active()
                } else {
                    GateState::Waking { left }
                }
            }
        };
    }

    /// Advances the shared state machine through `cycles` repeats of
    /// `obs` in closed form wherever possible.
    ///
    /// With a single state machine and no epochs the segmentation is
    /// simple: a segment ends where the shared class could change (the
    /// idle-detect threshold, a demand-driven wake, or the end of the
    /// wakeup countdown); the boundary observation runs through
    /// [`Self::observe`] so the result is bit-equal to per-cycle
    /// stepping. Since the whole SM shares one state, `is_on` flips for
    /// every domain at once and transitions are emitted for the full
    /// layout.
    fn fast_forward(
        &mut self,
        obs: &CycleObservation,
        cycles: u64,
        transitions: &mut Vec<GateTransition>,
    ) {
        let bet = self.params.bet;
        let any_busy = obs.busy.iter().any(|b| *b);
        let any_demand = obs.blocked_demand.iter().any(|d| *d > 0);
        let mut done: u64 = 0;
        while done < cycles {
            let horizon = match self.state {
                GateState::Active { idle_run } => {
                    if any_busy {
                        u64::MAX
                    } else {
                        u64::from(self.params.idle_detect).saturating_sub(u64::from(idle_run) + 1)
                    }
                }
                GateState::Gated { .. } => {
                    if any_demand {
                        0
                    } else {
                        u64::MAX
                    }
                }
                GateState::Waking { left } => u64::from(left) - 1,
            };
            let bulk = (cycles - done).min(horizon);
            if bulk > 0 {
                let add = u32::try_from(bulk).unwrap_or(u32::MAX);
                match self.state {
                    GateState::Active { idle_run } => {
                        self.state = GateState::Active {
                            idle_run: if any_busy {
                                0
                            } else {
                                idle_run.saturating_add(add)
                            },
                        };
                    }
                    GateState::Gated { elapsed } => {
                        let uncomp = bulk.min(u64::from(bet.saturating_sub(elapsed)));
                        self.bump_all(|s| {
                            s.gated_cycles += bulk;
                            s.uncompensated_cycles += uncomp;
                            s.compensated_cycles += bulk - uncomp;
                        });
                        self.state = GateState::Gated {
                            elapsed: elapsed.saturating_add(add),
                        };
                    }
                    GateState::Waking { left } => {
                        self.bump_all(|s| s.wakeup_cycles += bulk);
                        self.state = GateState::Waking { left: left - add };
                    }
                }
                done += bulk;
            }
            if done < cycles {
                let was_on = self.state.is_on();
                self.observe(&CycleObservation {
                    cycle: obs.cycle + done,
                    ..*obs
                });
                if self.state.is_on() != was_on {
                    for d in self.layout.all() {
                        transitions.push(GateTransition {
                            offset: done + 1,
                            domain: *d,
                            powered: self.state.is_on(),
                        });
                    }
                }
                done += 1;
            }
        }
    }

    fn report(&self) -> GatingReport {
        self.report.clone()
    }

    fn name(&self) -> &'static str {
        "SM-Coarse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_sim::NUM_DOMAINS;

    fn obs(busy_domain: Option<DomainId>, demand: bool) -> CycleObservation {
        let mut busy = [false; NUM_DOMAINS];
        if let Some(d) = busy_domain {
            busy[d.index()] = true;
        }
        let mut blocked = [0u32; 4];
        if demand {
            blocked[0] = 1;
        }
        CycleObservation {
            cycle: 0,
            busy,
            blocked_demand: blocked,
            active_subset: [0; 4],
        }
    }

    #[test]
    fn one_busy_unit_keeps_the_whole_sm_awake() {
        let mut ctl = SmCoarseGating::new(GatingParams::default());
        // LDST alone stays busy: nothing may gate, ever.
        for _ in 0..100 {
            ctl.observe(&obs(Some(DomainId::LDST), false));
        }
        for d in DomainId::ALL {
            assert!(ctl.is_on(d));
        }
        assert_eq!(ctl.report().domain(DomainId::FP0).gate_events, 0);
    }

    #[test]
    fn fully_idle_sm_gates_every_domain_together() {
        let mut ctl = SmCoarseGating::new(GatingParams::default());
        for _ in 0..5 {
            ctl.observe(&obs(None, false));
        }
        for d in DomainId::ALL {
            assert!(!ctl.is_on(d), "{d} should be gated with the SM");
            assert_eq!(ctl.report().domain(d).gate_events, 1);
        }
    }

    #[test]
    fn any_demand_wakes_everything() {
        let mut ctl = SmCoarseGating::new(GatingParams::default());
        for _ in 0..5 {
            ctl.observe(&obs(None, false));
        }
        ctl.observe(&obs(None, true));
        assert!(matches!(ctl.state(), GateState::Waking { .. }));
        // 3 wakeup cycles later everything is on again.
        for _ in 0..3 {
            ctl.observe(&obs(None, false));
        }
        for d in DomainId::ALL {
            assert!(ctl.is_on(d));
        }
        assert_eq!(ctl.report().domain(DomainId::INT1).wakeups, 1);
        assert_eq!(ctl.report().domain(DomainId::INT1).premature_wakeups, 1);
    }

    #[test]
    fn fast_forward_matches_per_cycle_stepping() {
        // Cover the full state cycle: detect → gated (past BET) → wake →
        // active again, and a busy span that pins the SM awake.
        let cases: &[(Option<DomainId>, bool, u64)] = &[
            (None, false, 1000),
            (Some(DomainId::SFU), false, 50),
            (None, true, 40),
        ];
        for &(busy, demand, cycles) in cases {
            let mut fast = SmCoarseGating::new(GatingParams::default());
            let mut slow = SmCoarseGating::new(GatingParams::default());
            // A shared prefix leaves both mid-idle-detect.
            for c in [&mut fast, &mut slow] {
                c.observe(&obs(None, false));
                c.observe(&obs(None, false));
            }
            let span = obs(busy, demand);
            let mut got = Vec::new();
            fast.fast_forward(&span, cycles, &mut got);
            let mut want = Vec::new();
            for k in 0..cycles {
                let was_on = slow.state().is_on();
                slow.observe(&CycleObservation {
                    cycle: span.cycle + k,
                    ..span
                });
                if slow.state().is_on() != was_on {
                    for d in DomainId::ALL {
                        if DomainLayout::fermi().contains(d) {
                            want.push(GateTransition {
                                offset: k + 1,
                                domain: d,
                                powered: slow.state().is_on(),
                            });
                        }
                    }
                }
            }
            assert_eq!(got, want, "busy={busy:?} demand={demand}");
            assert_eq!(fast.state(), slow.state(), "busy={busy:?} demand={demand}");
            assert_eq!(
                fast.report(),
                slow.report(),
                "busy={busy:?} demand={demand}"
            );
        }
    }

    #[test]
    fn counters_partition_like_fine_grained_controllers() {
        let mut ctl = SmCoarseGating::new(GatingParams::default());
        for i in 0..200u64 {
            // Gate, then wake at i=40, then idle again.
            let demand = i == 40;
            ctl.observe(&obs(None, demand));
        }
        let report = ctl.report();
        for d in DomainId::ALL {
            let s = report.domain(d);
            assert_eq!(
                s.gated_cycles,
                s.compensated_cycles + s.uncompensated_cycles
            );
            assert!(s.wakeups <= s.gate_events);
        }
    }
}
