//! Gating policies and idle-detect tuners.

use crate::machine::GateState;
use crate::params::GatingParams;
use warped_isa::UnitType;
use warped_sim::DomainId;

/// Gating states of the *other* clusters of a domain's unit type (the
/// generalisation of the paper's two-cluster "peer" to Kepler/GCN-like
/// layouts with up to six clusters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerSummary {
    /// Peer clusters currently powered and usable.
    pub active: u32,
    /// Peer clusters currently gated (in blackout under those policies).
    pub gated: u32,
    /// Peer clusters restoring voltage.
    pub waking: u32,
}

impl PeerSummary {
    /// Summarises a list of peer states.
    #[must_use]
    pub fn from_states(states: &[GateState]) -> Self {
        let mut out = PeerSummary::default();
        for s in states {
            match s {
                GateState::Active { .. } => out.active += 1,
                GateState::Gated { .. } => out.gated += 1,
                GateState::Waking { .. } => out.waking += 1,
            }
        }
        out
    }

    /// Total peer clusters.
    #[must_use]
    pub fn total(self) -> u32 {
        self.active + self.gated + self.waking
    }
}

/// Everything a [`GatePolicy`] may consult when deciding whether to gate
/// or wake a domain this cycle.
#[derive(Debug, Clone, Copy)]
pub struct PolicyCtx<'a> {
    /// The domain under consideration.
    pub domain: DomainId,
    /// Circuit timing parameters.
    pub params: &'a GatingParams,
    /// The effective idle-detect window for this domain this cycle
    /// (per-unit-type; may differ from `params.idle_detect` under
    /// adaptive idle detect).
    pub idle_detect: u32,
    /// Consecutive idle cycles observed (including the current one).
    pub idle_run: u32,
    /// Summary of the *other* same-type clusters' states (empty for
    /// SFU/LDST, which have a single domain each).
    pub peers: PeerSummary,
    /// Warps currently waiting in the active-warp subset of this
    /// domain's unit type (the `INT_ACTV`/`FP_ACTV` counters).
    pub active_subset: u32,
    /// Ready instructions of this domain's type blocked this cycle
    /// because no cluster could accept them.
    pub demand: u32,
}

/// A closed-form description of when [`GatePolicy::should_gate`] fires
/// as a domain's idle run grows with every *other* context field frozen.
///
/// The [`Controller`](crate::Controller) consults this inside
/// [`PowerGating::fast_forward`](warped_sim::PowerGating::fast_forward)
/// to advance an idle domain through a quiet span without evaluating the
/// policy every cycle. The contract is exact, not approximate: a policy
/// returning [`GateForecast::AtIdleRun`]`(t)` promises that, for a
/// context identical to `ctx` except for `idle_run`,
/// `should_gate(idle_run = x)` is `true` exactly when `x >= t`. The
/// controller only relies on the forecast while every domain's state
/// *class* (active/gated/waking) is unchanged — any observation that
/// could change a class runs through the ordinary per-cycle path — so
/// the frozen-context assumption holds wherever the forecast is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateForecast {
    /// No closed form: the controller must evaluate `should_gate` every
    /// cycle (always safe, never fast).
    Unknown,
    /// `should_gate` is `idle_run >= t` under the frozen context.
    AtIdleRun(u32),
    /// `should_gate` is `false` for every idle run under the frozen
    /// context.
    Never,
}

impl GateForecast {
    /// The forecast's verdict for a specific idle run: `Some(true)` if
    /// the policy gates at `idle_run`, `Some(false)` if it does not, and
    /// `None` when there is no closed form ([`GateForecast::Unknown`])
    /// and `should_gate` must be consulted directly.
    ///
    /// This is the misuse-proof way to consume a forecast: callers get a
    /// three-way answer instead of pattern-matching and panicking on the
    /// variants they did not expect.
    #[must_use]
    pub fn predicts(self, idle_run: u32) -> Option<bool> {
        match self {
            GateForecast::Unknown => None,
            GateForecast::AtIdleRun(t) => Some(idle_run >= t),
            GateForecast::Never => Some(false),
        }
    }

    /// The gating threshold, when the forecast has one: `Some(t)` for
    /// [`GateForecast::AtIdleRun`]`(t)`, `None` for both `Unknown` (no
    /// closed form) and `Never` (no finite threshold).
    #[must_use]
    pub fn at_idle_run(self) -> Option<u32> {
        match self {
            GateForecast::AtIdleRun(t) => Some(t),
            GateForecast::Unknown | GateForecast::Never => None,
        }
    }
}

/// A power-gating decision policy.
///
/// The framework calls [`should_gate`](GatePolicy::should_gate) for an
/// idle, powered domain and [`may_wake`](GatePolicy::may_wake) for a
/// gated domain with pending demand. All bookkeeping (counters, state
/// transitions, statistics) lives in the
/// [`Controller`](crate::Controller).
pub trait GatePolicy {
    /// Whether an idle, powered domain should be gated now.
    fn should_gate(&self, ctx: &PolicyCtx<'_>) -> bool;

    /// Whether a gated domain with demand may start waking after
    /// `elapsed` gated cycles.
    fn may_wake(&self, ctx: &PolicyCtx<'_>, elapsed: u32) -> bool;

    /// Closed form of `should_gate` as a function of the idle run, with
    /// every other field of `ctx` held fixed (see [`GateForecast`]).
    ///
    /// The default is [`GateForecast::Unknown`], which keeps custom
    /// policies correct under clock fast-forwarding at the cost of
    /// per-cycle evaluation.
    fn forecast_gate(&self, ctx: &PolicyCtx<'_>) -> GateForecast {
        let _ = ctx;
        GateForecast::Unknown
    }

    /// The minimum number of gated cycles this policy guarantees before
    /// [`may_wake`](GatePolicy::may_wake) can return `true` for
    /// `domain` — the floor the gating sanitizer holds the controller
    /// to. Blackout policies return `params.bet` for CUDA cores; the
    /// default of `0` claims nothing (always safe: the sanitizer then
    /// only checks the structural one-cycle minimum).
    fn wake_floor(&self, domain: DomainId, params: &GatingParams) -> u32 {
        let _ = (domain, params);
        0
    }

    /// Policy name, used as the controller name in reports.
    fn name(&self) -> &'static str;
}

/// Conventional power gating (Hu et al.): gate after the idle-detect
/// window; wake on demand at any time — even before the break-even time,
/// which is what produces net-negative gating events.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvPgPolicy {
    _private: (),
}

impl ConvPgPolicy {
    /// Creates the conventional policy.
    #[must_use]
    pub fn new() -> Self {
        ConvPgPolicy { _private: () }
    }
}

impl GatePolicy for ConvPgPolicy {
    fn should_gate(&self, ctx: &PolicyCtx<'_>) -> bool {
        ctx.idle_run >= ctx.idle_detect
    }

    fn may_wake(&self, _ctx: &PolicyCtx<'_>, _elapsed: u32) -> bool {
        true
    }

    fn forecast_gate(&self, ctx: &PolicyCtx<'_>) -> GateForecast {
        GateForecast::AtIdleRun(ctx.idle_detect)
    }

    fn name(&self) -> &'static str {
        "ConvPG"
    }
}

/// A runtime adjuster for the per-unit-type idle-detect window.
///
/// The controller calls [`on_epoch`](IdleDetectTuner::on_epoch) at every
/// epoch boundary for each CUDA-core unit type (INT and FP), passing the
/// number of critical wakeups observed in the epoch; the tuner mutates
/// the window in place.
pub trait IdleDetectTuner {
    /// Adjusts `idle_detect` for `unit` after an epoch with
    /// `critical_wakeups` critical wakeups.
    fn on_epoch(&mut self, unit: UnitType, critical_wakeups: u32, idle_detect: &mut u32);

    /// Length of an epoch in cycles.
    fn epoch_len(&self) -> u64 {
        1000
    }

    /// The inclusive bounds this tuner promises to keep every
    /// idle-detect window within, or `None` when it makes no promise
    /// (the sanitizer then pins the window to its static value). The
    /// adaptive tuner returns the paper's 5..=10.
    fn window_bounds(&self) -> Option<(u32, u32)> {
        None
    }

    /// Tuner name for reporting; empty for the static tuner.
    fn name(&self) -> &'static str;
}

/// The fixed idle-detect window (no runtime adaptation).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticIdleDetect {
    _private: (),
}

impl StaticIdleDetect {
    /// Creates the static (no-op) tuner.
    #[must_use]
    pub fn new() -> Self {
        StaticIdleDetect { _private: () }
    }
}

impl IdleDetectTuner for StaticIdleDetect {
    fn on_epoch(&mut self, _unit: UnitType, _critical: u32, _idle_detect: &mut u32) {}

    fn name(&self) -> &'static str {
        ""
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(idle_run: u32, idle_detect: u32, params: &GatingParams) -> PolicyCtx<'_> {
        PolicyCtx {
            domain: DomainId::INT0,
            params,
            idle_detect,
            idle_run,
            peers: PeerSummary::from_states(&[GateState::active()]),
            active_subset: 0,
            demand: 0,
        }
    }

    #[test]
    fn conv_pg_gates_exactly_at_idle_detect() {
        let p = GatingParams::default();
        let policy = ConvPgPolicy::new();
        assert!(!policy.should_gate(&ctx(4, 5, &p)));
        assert!(policy.should_gate(&ctx(5, 5, &p)));
        assert!(policy.should_gate(&ctx(6, 5, &p)));
    }

    #[test]
    fn conv_pg_wakes_any_time() {
        let p = GatingParams::default();
        let policy = ConvPgPolicy::new();
        let c = ctx(0, 5, &p);
        assert!(policy.may_wake(&c, 1), "even before break-even");
        assert!(policy.may_wake(&c, 100));
    }

    #[test]
    fn conv_pg_forecast_matches_should_gate_pointwise() {
        let p = GatingParams::default();
        let policy = ConvPgPolicy::new();
        let forecast = policy.forecast_gate(&ctx(0, 5, &p));
        assert_eq!(forecast.at_idle_run(), Some(5), "ConvPG has a closed form");
        for x in 0..20 {
            assert_eq!(
                Some(policy.should_gate(&ctx(x, 5, &p))),
                forecast.predicts(x),
                "forecast must agree with should_gate at idle_run={x}"
            );
        }
    }

    #[test]
    fn forecast_predicts_covers_every_variant() {
        assert_eq!(GateForecast::Unknown.predicts(7), None);
        assert_eq!(GateForecast::AtIdleRun(5).predicts(4), Some(false));
        assert_eq!(GateForecast::AtIdleRun(5).predicts(5), Some(true));
        assert_eq!(GateForecast::Never.predicts(u32::MAX), Some(false));
        assert_eq!(GateForecast::Unknown.at_idle_run(), None);
        assert_eq!(GateForecast::Never.at_idle_run(), None);
    }

    #[test]
    fn default_wake_floor_claims_nothing() {
        let p = GatingParams::default();
        assert_eq!(ConvPgPolicy::new().wake_floor(DomainId::INT0, &p), 0);
    }

    #[test]
    fn static_tuner_promises_no_bounds() {
        assert_eq!(StaticIdleDetect::new().window_bounds(), None);
    }

    #[test]
    fn default_forecast_is_unknown() {
        struct Opaque;
        impl GatePolicy for Opaque {
            fn should_gate(&self, _ctx: &PolicyCtx<'_>) -> bool {
                false
            }
            fn may_wake(&self, _ctx: &PolicyCtx<'_>, _elapsed: u32) -> bool {
                true
            }
            fn name(&self) -> &'static str {
                "Opaque"
            }
        }
        let p = GatingParams::default();
        assert_eq!(Opaque.forecast_gate(&ctx(3, 5, &p)), GateForecast::Unknown);
    }

    #[test]
    fn static_tuner_never_changes_the_window() {
        let mut t = StaticIdleDetect::new();
        let mut w = 5;
        t.on_epoch(UnitType::Int, 100, &mut w);
        assert_eq!(w, 5);
        assert_eq!(t.epoch_len(), 1000);
    }
}
