//! The gating controller: one state machine per domain, policy-driven.

use crate::machine::GateState;
use crate::params::GatingParams;
use crate::policy::{GateForecast, GatePolicy, IdleDetectTuner, PeerSummary, PolicyCtx};
use warped_isa::UnitType;
use warped_sim::probe::{Event, Recorder};
use warped_sim::{
    CycleObservation, DomainId, DomainLayout, GateTransition, GatingInvariants, GatingReport,
    PowerGating, NUM_DOMAINS,
};

/// A power-gating controller parameterised by a decision
/// [`GatePolicy`] and an [`IdleDetectTuner`].
///
/// The controller owns one [`GateState`] per gating domain, the per-type
/// idle-detect registers, the per-epoch critical-wakeup counters, and
/// all statistics. It implements the simulator-facing
/// [`PowerGating`] trait.
///
/// # Examples
///
/// ```
/// use warped_gating::{Controller, ConvPgPolicy, GatingParams, StaticIdleDetect};
/// use warped_sim::{DomainId, PowerGating};
///
/// let ctl = Controller::new(
///     GatingParams::default(),
///     ConvPgPolicy::new(),
///     StaticIdleDetect::new(),
/// );
/// assert!(ctl.is_on(DomainId::FP0));
/// ```
#[derive(Debug, Clone)]
pub struct Controller<P, T> {
    params: GatingParams,
    layout: DomainLayout,
    policy: P,
    tuner: T,
    states: [GateState; NUM_DOMAINS],
    /// Effective idle-detect window per unit type (INT, FP, SFU, LDST).
    idle_detect: [u32; 4],
    /// Critical wakeups per unit type in the current epoch.
    epoch_critical: [u32; 4],
    report: GatingReport,
    /// Whether self-checks are live (set by the simulator when
    /// [`SmConfig::sanitize`](warped_sim::SmConfig) is on): every tuner
    /// epoch asserts the adjusted windows stay within the tuner's
    /// promised bounds.
    sanitize: bool,
    /// Telemetry recorder (installed by the simulator when
    /// [`SmConfig::telemetry`](warped_sim::SmConfig) is armed). Every
    /// state-machine transition -- idle-detect start, gate, blackout
    /// hold, wakeup, wake completion -- and every tuner epoch decision
    /// is stamped on it. Strictly observe-only.
    recorder: Option<Recorder>,
}

impl<P: GatePolicy, T: IdleDetectTuner> Controller<P, T> {
    /// Creates a controller with every domain powered.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(params: GatingParams, policy: P, tuner: T) -> Self {
        Self::with_layout(DomainLayout::fermi(), params, policy, tuner)
    }

    /// Creates a controller for an explicit clustered-architecture
    /// layout (Kepler/GCN studies).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn with_layout(layout: DomainLayout, params: GatingParams, policy: P, tuner: T) -> Self {
        params.validate();
        Controller {
            params,
            layout,
            policy,
            tuner,
            states: [GateState::active(); NUM_DOMAINS],
            idle_detect: [params.idle_detect; 4],
            epoch_critical: [0; 4],
            report: GatingReport::new(),
            sanitize: false,
            recorder: None,
        }
    }

    /// The circuit timing parameters in effect.
    #[must_use]
    pub fn params(&self) -> &GatingParams {
        &self.params
    }

    /// Current state of a domain.
    #[must_use]
    pub fn state(&self, domain: DomainId) -> GateState {
        self.states[domain.index()]
    }

    /// The effective idle-detect window for a unit type right now.
    #[must_use]
    pub fn idle_detect(&self, unit: UnitType) -> u32 {
        self.idle_detect[unit.index()]
    }

    /// Stamps `event` on the telemetry recorder, if one is installed.
    fn emit(&self, cycle: u64, event: Event) {
        if let Some(r) = &self.recorder {
            r.record(cycle, event);
        }
    }

    fn policy_ctx<'a>(
        &'a self,
        domain: DomainId,
        idle_run: u32,
        obs: &CycleObservation,
    ) -> PolicyCtx<'a> {
        let unit = domain.unit();
        let mut peer_states = [GateState::active(); warped_sim::MAX_SP_CLUSTERS];
        let mut n = 0;
        if domain.is_cuda_core() {
            for d in self.layout.domains_of(unit) {
                if *d != domain {
                    peer_states[n] = self.states[d.index()];
                    n += 1;
                }
            }
        }
        PolicyCtx {
            domain,
            params: &self.params,
            idle_detect: self.idle_detect[unit.index()],
            idle_run,
            peers: PeerSummary::from_states(&peer_states[..n]),
            active_subset: obs.active_subset[unit.index()],
            demand: obs.blocked_demand[unit.index()],
        }
    }
}

impl<P: GatePolicy, T: IdleDetectTuner> PowerGating for Controller<P, T> {
    fn is_on(&self, domain: DomainId) -> bool {
        self.states[domain.index()].is_on()
    }

    fn observe(&mut self, obs: &CycleObservation) {
        let bet = self.params.bet;
        // Demand not yet consumed by a wakeup this cycle, per unit type.
        let mut demand_left = obs.blocked_demand;

        for domain in self.layout.all().iter().copied() {
            let di = domain.index();
            let ui = domain.unit().index();
            let state = self.states[di];
            match state {
                GateState::Active { idle_run } => {
                    if obs.busy[di] {
                        self.states[di] = GateState::Active { idle_run: 0 };
                    } else {
                        let idle_run = idle_run + 1;
                        if idle_run == 1 {
                            self.emit(obs.cycle, Event::IdleDetect { domain });
                        }
                        let should_gate = {
                            let ctx = self.policy_ctx(domain, idle_run, obs);
                            self.policy.should_gate(&ctx)
                        };
                        if should_gate {
                            self.states[di] = GateState::Gated { elapsed: 0 };
                            self.report.domain_mut(domain).gate_events += 1;
                            self.emit(obs.cycle, Event::Gate { domain });
                        } else {
                            self.states[di] = GateState::Active { idle_run };
                        }
                    }
                }
                GateState::Gated { elapsed } => {
                    debug_assert!(!obs.busy[di], "gated domain cannot be busy");
                    let elapsed = elapsed + 1;
                    let stats = self.report.domain_mut(domain);
                    stats.gated_cycles += 1;
                    if elapsed <= bet {
                        stats.uncompensated_cycles += 1;
                    } else {
                        stats.compensated_cycles += 1;
                    }
                    let may_wake = {
                        let ctx = self.policy_ctx(domain, 0, obs);
                        self.policy.may_wake(&ctx, elapsed)
                    };
                    if demand_left[ui] > 0 && !may_wake {
                        self.report.domain_mut(domain).demand_blocked_cycles += 1;
                        self.emit(obs.cycle, Event::BlackoutHold { domain });
                    }
                    if demand_left[ui] > 0 && may_wake {
                        demand_left[ui] -= 1;
                        let stats = self.report.domain_mut(domain);
                        stats.wakeups += 1;
                        if elapsed < bet {
                            stats.premature_wakeups += 1;
                        }
                        if elapsed == bet {
                            stats.critical_wakeups += 1;
                            self.epoch_critical[ui] += 1;
                        }
                        self.emit(
                            obs.cycle,
                            Event::Wakeup {
                                domain,
                                gated: elapsed,
                                critical: elapsed == bet,
                                premature: elapsed < bet,
                            },
                        );
                        self.states[di] = GateState::Waking {
                            left: self.params.wakeup_delay,
                        };
                    } else {
                        self.states[di] = GateState::Gated { elapsed };
                    }
                }
                GateState::Waking { left } => {
                    debug_assert!(!obs.busy[di], "waking domain cannot be busy");
                    self.report.domain_mut(domain).wakeup_cycles += 1;
                    let left = left - 1;
                    self.states[di] = if left == 0 {
                        self.emit(obs.cycle, Event::WakeComplete { domain });
                        GateState::active()
                    } else {
                        GateState::Waking { left }
                    };
                }
            }
        }

        // Epoch boundary: let the tuner adjust the CUDA-core windows.
        let epoch = self.tuner.epoch_len();
        if epoch > 0 && (obs.cycle + 1).is_multiple_of(epoch) {
            for unit in [UnitType::Int, UnitType::Fp] {
                let ui = unit.index();
                let critical = self.epoch_critical[ui];
                self.tuner
                    .on_epoch(unit, critical, &mut self.idle_detect[ui]);
                self.epoch_critical[ui] = 0;
                self.emit(
                    obs.cycle,
                    Event::TunerEpoch {
                        unit,
                        critical_wakeups: critical,
                        window: self.idle_detect[ui],
                    },
                );
            }
            if self.sanitize {
                if let Some((lo, hi)) = self.tuner.window_bounds() {
                    for unit in [UnitType::Int, UnitType::Fp] {
                        let w = self.idle_detect[unit.index()];
                        assert!(
                            (lo..=hi).contains(&w),
                            "sanitizer: idle-detect window for {unit:?} is {w} after the epoch \
                             ending at cycle {}, outside the tuner's promised bounds {lo}..={hi}",
                            obs.cycle
                        );
                    }
                }
            }
        }
    }

    /// Advances every state machine through `cycles` repeats of `obs` in
    /// closed form wherever possible.
    ///
    /// The span is cut into segments bounded by the earliest observation
    /// at which *any* domain's state class (active/gated/waking) could
    /// change or the tuner's epoch boundary falls. Within a segment no
    /// class changes, so peer summaries are frozen and
    /// [`GateForecast`] applies; counters advance arithmetically.
    /// The boundary observation itself runs through [`Self::observe`],
    /// which reproduces the per-cycle path exactly — including same-cycle
    /// peer visibility, demand consumption, and tuner epochs — so the
    /// result is bit-equal to per-cycle stepping.
    fn fast_forward(
        &mut self,
        obs: &CycleObservation,
        cycles: u64,
        transitions: &mut Vec<GateTransition>,
    ) {
        let bet = self.params.bet;
        let epoch = self.tuner.epoch_len();
        let mut done: u64 = 0;
        while done < cycles {
            let mut bulk = cycles - done;
            if epoch > 0 {
                // Observations strictly before the next epoch boundary
                // (an observation of cycle c is a boundary when
                // `(c + 1) % epoch == 0`).
                bulk = bulk.min(epoch - 1 - ((obs.cycle + done) % epoch));
            }
            for domain in self.layout.all().iter().copied() {
                let di = domain.index();
                let ui = domain.unit().index();
                let horizon = match self.states[di] {
                    GateState::Active { idle_run } => {
                        if obs.busy[di] {
                            u64::MAX
                        } else {
                            let ctx = self.policy_ctx(domain, idle_run, obs);
                            match self.policy.forecast_gate(&ctx) {
                                GateForecast::Never => u64::MAX,
                                GateForecast::AtIdleRun(t) => {
                                    u64::from(t).saturating_sub(u64::from(idle_run) + 1)
                                }
                                GateForecast::Unknown => 0,
                            }
                        }
                    }
                    // Without demand a gated domain only accumulates
                    // gated cycles; with demand it may wake on the very
                    // next observation.
                    GateState::Gated { .. } => {
                        if obs.blocked_demand[ui] == 0 {
                            u64::MAX
                        } else {
                            0
                        }
                    }
                    // The class changes exactly when `left` reaches zero.
                    GateState::Waking { left } => u64::from(left) - 1,
                };
                bulk = bulk.min(horizon);
                if bulk == 0 {
                    break;
                }
            }
            if bulk > 0 {
                // `u32::MAX` saturation is unreachable below the
                // simulator's cycle caps; per-cycle stepping saturates
                // identically via repeated `+ 1` only past u32::MAX.
                let add = u32::try_from(bulk).unwrap_or(u32::MAX);
                for domain in self.layout.all().iter().copied() {
                    let di = domain.index();
                    match self.states[di] {
                        GateState::Active { idle_run } => {
                            // Per-cycle stepping would have stamped the
                            // idle-detect start on the first cycle of
                            // this bulk segment.
                            if !obs.busy[di] && idle_run == 0 {
                                self.emit(obs.cycle + done, Event::IdleDetect { domain });
                            }
                            self.states[di] = GateState::Active {
                                idle_run: if obs.busy[di] {
                                    0
                                } else {
                                    idle_run.saturating_add(add)
                                },
                            };
                        }
                        GateState::Gated { elapsed } => {
                            let uncomp = bulk.min(u64::from(bet.saturating_sub(elapsed)));
                            let stats = self.report.domain_mut(domain);
                            stats.gated_cycles += bulk;
                            stats.uncompensated_cycles += uncomp;
                            stats.compensated_cycles += bulk - uncomp;
                            self.states[di] = GateState::Gated {
                                elapsed: elapsed.saturating_add(add),
                            };
                        }
                        GateState::Waking { left } => {
                            self.report.domain_mut(domain).wakeup_cycles += bulk;
                            self.states[di] = GateState::Waking { left: left - add };
                        }
                    }
                }
                done += bulk;
            }
            if done < cycles {
                let mut before = [false; NUM_DOMAINS];
                for d in self.layout.all() {
                    before[d.index()] = self.states[d.index()].is_on();
                }
                self.observe(&CycleObservation {
                    cycle: obs.cycle + done,
                    ..*obs
                });
                for d in self.layout.all().iter().copied() {
                    let on = self.states[d.index()].is_on();
                    if on != before[d.index()] {
                        transitions.push(GateTransition {
                            offset: done + 1,
                            domain: d,
                            powered: on,
                        });
                    }
                }
                done += 1;
            }
        }
    }

    fn report(&self) -> GatingReport {
        self.report.clone()
    }

    fn invariants(&self) -> GatingInvariants {
        let mut inv = GatingInvariants {
            // The controller's per-cycle accounting makes the observed
            // powered-off sample count exactly `gated + wakeup` cycles,
            // so the sanitizer may reconcile them exactly.
            off_cycles_accounted: true,
            // A tuner that promises bounds is held to them; a static
            // tuner's window is pinned to its configured value.
            window_bounds: self
                .tuner
                .window_bounds()
                .or(Some((self.params.idle_detect, self.params.idle_detect))),
            ..GatingInvariants::default()
        };
        for domain in self.layout.all() {
            // Any wake spends at least one gated cycle (`elapsed` is
            // incremented before `may_wake` is consulted) plus the full
            // wakeup delay; the policy's floor extends the gated part.
            let floor = self.policy.wake_floor(*domain, &self.params).max(1);
            inv.min_off_run[domain.index()] = u64::from(floor + self.params.wakeup_delay);
        }
        inv
    }

    fn set_sanitize(&mut self, on: bool) {
        self.sanitize = on;
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }

    fn name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ConvPgPolicy, StaticIdleDetect};

    fn obs(
        cycle: u64,
        busy: [bool; NUM_DOMAINS],
        demand: [u32; 4],
        actv: [u32; 4],
    ) -> CycleObservation {
        CycleObservation {
            cycle,
            busy,
            blocked_demand: demand,
            active_subset: actv,
        }
    }

    fn quiet(cycle: u64) -> CycleObservation {
        obs(cycle, [false; NUM_DOMAINS], [0; 4], [0; 4])
    }

    fn conv() -> Controller<ConvPgPolicy, StaticIdleDetect> {
        Controller::new(
            GatingParams::default(),
            ConvPgPolicy::new(),
            StaticIdleDetect::new(),
        )
    }

    #[test]
    fn idle_domain_gates_after_idle_detect_window() {
        let mut c = conv();
        for cyc in 0..4 {
            c.observe(&quiet(cyc));
            assert!(c.is_on(DomainId::INT0), "cycle {cyc}: still detecting");
        }
        c.observe(&quiet(4)); // 5th idle cycle → gate
        assert!(!c.is_on(DomainId::INT0));
        assert!(c.state(DomainId::INT0).is_gated());
        assert_eq!(c.report().domain(DomainId::INT0).gate_events, 1);
    }

    #[test]
    fn busy_cycles_reset_the_idle_counter() {
        let mut c = conv();
        let mut busy = [false; NUM_DOMAINS];
        for cyc in 0..4 {
            c.observe(&quiet(cyc));
        }
        busy[DomainId::INT0.index()] = true;
        c.observe(&obs(4, busy, [0; 4], [0; 4]));
        // Idle run reset; 4 more idle cycles must not gate.
        for cyc in 5..9 {
            c.observe(&quiet(cyc));
        }
        assert!(c.is_on(DomainId::INT0));
    }

    #[test]
    fn demand_wakes_conventional_gating_even_uncompensated() {
        let mut c = conv();
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        assert!(c.state(DomainId::INT0).is_gated());
        // One cycle later, demand arrives (elapsed = 2 < bet).
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        c.observe(&obs(5, [false; NUM_DOMAINS], demand, [0; 4]));
        let s = c.state(DomainId::INT0);
        assert_eq!(s, GateState::Waking { left: 3 });
        let r = c.report();
        assert_eq!(r.domain(DomainId::INT0).wakeups, 1);
        assert_eq!(r.domain(DomainId::INT0).premature_wakeups, 1);
    }

    #[test]
    fn wakeup_takes_wakeup_delay_cycles() {
        let mut c = conv();
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        c.observe(&obs(5, [false; NUM_DOMAINS], demand, [0; 4]));
        // 3 waking cycles.
        c.observe(&quiet(6));
        assert!(!c.is_on(DomainId::INT0));
        c.observe(&quiet(7));
        assert!(!c.is_on(DomainId::INT0));
        c.observe(&quiet(8));
        assert!(c.is_on(DomainId::INT0), "active after wakeup delay");
        assert_eq!(c.report().domain(DomainId::INT0).wakeup_cycles, 3);
    }

    #[test]
    fn single_demand_wakes_only_one_cluster() {
        let mut c = conv();
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        assert!(c.state(DomainId::INT0).is_gated());
        assert!(c.state(DomainId::INT1).is_gated());
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        c.observe(&obs(5, [false; NUM_DOMAINS], demand, [0; 4]));
        let woken = [DomainId::INT0, DomainId::INT1]
            .iter()
            .filter(|d| matches!(c.state(**d), GateState::Waking { .. }))
            .count();
        assert_eq!(woken, 1, "exactly one cluster wakes for one instruction");
    }

    #[test]
    fn double_demand_wakes_both_clusters() {
        let mut c = conv();
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 2;
        c.observe(&obs(5, [false; NUM_DOMAINS], demand, [0; 4]));
        for d in [DomainId::INT0, DomainId::INT1] {
            assert!(matches!(c.state(d), GateState::Waking { .. }));
        }
    }

    #[test]
    fn compensated_and_uncompensated_cycles_partition_gated_cycles() {
        let mut c = conv();
        // Gate at cycle 4; stay gated for 20 cycles; then wake.
        for cyc in 0..25 {
            c.observe(&quiet(cyc));
        }
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 2;
        demand[UnitType::Fp.index()] = 2;
        c.observe(&obs(25, [false; NUM_DOMAINS], demand, [0; 4]));
        let r = c.report();
        let s = r.domain(DomainId::INT0);
        assert_eq!(
            s.gated_cycles,
            s.compensated_cycles + s.uncompensated_cycles
        );
        assert_eq!(
            s.uncompensated_cycles, 14,
            "first BET cycles are uncompensated"
        );
        assert!(s.compensated_cycles > 0);
    }

    #[test]
    fn critical_wakeup_fires_exactly_at_bet() {
        let mut c = conv();
        // Gate INT at cycle 4 (after 5 idle cycles). Then wait until the
        // gated elapsed counter reaches exactly BET and apply demand.
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        // elapsed becomes 1..=13 over the next 13 quiet cycles.
        for cyc in 5..18 {
            c.observe(&quiet(cyc));
        }
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        // This observation raises elapsed to 14 == BET with demand.
        c.observe(&obs(18, [false; NUM_DOMAINS], demand, [0; 4]));
        assert_eq!(c.report().domain(DomainId::INT0).critical_wakeups, 1);
    }

    #[test]
    fn all_domains_gate_independently() {
        let mut c = conv();
        let mut busy = [false; NUM_DOMAINS];
        busy[DomainId::LDST.index()] = true;
        for cyc in 0..10 {
            c.observe(&obs(cyc, busy, [0; 4], [0; 4]));
        }
        assert!(c.is_on(DomainId::LDST), "busy LDST never gates");
        for d in [
            DomainId::INT0,
            DomainId::INT1,
            DomainId::FP0,
            DomainId::FP1,
            DomainId::SFU,
        ] {
            assert!(!c.is_on(d), "{d} idle for 10 cycles must be gated");
        }
    }

    #[test]
    fn report_name_comes_from_policy() {
        let c = conv();
        assert_eq!(c.name(), "ConvPG");
    }

    #[test]
    fn invariants_describe_conventional_gating() {
        let c = conv();
        let inv = c.invariants();
        assert!(inv.off_cycles_accounted);
        // Static tuner: window pinned to the configured value.
        let p = GatingParams::default();
        assert_eq!(inv.window_bounds, Some((p.idle_detect, p.idle_detect)));
        // ConvPG claims no wake floor, so the minimum off-run is the
        // structural one gated cycle plus the wakeup delay.
        for d in DomainId::ALL {
            assert_eq!(
                inv.min_off_run[d.index()],
                u64::from(1 + p.wakeup_delay),
                "{d}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside the tuner's promised bounds")]
    fn sanitize_catches_a_tuner_escaping_its_bounds() {
        struct Runaway;
        impl IdleDetectTuner for Runaway {
            fn on_epoch(&mut self, _unit: UnitType, _critical: u32, idle_detect: &mut u32) {
                *idle_detect += 100;
            }
            fn window_bounds(&self) -> Option<(u32, u32)> {
                Some((5, 10))
            }
            fn name(&self) -> &'static str {
                "runaway"
            }
        }
        let mut c = Controller::new(GatingParams::default(), ConvPgPolicy::new(), Runaway);
        c.set_sanitize(true);
        for cyc in 0..1000 {
            c.observe(&quiet(cyc));
        }
    }

    #[test]
    fn sanitize_off_lets_a_bad_tuner_run() {
        // Same runaway tuner, sanitizer off: release behaviour is
        // unchecked (and unchanged).
        struct Runaway;
        impl IdleDetectTuner for Runaway {
            fn on_epoch(&mut self, _unit: UnitType, _critical: u32, idle_detect: &mut u32) {
                *idle_detect += 100;
            }
            fn window_bounds(&self) -> Option<(u32, u32)> {
                Some((5, 10))
            }
            fn name(&self) -> &'static str {
                "runaway"
            }
        }
        let mut c = Controller::new(GatingParams::default(), ConvPgPolicy::new(), Runaway);
        for cyc in 0..1000 {
            c.observe(&quiet(cyc));
        }
        assert_eq!(c.idle_detect(UnitType::Int), 105);
    }

    /// Expands a fast-forward into the per-cycle reference: loops
    /// `observe` and diffs `is_on` after each, matching the
    /// [`PowerGating::fast_forward`] offset convention.
    fn step_reference(
        c: &mut Controller<ConvPgPolicy, StaticIdleDetect>,
        obs: &CycleObservation,
        cycles: u64,
    ) -> Vec<warped_sim::GateTransition> {
        let mut out = Vec::new();
        for k in 0..cycles {
            let mut before = [false; NUM_DOMAINS];
            for d in DomainId::ALL {
                before[d.index()] = c.is_on(d);
            }
            c.observe(&CycleObservation {
                cycle: obs.cycle + k,
                ..*obs
            });
            for d in DomainId::ALL {
                if c.is_on(d) != before[d.index()] {
                    out.push(warped_sim::GateTransition {
                        offset: k + 1,
                        domain: d,
                        powered: c.is_on(d),
                    });
                }
            }
        }
        out
    }

    fn assert_ff_matches(prefix: &[CycleObservation], obs: &CycleObservation, cycles: u64) {
        let mut fast = conv();
        let mut slow = conv();
        for o in prefix {
            fast.observe(o);
            slow.observe(o);
        }
        let mut got = Vec::new();
        fast.fast_forward(obs, cycles, &mut got);
        let want = step_reference(&mut slow, obs, cycles);
        assert_eq!(got, want, "transition streams diverge");
        for d in DomainId::ALL {
            assert_eq!(fast.state(d), slow.state(d), "{d} state diverges");
        }
        assert_eq!(fast.report(), slow.report(), "reports diverge");
    }

    #[test]
    fn fast_forward_matches_per_cycle_from_fresh_state() {
        // A long quiet span from power-on: every domain gates at the
        // idle-detect boundary, then sleeps across epoch boundaries.
        assert_ff_matches(&[], &quiet(0), 2500);
    }

    #[test]
    fn fast_forward_matches_per_cycle_with_busy_domains() {
        // LDST stays busy for the whole span (a pipe with a pending
        // retirement): it must stay active with a zero idle run while
        // everything else gates.
        let mut busy = [false; NUM_DOMAINS];
        busy[DomainId::LDST.index()] = true;
        let span = obs(7, busy, [0; 4], [0; 4]);
        assert_ff_matches(&[], &span, 400);
    }

    #[test]
    fn fast_forward_matches_per_cycle_from_mixed_states() {
        // Prefix: gate everything, then wake one INT cluster so the span
        // starts with a Waking domain mid-countdown.
        let mut prefix: Vec<CycleObservation> = (0..6).map(quiet).collect();
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        prefix.push(obs(6, [false; NUM_DOMAINS], demand, [0; 4]));
        assert_ff_matches(&prefix, &quiet(7), 1000);
    }

    #[test]
    fn fast_forward_with_standing_demand_matches_per_cycle() {
        // Demand repeated every observed cycle (outside the simulator's
        // quiet-span use, but part of the trait contract): gated domains
        // wake, finish waking, re-idle, and re-gate.
        let prefix: Vec<CycleObservation> = (0..8).map(quiet).collect();
        let mut demand = [0; 4];
        demand[UnitType::Fp.index()] = 1;
        let span = obs(8, [false; NUM_DOMAINS], demand, [0; 4]);
        assert_ff_matches(&prefix, &span, 300);
    }

    /// Sort key making event streams comparable across delivery modes:
    /// within one cycle the fast-forward path may emit the same events
    /// in a different interleaving than per-cycle stepping.
    fn event_key(s: &warped_sim::Stamped) -> (u64, u8, usize) {
        let (rank, di) = match s.event {
            Event::IdleDetect { domain } => (0, domain.index()),
            Event::Gate { domain } => (1, domain.index()),
            Event::BlackoutHold { domain } => (2, domain.index()),
            Event::Wakeup { domain, .. } => (3, domain.index()),
            Event::WakeComplete { domain } => (4, domain.index()),
            Event::TunerEpoch { unit, .. } => (5, unit.index()),
            _ => (6, 0),
        };
        (s.cycle, rank, di)
    }

    #[test]
    fn fast_forward_records_the_same_events_as_stepping() {
        use warped_sim::probe::RecorderConfig;
        // Prefix puts one INT cluster mid-wake, then a long quiet span
        // crosses gates, wake completions, and two epoch boundaries.
        let mut prefix: Vec<CycleObservation> = (0..6).map(quiet).collect();
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        prefix.push(obs(6, [false; NUM_DOMAINS], demand, [0; 4]));

        let run = |fast: bool| -> Vec<warped_sim::Stamped> {
            let rec = Recorder::new(RecorderConfig::default());
            let mut c = conv();
            c.set_recorder(rec.clone());
            for o in &prefix {
                c.observe(o);
            }
            if fast {
                let mut t = Vec::new();
                c.fast_forward(&quiet(7), 2500, &mut t);
            } else {
                for k in 0..2500 {
                    c.observe(&quiet(7 + k));
                }
            }
            let mut events = rec.take().events;
            events.sort_by_key(event_key);
            events
        };

        let fast = run(true);
        let slow = run(false);
        assert!(!fast.is_empty(), "the span must produce events");
        assert!(
            fast.iter()
                .any(|s| matches!(s.event, Event::IdleDetect { .. })),
            "idle-detect starts must survive bulk advancement"
        );
        assert!(
            fast.iter()
                .any(|s| matches!(s.event, Event::TunerEpoch { .. })),
            "epoch boundaries must stamp tuner decisions"
        );
        assert_eq!(fast, slow, "telemetry streams diverge between modes");
    }

    #[test]
    fn fast_forward_in_tiny_increments_matches_one_shot() {
        // Chopping a span into arbitrary pieces must not change anything.
        let mut one = conv();
        let mut many = conv();
        let mut t_one = Vec::new();
        one.fast_forward(&quiet(0), 97, &mut t_one);
        let mut at = 0u64;
        let mut t_many = Vec::new();
        for chunk in [1u64, 2, 3, 5, 8, 13, 21, 34, 10] {
            let mut t = Vec::new();
            many.fast_forward(&quiet(at), chunk, &mut t);
            for mut tr in t {
                tr.offset += at;
                t_many.push(tr);
            }
            at += chunk;
        }
        assert_eq!(at, 97);
        assert_eq!(t_one, t_many);
        assert_eq!(one.report(), many.report());
        for d in DomainId::ALL {
            assert_eq!(one.state(d), many.state(d));
        }
    }
}
