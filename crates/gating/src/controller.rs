//! The gating controller: one state machine per domain, policy-driven.

use crate::machine::GateState;
use crate::params::GatingParams;
use crate::policy::{GatePolicy, IdleDetectTuner, PeerSummary, PolicyCtx};
use warped_isa::UnitType;
use warped_sim::{
    CycleObservation, DomainId, DomainLayout, GatingReport, PowerGating, NUM_DOMAINS,
};

/// A power-gating controller parameterised by a decision
/// [`GatePolicy`] and an [`IdleDetectTuner`].
///
/// The controller owns one [`GateState`] per gating domain, the per-type
/// idle-detect registers, the per-epoch critical-wakeup counters, and
/// all statistics. It implements the simulator-facing
/// [`PowerGating`] trait.
///
/// # Examples
///
/// ```
/// use warped_gating::{Controller, ConvPgPolicy, GatingParams, StaticIdleDetect};
/// use warped_sim::{DomainId, PowerGating};
///
/// let ctl = Controller::new(
///     GatingParams::default(),
///     ConvPgPolicy::new(),
///     StaticIdleDetect::new(),
/// );
/// assert!(ctl.is_on(DomainId::FP0));
/// ```
#[derive(Debug, Clone)]
pub struct Controller<P, T> {
    params: GatingParams,
    layout: DomainLayout,
    policy: P,
    tuner: T,
    states: [GateState; NUM_DOMAINS],
    /// Effective idle-detect window per unit type (INT, FP, SFU, LDST).
    idle_detect: [u32; 4],
    /// Critical wakeups per unit type in the current epoch.
    epoch_critical: [u32; 4],
    report: GatingReport,
}

impl<P: GatePolicy, T: IdleDetectTuner> Controller<P, T> {
    /// Creates a controller with every domain powered.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn new(params: GatingParams, policy: P, tuner: T) -> Self {
        Self::with_layout(DomainLayout::fermi(), params, policy, tuner)
    }

    /// Creates a controller for an explicit clustered-architecture
    /// layout (Kepler/GCN studies).
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation.
    #[must_use]
    pub fn with_layout(layout: DomainLayout, params: GatingParams, policy: P, tuner: T) -> Self {
        params.validate();
        Controller {
            params,
            layout,
            policy,
            tuner,
            states: [GateState::active(); NUM_DOMAINS],
            idle_detect: [params.idle_detect; 4],
            epoch_critical: [0; 4],
            report: GatingReport::new(),
        }
    }

    /// The circuit timing parameters in effect.
    #[must_use]
    pub fn params(&self) -> &GatingParams {
        &self.params
    }

    /// Current state of a domain.
    #[must_use]
    pub fn state(&self, domain: DomainId) -> GateState {
        self.states[domain.index()]
    }

    /// The effective idle-detect window for a unit type right now.
    #[must_use]
    pub fn idle_detect(&self, unit: UnitType) -> u32 {
        self.idle_detect[unit.index()]
    }

    fn policy_ctx<'a>(
        &'a self,
        domain: DomainId,
        idle_run: u32,
        obs: &CycleObservation,
    ) -> PolicyCtx<'a> {
        let unit = domain.unit();
        let mut peer_states = [GateState::active(); warped_sim::MAX_SP_CLUSTERS];
        let mut n = 0;
        if domain.is_cuda_core() {
            for d in self.layout.domains_of(unit) {
                if *d != domain {
                    peer_states[n] = self.states[d.index()];
                    n += 1;
                }
            }
        }
        PolicyCtx {
            domain,
            params: &self.params,
            idle_detect: self.idle_detect[unit.index()],
            idle_run,
            peers: PeerSummary::from_states(&peer_states[..n]),
            active_subset: obs.active_subset[unit.index()],
            demand: obs.blocked_demand[unit.index()],
        }
    }
}

impl<P: GatePolicy, T: IdleDetectTuner> PowerGating for Controller<P, T> {
    fn is_on(&self, domain: DomainId) -> bool {
        self.states[domain.index()].is_on()
    }

    fn observe(&mut self, obs: &CycleObservation) {
        let bet = self.params.bet;
        // Demand not yet consumed by a wakeup this cycle, per unit type.
        let mut demand_left = obs.blocked_demand;

        for domain in self.layout.all().iter().copied() {
            let di = domain.index();
            let ui = domain.unit().index();
            let state = self.states[di];
            match state {
                GateState::Active { idle_run } => {
                    if obs.busy[di] {
                        self.states[di] = GateState::Active { idle_run: 0 };
                    } else {
                        let idle_run = idle_run + 1;
                        let ctx = self.policy_ctx(domain, idle_run, obs);
                        if self.policy.should_gate(&ctx) {
                            self.states[di] = GateState::Gated { elapsed: 0 };
                            self.report.domain_mut(domain).gate_events += 1;
                        } else {
                            self.states[di] = GateState::Active { idle_run };
                        }
                    }
                }
                GateState::Gated { elapsed } => {
                    debug_assert!(!obs.busy[di], "gated domain cannot be busy");
                    let elapsed = elapsed + 1;
                    let stats = self.report.domain_mut(domain);
                    stats.gated_cycles += 1;
                    if elapsed <= bet {
                        stats.uncompensated_cycles += 1;
                    } else {
                        stats.compensated_cycles += 1;
                    }
                    let may_wake = {
                        let ctx = self.policy_ctx(domain, 0, obs);
                        self.policy.may_wake(&ctx, elapsed)
                    };
                    if demand_left[ui] > 0 && !may_wake {
                        self.report.domain_mut(domain).demand_blocked_cycles += 1;
                    }
                    if demand_left[ui] > 0 && may_wake {
                        demand_left[ui] -= 1;
                        let stats = self.report.domain_mut(domain);
                        stats.wakeups += 1;
                        if elapsed < bet {
                            stats.premature_wakeups += 1;
                        }
                        if elapsed == bet {
                            stats.critical_wakeups += 1;
                            self.epoch_critical[ui] += 1;
                        }
                        self.states[di] = GateState::Waking {
                            left: self.params.wakeup_delay,
                        };
                    } else {
                        self.states[di] = GateState::Gated { elapsed };
                    }
                }
                GateState::Waking { left } => {
                    debug_assert!(!obs.busy[di], "waking domain cannot be busy");
                    self.report.domain_mut(domain).wakeup_cycles += 1;
                    let left = left - 1;
                    self.states[di] = if left == 0 {
                        GateState::active()
                    } else {
                        GateState::Waking { left }
                    };
                }
            }
        }

        // Epoch boundary: let the tuner adjust the CUDA-core windows.
        let epoch = self.tuner.epoch_len();
        if epoch > 0 && (obs.cycle + 1).is_multiple_of(epoch) {
            for unit in [UnitType::Int, UnitType::Fp] {
                let ui = unit.index();
                let critical = self.epoch_critical[ui];
                self.tuner
                    .on_epoch(unit, critical, &mut self.idle_detect[ui]);
                self.epoch_critical[ui] = 0;
            }
        }
    }

    fn report(&self) -> GatingReport {
        self.report.clone()
    }

    fn name(&self) -> &'static str {
        self.policy.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ConvPgPolicy, StaticIdleDetect};

    fn obs(
        cycle: u64,
        busy: [bool; NUM_DOMAINS],
        demand: [u32; 4],
        actv: [u32; 4],
    ) -> CycleObservation {
        CycleObservation {
            cycle,
            busy,
            blocked_demand: demand,
            active_subset: actv,
        }
    }

    fn quiet(cycle: u64) -> CycleObservation {
        obs(cycle, [false; NUM_DOMAINS], [0; 4], [0; 4])
    }

    fn conv() -> Controller<ConvPgPolicy, StaticIdleDetect> {
        Controller::new(
            GatingParams::default(),
            ConvPgPolicy::new(),
            StaticIdleDetect::new(),
        )
    }

    #[test]
    fn idle_domain_gates_after_idle_detect_window() {
        let mut c = conv();
        for cyc in 0..4 {
            c.observe(&quiet(cyc));
            assert!(c.is_on(DomainId::INT0), "cycle {cyc}: still detecting");
        }
        c.observe(&quiet(4)); // 5th idle cycle → gate
        assert!(!c.is_on(DomainId::INT0));
        assert!(c.state(DomainId::INT0).is_gated());
        assert_eq!(c.report().domain(DomainId::INT0).gate_events, 1);
    }

    #[test]
    fn busy_cycles_reset_the_idle_counter() {
        let mut c = conv();
        let mut busy = [false; NUM_DOMAINS];
        for cyc in 0..4 {
            c.observe(&quiet(cyc));
        }
        busy[DomainId::INT0.index()] = true;
        c.observe(&obs(4, busy, [0; 4], [0; 4]));
        // Idle run reset; 4 more idle cycles must not gate.
        for cyc in 5..9 {
            c.observe(&quiet(cyc));
        }
        assert!(c.is_on(DomainId::INT0));
    }

    #[test]
    fn demand_wakes_conventional_gating_even_uncompensated() {
        let mut c = conv();
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        assert!(c.state(DomainId::INT0).is_gated());
        // One cycle later, demand arrives (elapsed = 2 < bet).
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        c.observe(&obs(5, [false; NUM_DOMAINS], demand, [0; 4]));
        let s = c.state(DomainId::INT0);
        assert_eq!(s, GateState::Waking { left: 3 });
        let r = c.report();
        assert_eq!(r.domain(DomainId::INT0).wakeups, 1);
        assert_eq!(r.domain(DomainId::INT0).premature_wakeups, 1);
    }

    #[test]
    fn wakeup_takes_wakeup_delay_cycles() {
        let mut c = conv();
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        c.observe(&obs(5, [false; NUM_DOMAINS], demand, [0; 4]));
        // 3 waking cycles.
        c.observe(&quiet(6));
        assert!(!c.is_on(DomainId::INT0));
        c.observe(&quiet(7));
        assert!(!c.is_on(DomainId::INT0));
        c.observe(&quiet(8));
        assert!(c.is_on(DomainId::INT0), "active after wakeup delay");
        assert_eq!(c.report().domain(DomainId::INT0).wakeup_cycles, 3);
    }

    #[test]
    fn single_demand_wakes_only_one_cluster() {
        let mut c = conv();
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        assert!(c.state(DomainId::INT0).is_gated());
        assert!(c.state(DomainId::INT1).is_gated());
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        c.observe(&obs(5, [false; NUM_DOMAINS], demand, [0; 4]));
        let woken = [DomainId::INT0, DomainId::INT1]
            .iter()
            .filter(|d| matches!(c.state(**d), GateState::Waking { .. }))
            .count();
        assert_eq!(woken, 1, "exactly one cluster wakes for one instruction");
    }

    #[test]
    fn double_demand_wakes_both_clusters() {
        let mut c = conv();
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 2;
        c.observe(&obs(5, [false; NUM_DOMAINS], demand, [0; 4]));
        for d in [DomainId::INT0, DomainId::INT1] {
            assert!(matches!(c.state(d), GateState::Waking { .. }));
        }
    }

    #[test]
    fn compensated_and_uncompensated_cycles_partition_gated_cycles() {
        let mut c = conv();
        // Gate at cycle 4; stay gated for 20 cycles; then wake.
        for cyc in 0..25 {
            c.observe(&quiet(cyc));
        }
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 2;
        demand[UnitType::Fp.index()] = 2;
        c.observe(&obs(25, [false; NUM_DOMAINS], demand, [0; 4]));
        let r = c.report();
        let s = r.domain(DomainId::INT0);
        assert_eq!(
            s.gated_cycles,
            s.compensated_cycles + s.uncompensated_cycles
        );
        assert_eq!(
            s.uncompensated_cycles, 14,
            "first BET cycles are uncompensated"
        );
        assert!(s.compensated_cycles > 0);
    }

    #[test]
    fn critical_wakeup_fires_exactly_at_bet() {
        let mut c = conv();
        // Gate INT at cycle 4 (after 5 idle cycles). Then wait until the
        // gated elapsed counter reaches exactly BET and apply demand.
        for cyc in 0..5 {
            c.observe(&quiet(cyc));
        }
        // elapsed becomes 1..=13 over the next 13 quiet cycles.
        for cyc in 5..18 {
            c.observe(&quiet(cyc));
        }
        let mut demand = [0; 4];
        demand[UnitType::Int.index()] = 1;
        // This observation raises elapsed to 14 == BET with demand.
        c.observe(&obs(18, [false; NUM_DOMAINS], demand, [0; 4]));
        assert_eq!(c.report().domain(DomainId::INT0).critical_wakeups, 1);
    }

    #[test]
    fn all_domains_gate_independently() {
        let mut c = conv();
        let mut busy = [false; NUM_DOMAINS];
        busy[DomainId::LDST.index()] = true;
        for cyc in 0..10 {
            c.observe(&obs(cyc, busy, [0; 4], [0; 4]));
        }
        assert!(c.is_on(DomainId::LDST), "busy LDST never gates");
        for d in [
            DomainId::INT0,
            DomainId::INT1,
            DomainId::FP0,
            DomainId::FP1,
            DomainId::SFU,
        ] {
            assert!(!c.is_on(d), "{d} idle for 10 cycles must be gated");
        }
    }

    #[test]
    fn report_name_comes_from_policy() {
        let c = conv();
        assert_eq!(c.name(), "ConvPG");
    }
}
