//! Power-gating timing parameters.

/// Timing parameters of the power-gating circuit.
///
/// The paper's defaults (from Hu et al.'s estimates for execution-block
/// gating): a 5-cycle idle-detect window, a 14-cycle break-even time, and
/// a 3-cycle wakeup delay. The sensitivity study (Figure 11) sweeps the
/// break-even time over {9, 14, 19} and the wakeup delay over {3, 6, 9}.
///
/// # Examples
///
/// ```
/// use warped_gating::GatingParams;
///
/// let p = GatingParams::default();
/// assert_eq!((p.idle_detect, p.bet, p.wakeup_delay), (5, 14, 3));
///
/// let swept = GatingParams { bet: 19, ..GatingParams::default() };
/// swept.validate();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatingParams {
    /// Consecutive idle cycles before a unit is gated.
    pub idle_detect: u32,
    /// Break-even time: gated cycles needed to recoup the switching
    /// energy of the sleep transistor.
    pub bet: u32,
    /// Cycles to restore operating voltage after a wakeup is triggered.
    pub wakeup_delay: u32,
}

impl GatingParams {
    /// Parameters with an explicit idle-detect window and paper defaults
    /// elsewhere.
    #[must_use]
    pub fn with_idle_detect(idle_detect: u32) -> Self {
        GatingParams {
            idle_detect,
            ..GatingParams::default()
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if the break-even time or the wakeup delay is zero (the
    /// idle-detect window may legitimately be zero: gate immediately).
    pub fn validate(&self) {
        assert!(self.bet > 0, "break-even time must be positive");
        assert!(self.wakeup_delay > 0, "wakeup delay must be positive");
    }
}

impl Default for GatingParams {
    fn default() -> Self {
        GatingParams {
            idle_detect: 5,
            bet: 14,
            wakeup_delay: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = GatingParams::default();
        assert_eq!(p.idle_detect, 5);
        assert_eq!(p.bet, 14);
        assert_eq!(p.wakeup_delay, 3);
        p.validate();
    }

    #[test]
    fn zero_idle_detect_is_allowed() {
        GatingParams::with_idle_detect(0).validate();
    }

    #[test]
    #[should_panic(expected = "break-even")]
    fn zero_bet_rejected() {
        GatingParams {
            bet: 0,
            ..GatingParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "wakeup delay")]
    fn zero_wakeup_rejected() {
        GatingParams {
            wakeup_delay: 0,
            ..GatingParams::default()
        }
        .validate();
    }
}
