//! The per-domain gating state machine (the paper's Figure 2c).

/// The gating state of one domain.
///
/// The paper's four named states map as follows: *Idle-detect* is
/// [`GateState::Active`] with a nonzero idle run; *Uncompensated* and
/// *Compensated* are [`GateState::Gated`] with `elapsed` below or at/above
/// the break-even time respectively; *Wakeup* is [`GateState::Waking`].
///
/// Every transition between these states is observable at runtime: when
/// telemetry is armed ([`SmConfig::telemetry`](warped_sim::SmConfig)),
/// the [`Controller`](crate::Controller) stamps an
/// [`Event`](warped_sim::Event) — idle-detect start, gate, blackout
/// hold, wakeup (with its critical/premature classification), and wake
/// completion — at the cycle the transition is made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateState {
    /// Powered and usable; `idle_run` counts consecutive idle cycles
    /// (the idle-detect counter).
    Active {
        /// Consecutive idle cycles observed so far.
        idle_run: u32,
    },
    /// Power gated; `elapsed` counts cycles spent gated so far.
    Gated {
        /// Cycles spent gated in this gating event.
        elapsed: u32,
    },
    /// Restoring voltage; `left` counts remaining wakeup cycles.
    Waking {
        /// Remaining wakeup-delay cycles.
        left: u32,
    },
}

impl GateState {
    /// Fresh, powered, zero idle history.
    #[must_use]
    pub fn active() -> Self {
        GateState::Active { idle_run: 0 }
    }

    /// Whether the scheduler may issue to this domain.
    #[must_use]
    pub fn is_on(self) -> bool {
        matches!(self, GateState::Active { .. })
    }

    /// Whether the domain is currently gated.
    #[must_use]
    pub fn is_gated(self) -> bool {
        matches!(self, GateState::Gated { .. })
    }

    /// Cycles spent gated in the current gating event (0 if not gated).
    #[must_use]
    pub fn gated_elapsed(self) -> u32 {
        match self {
            GateState::Gated { elapsed } => elapsed,
            _ => 0,
        }
    }

    /// Whether the gated domain has passed the break-even time.
    #[must_use]
    pub fn is_compensated(self, bet: u32) -> bool {
        match self {
            GateState::Gated { elapsed } => elapsed >= bet,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_on() {
        let s = GateState::active();
        assert!(s.is_on());
        assert!(!s.is_gated());
        assert_eq!(s.gated_elapsed(), 0);
    }

    #[test]
    fn gated_states_report_compensation_against_bet() {
        let early = GateState::Gated { elapsed: 5 };
        let late = GateState::Gated { elapsed: 14 };
        assert!(!early.is_compensated(14));
        assert!(late.is_compensated(14));
        assert!(!early.is_on());
        assert!(early.is_gated());
        assert_eq!(late.gated_elapsed(), 14);
    }

    #[test]
    fn waking_is_neither_on_nor_gated() {
        let w = GateState::Waking { left: 2 };
        assert!(!w.is_on());
        assert!(!w.is_gated());
        assert!(!w.is_compensated(1));
    }
}
