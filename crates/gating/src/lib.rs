//! # warped-gating
//!
//! The power-gating framework for GPGPU execution units, plus the
//! conventional power-gating baseline (Hu et al., ISLPED 2004) that the
//! Warped Gates paper compares against.
//!
//! ## Structure
//!
//! * [`GatingParams`] — idle-detect window, break-even time (BET), and
//!   wakeup delay. Paper defaults: 5 / 14 / 3 cycles.
//! * [`GatePolicy`] — the two decisions that differentiate gating
//!   schemes: *when to gate* an idle cluster and *when a gated cluster
//!   may wake*. [`ConvPgPolicy`] implements the conventional rules
//!   (gate after idle-detect; wake on demand at any time). The Blackout
//!   policies live in the `warped-gates` crate.
//! * [`IdleDetectTuner`] — an epoch-boundary hook that may adjust the
//!   per-unit-type idle-detect window at runtime. [`StaticIdleDetect`]
//!   leaves it fixed; the paper's *adaptive idle detect* lives in the
//!   `warped-gates` crate.
//! * [`Controller`] — drives one state machine per gating domain and
//!   implements the simulator-facing
//!   [`PowerGating`](warped_sim::PowerGating) trait, so any
//!   policy/tuner combination plugs straight into the simulator.
//!
//! ## The state machine
//!
//! Each domain follows the paper's Figure 2c: *idle-detect* (active,
//! counting idle cycles) → *uncompensated* (gated, before BET) →
//! *compensated* (gated, past BET) → *wakeup* (restoring voltage) →
//! active. A policy controls the active→gated edge and whether the
//! uncompensated→wakeup edge exists (conventional gating has it;
//! Blackout removes it).
//!
//! ## Quick example
//!
//! ```
//! use warped_gating::{conventional, GatingParams};
//! use warped_sim::{DomainId, PowerGating};
//!
//! let ctl = conventional(GatingParams::default());
//! assert!(ctl.is_on(DomainId::INT0));
//! assert_eq!(ctl.name(), "ConvPG");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coarse;
mod controller;
mod machine;
mod params;
mod policy;

pub use coarse::SmCoarseGating;
pub use controller::Controller;
pub use machine::GateState;
pub use params::GatingParams;
pub use policy::{
    ConvPgPolicy, GateForecast, GatePolicy, IdleDetectTuner, PeerSummary, PolicyCtx,
    StaticIdleDetect,
};

/// Builds the conventional power-gating controller with a fixed
/// idle-detect window: the `ConvPG` configuration of the paper.
#[must_use]
pub fn conventional(params: GatingParams) -> Controller<ConvPgPolicy, StaticIdleDetect> {
    Controller::new(params, ConvPgPolicy::new(), StaticIdleDetect::new())
}
