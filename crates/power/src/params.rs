//! Energy-model parameters.

/// Parameters of the execution-unit energy model.
///
/// Energies are expressed in *leakage-cycle units*: the leakage energy of
/// one execution cluster over one core cycle is 1.0. With that
/// normalisation:
///
/// * static energy of an always-on unit type = `clusters × cycles`,
/// * the power-gating overhead of one gating event is defined so that
///   the break-even time is self-consistent: an event that stays gated
///   for exactly `bet` cycles saves exactly its own overhead
///   (`overhead = bet × 1.0`),
/// * dynamic energy per instruction is calibrated so that, at the
///   average INT utilisation of the paper's benchmark suite, static
///   energy is ≈50% of INT unit energy and ≥90% of FP unit energy
///   (Figure 1b's baseline bars).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Leakage power of one cluster, per cycle (the unit: 1.0).
    pub static_power_per_cluster: f64,
    /// Dynamic energy of one integer warp instruction, in leakage-cycle
    /// units of the INT cluster.
    pub dynamic_energy_per_int_op: f64,
    /// Dynamic energy of one floating point warp instruction, in
    /// leakage-cycle units of the FP cluster. Much smaller than the INT
    /// value: GPUWattch's 45 nm GTX480 data attributes far more leakage
    /// per unit of switching energy to the FP units (4.40 W of FP
    /// leakage vs milliwatt-scale INT leakage), which is why the paper's
    /// Figure 1b shows static energy at ~50% of INT unit energy but >90%
    /// of FP unit energy.
    pub dynamic_energy_per_fp_op: f64,
}

impl PowerParams {
    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not strictly positive.
    pub fn validate(&self) {
        assert!(
            self.static_power_per_cluster > 0.0,
            "static power must be positive"
        );
        assert!(
            self.dynamic_energy_per_int_op > 0.0,
            "dynamic energy must be positive"
        );
        assert!(
            self.dynamic_energy_per_fp_op > 0.0,
            "dynamic energy must be positive"
        );
    }

    /// Dynamic energy per warp instruction of `unit` (INT and FP carry
    /// distinct costs; SFU and LDST reuse the INT figure, though the
    /// energy model never reports those units).
    #[must_use]
    pub fn dynamic_energy_per_op(&self, unit: warped_isa::UnitType) -> f64 {
        match unit {
            warped_isa::UnitType::Fp => self.dynamic_energy_per_fp_op,
            _ => self.dynamic_energy_per_int_op,
        }
    }

    /// The energy overhead of one power-gating event (sleep-transistor
    /// switching), given the break-even time in cycles.
    ///
    /// By the definition of break-even time, the overhead equals the
    /// leakage saved over exactly `bet` gated cycles.
    #[must_use]
    pub fn gate_event_overhead(&self, bet: u32) -> f64 {
        f64::from(bet) * self.static_power_per_cluster
    }
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            static_power_per_cluster: 1.0,
            dynamic_energy_per_int_op: 5.6,
            dynamic_energy_per_fp_op: 0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PowerParams::default().validate();
    }

    #[test]
    fn overhead_is_bet_leakage_cycles() {
        let p = PowerParams::default();
        assert_eq!(p.gate_event_overhead(14), 14.0);
        assert_eq!(p.gate_event_overhead(9), 9.0);
    }

    #[test]
    fn overhead_scales_with_cluster_leakage() {
        let p = PowerParams {
            static_power_per_cluster: 2.0,
            ..PowerParams::default()
        };
        assert_eq!(p.gate_event_overhead(10), 20.0);
    }

    #[test]
    #[should_panic(expected = "static power")]
    fn non_positive_static_rejected() {
        PowerParams {
            static_power_per_cluster: 0.0,
            ..PowerParams::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "dynamic energy")]
    fn non_positive_dynamic_rejected() {
        PowerParams {
            dynamic_energy_per_fp_op: -1.0,
            ..PowerParams::default()
        }
        .validate();
    }

    #[test]
    fn fp_dynamic_energy_is_far_below_int() {
        let p = PowerParams::default();
        assert!(p.dynamic_energy_per_fp_op < p.dynamic_energy_per_int_op / 5.0);
        assert!(
            (p.dynamic_energy_per_op(warped_isa::UnitType::Fp) - p.dynamic_energy_per_fp_op).abs()
                < 1e-12
        );
        assert!(
            (p.dynamic_energy_per_op(warped_isa::UnitType::Int) - p.dynamic_energy_per_int_op)
                .abs()
                < 1e-12
        );
    }
}
