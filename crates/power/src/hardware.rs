//! Hardware-overhead model for the microarchitectural counters that
//! GATES, Blackout, and adaptive idle detect add to the SM.
//!
//! The paper synthesized the counters in Verilog with the NCSU PDK 45 nm
//! library and reported their area and power against GPUWattch's SM
//! figures (Section 7.5). We embed those published constants and derive
//! the same overhead percentages from the counter inventory, instead of
//! re-running synthesis.

/// SM area reported by GPUWattch for the GTX480, in mm².
pub const SM_AREA_MM2: f64 = 48.1;
/// SM dynamic power, in watts.
pub const SM_DYNAMIC_W: f64 = 1.92;
/// SM leakage power, in watts.
pub const SM_LEAKAGE_W: f64 = 1.61;

/// Synthesized area of the full counter set, in µm² (paper §7.5).
pub const COUNTERS_AREA_UM2: f64 = 1210.8;
/// Synthesized dynamic power of the counter set, in watts.
pub const COUNTERS_DYNAMIC_W: f64 = 1.55e-3;
/// Synthesized leakage power of the counter set, in watts.
pub const COUNTERS_LEAKAGE_W: f64 = 1.21e-5;

/// One counter/register added by the proposed mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSpec {
    /// What the counter is for.
    pub name: &'static str,
    /// Bit width.
    pub bits: u32,
    /// How many instances per SM.
    pub instances: u32,
    /// Which mechanism requires it.
    pub mechanism: &'static str,
}

/// The counter inventory the paper's mechanisms add per SM.
///
/// * GATES: four 5-bit ready counters (INT/FP/SFU/LDST over at most 32
///   active warps each — the paper sizes them at 5 bits), two 6-bit
///   active-subset counters (up to 48 warps), one 2-bit priority
///   register.
/// * Blackout: one 5-bit break-even countdown per gated cluster (four
///   clusters).
/// * Adaptive idle detect: one critical-wakeup counter and one
///   idle-detect register per CUDA-core unit type.
#[must_use]
pub fn counter_inventory() -> Vec<CounterSpec> {
    vec![
        CounterSpec {
            name: "INT_RDY/FP_RDY/SFU_RDY/LDST_RDY ready counters",
            bits: 5,
            instances: 4,
            mechanism: "GATES",
        },
        CounterSpec {
            name: "INT_ACTV/FP_ACTV active-subset counters",
            bits: 6,
            instances: 2,
            mechanism: "GATES",
        },
        CounterSpec {
            name: "instruction priority register",
            bits: 2,
            instances: 1,
            mechanism: "GATES",
        },
        CounterSpec {
            name: "blackout break-even countdown",
            bits: 5,
            instances: 4,
            mechanism: "Blackout",
        },
        CounterSpec {
            name: "critical-wakeup epoch counter",
            bits: 8,
            instances: 2,
            mechanism: "Adaptive idle detect",
        },
        CounterSpec {
            name: "idle-detect register",
            bits: 4,
            instances: 2,
            mechanism: "Adaptive idle detect",
        },
    ]
}

/// Total storage bits the mechanisms add per SM.
#[must_use]
pub fn total_bits() -> u32 {
    counter_inventory()
        .iter()
        .map(|c| c.bits * c.instances)
        .sum()
}

/// The overhead percentages of the added hardware against one SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareOverhead {
    /// Area overhead as a fraction of SM area.
    pub area_fraction: f64,
    /// Dynamic power overhead as a fraction of SM dynamic power.
    pub dynamic_fraction: f64,
    /// Leakage power overhead as a fraction of SM leakage power.
    pub leakage_fraction: f64,
}

/// Computes the overhead from the embedded synthesis constants.
///
/// # Examples
///
/// ```
/// let o = warped_power::hardware::overhead();
/// assert!(o.area_fraction < 0.0001, "paper reports ~0.003% area");
/// assert!(o.dynamic_fraction < 0.001);
/// ```
#[must_use]
pub fn overhead() -> HardwareOverhead {
    HardwareOverhead {
        area_fraction: COUNTERS_AREA_UM2 / (SM_AREA_MM2 * 1.0e6),
        dynamic_fraction: COUNTERS_DYNAMIC_W / SM_DYNAMIC_W,
        leakage_fraction: COUNTERS_LEAKAGE_W / SM_LEAKAGE_W,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_overhead_matches_paper_magnitude() {
        let o = overhead();
        // The paper reports 0.003% (rounded up from ~0.0025%).
        assert!(o.area_fraction > 1.0e-5 && o.area_fraction < 5.0e-5);
    }

    #[test]
    fn power_overheads_match_paper_magnitudes() {
        let o = overhead();
        // ~0.08% dynamic, ~0.0007% leakage.
        assert!((o.dynamic_fraction - 8.07e-4).abs() < 1e-5);
        assert!((o.leakage_fraction - 7.5e-6).abs() < 1e-6);
    }

    #[test]
    fn inventory_covers_all_three_mechanisms() {
        let inv = counter_inventory();
        for mech in ["GATES", "Blackout", "Adaptive idle detect"] {
            assert!(inv.iter().any(|c| c.mechanism == mech), "missing {mech}");
        }
    }

    #[test]
    fn total_bits_is_small() {
        let bits = total_bits();
        // 20 + 12 + 2 + 20 + 16 + 8 = 78 bits per SM.
        assert_eq!(bits, 78);
    }
}
