//! Epoch-resolved energy accounting: a [`CycleObserver`] that integrates
//! leakage and gating-overhead energy over fixed windows, giving the
//! energy-over-time view that aggregate reports hide (ramp phases,
//! steady state, drains, and the moments a gating policy pays for
//! itself).

use crate::params::PowerParams;
use warped_isa::UnitType;
use warped_sim::trace::{CycleObserver, CycleSample, SpanSample};
use warped_sim::{DomainLayout, NUM_DOMAINS};

/// One epoch's integrated energy for a single unit type.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EpochEnergy {
    /// Leakage burned by powered clusters (gated clusters burn none).
    pub static_energy: f64,
    /// Sleep-transistor switching energy charged at gate-entry edges.
    pub overhead: f64,
    /// Leakage an always-on design would have burned (the baseline).
    pub always_on_static: f64,
}

impl EpochEnergy {
    /// Net static-energy savings in this epoch (can be negative when
    /// overhead outweighs the gated time).
    #[must_use]
    pub fn savings(&self) -> f64 {
        self.always_on_static - self.static_energy - self.overhead
    }

    /// Savings as a fraction of the always-on leakage (0 when the epoch
    /// is empty).
    #[must_use]
    pub fn savings_fraction(&self) -> f64 {
        if self.always_on_static <= 0.0 {
            0.0
        } else {
            self.savings() / self.always_on_static
        }
    }
}

/// A cycle observer that integrates per-unit-type energy over fixed
/// epochs.
///
/// Gate-entry edges are detected from the `powered` flags (a domain
/// going powered→unpowered pays one gating-event overhead; the wakeup
/// transition is free in this model because the overhead constant
/// covers the full sleep/wake pair, consistent with
/// [`PowerParams::gate_event_overhead`]).
///
/// # Examples
///
/// ```
/// use warped_power::{EnergyTimeline, PowerParams};
/// use warped_sim::trace::{CycleObserver, CycleSample};
/// use warped_sim::{DomainLayout, NUM_DOMAINS};
/// use warped_isa::UnitType;
///
/// let mut t = EnergyTimeline::new(PowerParams::default(), DomainLayout::fermi(), 14, 100);
/// t.observe(&CycleSample {
///     cycle: 0,
///     busy: [false; NUM_DOMAINS],
///     powered: [true; NUM_DOMAINS],
///     issued: 0,
///     active_warps: 0,
/// });
/// // One cycle, both INT clusters powered: 2 leakage-cycle units burned.
/// let open = t.current_epoch(UnitType::Int);
/// assert!((open.static_energy - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyTimeline {
    params: PowerParams,
    layout: DomainLayout,
    bet: u32,
    epoch_len: u64,
    prev_powered: Option<[bool; NUM_DOMAINS]>,
    current: [EpochEnergy; 4],
    cycles_in_epoch: u64,
    epochs: Vec<[EpochEnergy; 4]>,
}

impl EnergyTimeline {
    /// Creates a timeline with the given epoch length in cycles.
    ///
    /// `bet` must match the gating controller's break-even time (it
    /// sets the per-event overhead).
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero or the power parameters are
    /// invalid.
    #[must_use]
    pub fn new(params: PowerParams, layout: DomainLayout, bet: u32, epoch_len: u64) -> Self {
        params.validate();
        assert!(epoch_len > 0, "epoch length must be positive");
        EnergyTimeline {
            params,
            layout,
            bet,
            epoch_len,
            prev_powered: None,
            current: [EpochEnergy::default(); 4],
            cycles_in_epoch: 0,
            epochs: Vec::new(),
        }
    }

    /// Completed epochs so far.
    #[must_use]
    pub fn epochs(&self) -> &[[EpochEnergy; 4]] {
        &self.epochs
    }

    /// The epoch length in cycles this timeline integrates over.
    #[must_use]
    pub fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    /// The (partial) energy of the epoch currently being integrated.
    #[must_use]
    pub fn current_epoch(&self, unit: UnitType) -> EpochEnergy {
        self.current[unit.index()]
    }

    /// Per-epoch savings fractions for `unit`, ready for a sparkline.
    #[must_use]
    pub fn savings_series(&self, unit: UnitType) -> Vec<f64> {
        self.epochs
            .iter()
            .map(|e| e[unit.index()].savings_fraction())
            .collect()
    }

    /// Renders a savings series as a Unicode sparkline (one char per
    /// epoch, ▁ = none/negative, █ = all leakage eliminated).
    #[must_use]
    pub fn sparkline(&self, unit: UnitType) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        self.savings_series(unit)
            .iter()
            .map(|&f| {
                let idx = (f.clamp(0.0, 1.0) * 7.0).round() as usize;
                BARS[idx]
            })
            .collect()
    }
}

impl CycleObserver for EnergyTimeline {
    fn observe(&mut self, sample: &CycleSample) {
        for unit in [UnitType::Int, UnitType::Fp] {
            let slot = &mut self.current[unit.index()];
            for d in self.layout.domains_of(unit) {
                let di = d.index();
                slot.always_on_static += self.params.static_power_per_cluster;
                if sample.powered[di] {
                    slot.static_energy += self.params.static_power_per_cluster;
                }
                if let Some(prev) = &self.prev_powered {
                    if prev[di] && !sample.powered[di] {
                        slot.overhead += self.params.gate_event_overhead(self.bet);
                    }
                }
            }
        }
        self.prev_powered = Some(sample.powered);
        self.cycles_in_epoch += 1;
        if self.cycles_in_epoch == self.epoch_len {
            self.epochs.push(self.current);
            self.current = [EpochEnergy::default(); 4];
            self.cycles_in_epoch = 0;
        }
    }

    /// Integrates a fast-forwarded span segment by segment instead of
    /// cycle by cycle.
    ///
    /// Segments are bounded by gate transitions and epoch closures;
    /// within a segment the powered flags are constant, so the leakage
    /// integral is a cycle count times the per-cluster coefficient.
    /// Gate-entry overhead is charged exactly where per-cycle stepping
    /// would charge it: at each powered→unpowered transition inside the
    /// span, and at span entry when the last observed sample predates
    /// the gating decision that opened the span. With the default
    /// normalized coefficients (1.0 per leakage-cycle) every accumulator
    /// holds integer values and the result is bit-identical to per-cycle
    /// delivery; non-integer coefficients agree to within f64 rounding.
    fn observe_span(&mut self, span: &SpanSample<'_>) {
        let p = self.params.static_power_per_cluster;
        let overhead = self.params.gate_event_overhead(self.bet);
        let mut powered = span.powered;
        if let Some(prev) = &self.prev_powered {
            for unit in [UnitType::Int, UnitType::Fp] {
                for d in self.layout.domains_of(unit) {
                    let di = d.index();
                    if prev[di] && !powered[di] {
                        self.current[unit.index()].overhead += overhead;
                    }
                }
            }
        }
        let mut next = 0;
        let mut k: u64 = 0;
        while k < span.cycles {
            while next < span.transitions.len() && span.transitions[next].offset <= k {
                let t = &span.transitions[next];
                let di = t.domain.index();
                let was = powered[di];
                powered[di] = t.powered;
                if was && !t.powered && t.domain.is_cuda_core() && self.layout.contains(t.domain) {
                    self.current[t.domain.unit().index()].overhead += overhead;
                }
                next += 1;
            }
            let until_transition = if next < span.transitions.len() {
                span.transitions[next].offset - k
            } else {
                span.cycles - k
            };
            let seg = (span.cycles - k)
                .min(until_transition)
                .min(self.epoch_len - self.cycles_in_epoch);
            for unit in [UnitType::Int, UnitType::Fp] {
                let mut clusters: u64 = 0;
                let mut on: u64 = 0;
                for d in self.layout.domains_of(unit) {
                    clusters += 1;
                    on += u64::from(powered[d.index()]);
                }
                let slot = &mut self.current[unit.index()];
                slot.always_on_static += (seg * clusters) as f64 * p;
                slot.static_energy += (seg * on) as f64 * p;
            }
            self.cycles_in_epoch += seg;
            if self.cycles_in_epoch == self.epoch_len {
                self.epochs.push(self.current);
                self.current = [EpochEnergy::default(); 4];
                self.cycles_in_epoch = 0;
            }
            k += seg;
        }
        self.prev_powered = Some(powered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_sim::DomainId;

    fn sample(powered_int0: bool) -> CycleSample {
        let mut powered = [true; NUM_DOMAINS];
        powered[DomainId::INT0.index()] = powered_int0;
        CycleSample {
            cycle: 0,
            busy: [false; NUM_DOMAINS],
            powered,
            issued: 0,
            active_warps: 0,
        }
    }

    fn timeline(epoch: u64) -> EnergyTimeline {
        EnergyTimeline::new(PowerParams::default(), DomainLayout::fermi(), 14, epoch)
    }

    #[test]
    fn always_on_epoch_saves_nothing() {
        let mut t = timeline(10);
        for _ in 0..10 {
            t.observe(&sample(true));
        }
        let e = t.epochs()[0][UnitType::Int.index()];
        assert_eq!(e.static_energy, 20.0);
        assert_eq!(e.always_on_static, 20.0);
        assert_eq!(e.overhead, 0.0);
        assert_eq!(e.savings(), 0.0);
    }

    #[test]
    fn gating_saves_leakage_but_charges_the_edge() {
        let mut t = timeline(20);
        t.observe(&sample(true));
        for _ in 0..19 {
            t.observe(&sample(false)); // INT0 gated for 19 cycles
        }
        let e = t.epochs()[0][UnitType::Int.index()];
        // INT1 always powered (20), INT0 powered 1 cycle.
        assert_eq!(e.static_energy, 21.0);
        assert_eq!(e.overhead, 14.0, "one gate-entry edge at BET=14");
        // Saved 19 leakage-cycles, paid 14: net +5.
        assert!((e.savings() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn short_gating_event_is_net_negative() {
        let mut t = timeline(10);
        t.observe(&sample(true));
        for _ in 0..5 {
            t.observe(&sample(false)); // gated 5 < BET
        }
        for _ in 0..4 {
            t.observe(&sample(true));
        }
        let e = t.epochs()[0][UnitType::Int.index()];
        assert!(
            e.savings() < 0.0,
            "5 gated cycles cannot pay a 14-cycle overhead"
        );
    }

    #[test]
    fn epochs_partition_the_run() {
        let mut t = timeline(7);
        for _ in 0..21 {
            t.observe(&sample(true));
        }
        assert_eq!(t.epochs().len(), 3);
        assert_eq!(t.current_epoch(UnitType::Fp), EpochEnergy::default());
    }

    #[test]
    fn sparkline_length_matches_epochs() {
        let mut t = timeline(5);
        for i in 0..25 {
            t.observe(&sample(i % 2 == 0));
        }
        assert_eq!(t.sparkline(UnitType::Int).chars().count(), 5);
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_rejected() {
        let _ = timeline(0);
    }

    #[test]
    fn span_integration_matches_per_cycle_delivery() {
        use warped_sim::GateTransition;

        // A span that exercises everything at once: an entry edge (the
        // pre-span sample has INT0 powered, the span starts with it
        // gated), in-span transitions in both directions, several epoch
        // closures, and a trailing transition at offset == cycles that
        // must only affect the *next* observation.
        let mut entry = [true; NUM_DOMAINS];
        entry[DomainId::INT0.index()] = false;
        let transitions = vec![
            GateTransition {
                offset: 3,
                domain: DomainId::FP1,
                powered: false,
            },
            GateTransition {
                offset: 9,
                domain: DomainId::INT0,
                powered: true,
            },
            GateTransition {
                offset: 15,
                domain: DomainId::INT0,
                powered: false,
            },
            GateTransition {
                offset: 22,
                domain: DomainId::INT1,
                powered: false,
            },
            GateTransition {
                offset: 22,
                domain: DomainId::FP1,
                powered: true,
            },
            GateTransition {
                offset: 31,
                domain: DomainId::SFU,
                powered: false,
            },
        ];
        let span = SpanSample {
            start_cycle: 5,
            cycles: 31,
            busy: [false; NUM_DOMAINS],
            powered: entry,
            transitions: &transitions,
            active_warps: 0,
        };

        let mut batched = timeline(7);
        let mut stepped = timeline(7);
        // Shared pre-span history so both have a prev_powered sample and
        // a partially filled epoch.
        for t in [&mut batched, &mut stepped] {
            t.observe(&sample(true));
            t.observe(&sample(true));
        }
        batched.observe_span(&span);
        span.for_each_cycle(|s| stepped.observe(s));

        assert_eq!(batched.epochs(), stepped.epochs());
        assert_eq!(batched.cycles_in_epoch, stepped.cycles_in_epoch);
        for unit in [UnitType::Int, UnitType::Fp] {
            assert_eq!(
                batched.current_epoch(unit),
                stepped.current_epoch(unit),
                "{unit:?} open epoch diverges"
            );
        }
        assert_eq!(batched.prev_powered, stepped.prev_powered);

        // One more per-cycle observation with INT1 restored: both paths
        // must agree on the edges it implies (SFU's trailing transition
        // is invisible to the energy model; INT1's wake is free).
        let post = sample(true);
        batched.observe(&post);
        stepped.observe(&post);
        assert_eq!(
            batched.current_epoch(UnitType::Int),
            stepped.current_epoch(UnitType::Int)
        );
    }
}
