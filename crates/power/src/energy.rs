//! Energy accounting from simulation and gating statistics.

use crate::params::PowerParams;
use warped_isa::UnitType;
use warped_sim::{GatingReport, SimStats};

/// The energy consumed by one unit type over a run, split the way the
/// paper's Figure 1b splits it: dynamic work, power-gating overhead, and
/// residual static (leakage) energy.
///
/// All values are in leakage-cycle units (see
/// [`PowerParams`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Leakage actually burned: un-gated cluster-cycles × leakage power.
    /// Wakeup (voltage-restore) cycles burn leakage but do no work, so
    /// they are included here.
    pub static_energy: f64,
    /// Sleep-transistor switching energy: gating events × per-event
    /// overhead.
    pub overhead: f64,
    /// Dynamic energy of executed instructions.
    pub dynamic: f64,
}

impl EnergyBreakdown {
    /// Builds a breakdown from raw counts.
    ///
    /// * `cycles` — run length in cycles,
    /// * `clusters` — gating domains of this unit type (2 for INT/FP),
    /// * `gated_cluster_cycles` — total gated cycles summed over those
    ///   domains,
    /// * `gate_events` — gating events summed over those domains,
    /// * `ops` — instructions executed by this unit type.
    ///
    /// The per-event overhead uses the break-even definition with the
    /// default 14-cycle BET; use [`EnergyBreakdown::from_run`] to respect
    /// a configured BET.
    ///
    /// # Panics
    ///
    /// Panics if more cycles are gated than exist.
    #[must_use]
    pub fn from_counts(
        params: &PowerParams,
        unit: UnitType,
        cycles: u64,
        clusters: u64,
        gated_cluster_cycles: u64,
        gate_events: u64,
        ops: u64,
    ) -> Self {
        Self::with_bet(
            params,
            unit,
            14,
            cycles,
            clusters,
            gated_cluster_cycles,
            gate_events,
            ops,
        )
    }

    /// Like [`EnergyBreakdown::from_counts`] with an explicit break-even
    /// time (which sets the per-event overhead).
    ///
    /// # Panics
    ///
    /// Panics if `gated_cluster_cycles > clusters × cycles`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn with_bet(
        params: &PowerParams,
        unit: UnitType,
        bet: u32,
        cycles: u64,
        clusters: u64,
        gated_cluster_cycles: u64,
        gate_events: u64,
        ops: u64,
    ) -> Self {
        params.validate();
        let capacity = clusters * cycles;
        assert!(
            gated_cluster_cycles <= capacity,
            "gated cycles {gated_cluster_cycles} exceed capacity {capacity}"
        );
        let ungated = capacity - gated_cluster_cycles;
        EnergyBreakdown {
            static_energy: ungated as f64 * params.static_power_per_cluster,
            overhead: gate_events as f64 * params.gate_event_overhead(bet),
            dynamic: ops as f64 * params.dynamic_energy_per_op(unit),
        }
    }

    /// Builds the breakdown for `unit` from a run's statistics.
    ///
    /// `bet` must be the break-even time the gating controller was
    /// configured with, since it defines the per-event overhead.
    #[must_use]
    pub fn from_run(
        params: &PowerParams,
        stats: &SimStats,
        gating: &GatingReport,
        unit: UnitType,
        bet: u32,
    ) -> Self {
        let domains = stats.layout.domains_of(unit);
        let g = gating.sum_over(domains);
        Self::with_bet(
            params,
            unit,
            bet,
            stats.cycles,
            domains.len() as u64,
            g.gated_cycles,
            g.gate_events,
            stats.issued(unit),
        )
    }

    /// Total energy of the three components.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.static_energy + self.overhead + self.dynamic
    }

    /// `(dynamic, overhead, static)` as fractions of a reference total
    /// (Figure 1b normalises against the no-gating baseline's total).
    ///
    /// # Panics
    ///
    /// Panics if `reference_total` is not strictly positive.
    #[must_use]
    pub fn normalized_to(&self, reference_total: f64) -> (f64, f64, f64) {
        assert!(reference_total > 0.0, "reference total must be positive");
        (
            self.dynamic / reference_total,
            self.overhead / reference_total,
            self.static_energy / reference_total,
        )
    }
}

/// Static-energy savings of a gated run relative to an un-gated baseline
/// run (the paper's Figure 9 metric).
///
/// Savings account for the power-gating overhead and for any runtime
/// change: the baseline burns leakage for *its* cycle count, the gated
/// run for its own.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticSavings {
    /// Leakage the always-on baseline burns.
    pub baseline_static: f64,
    /// Leakage plus gating overhead the gated run burns.
    pub gated_static_plus_overhead: f64,
}

impl StaticSavings {
    /// Computes savings for `unit`, comparing a gated run against a
    /// baseline (no power gating) run of the same workload.
    #[must_use]
    pub fn for_unit(
        params: &PowerParams,
        baseline: &SimStats,
        gated_stats: &SimStats,
        gated_report: &GatingReport,
        unit: UnitType,
        bet: u32,
    ) -> Self {
        let clusters = baseline.layout.domains_of(unit).len() as f64;
        let baseline_static = clusters * baseline.cycles as f64 * params.static_power_per_cluster;
        let e = EnergyBreakdown::from_run(params, gated_stats, gated_report, unit, bet);
        StaticSavings {
            baseline_static,
            gated_static_plus_overhead: e.static_energy + e.overhead,
        }
    }

    /// The savings fraction: 1 means all leakage eliminated, 0 means
    /// none, negative means gating overhead exceeded the savings (as the
    /// paper observes for `backprop`/`cutcp`/`lavaMD`/`NN` under
    /// conventional gating).
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.baseline_static <= 0.0 {
            return 0.0;
        }
        1.0 - self.gated_static_plus_overhead / self.baseline_static
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_sim::DomainId;

    fn params() -> PowerParams {
        PowerParams::default()
    }

    #[test]
    fn no_gating_means_full_static_energy() {
        let e = EnergyBreakdown::from_counts(&params(), UnitType::Int, 100, 2, 0, 0, 10);
        assert_eq!(e.static_energy, 200.0);
        assert_eq!(e.overhead, 0.0);
        assert_eq!(e.dynamic, 56.0);
        assert_eq!(e.total(), 256.0);
    }

    #[test]
    fn gating_reduces_static_but_adds_overhead() {
        let e = EnergyBreakdown::with_bet(&params(), UnitType::Int, 14, 100, 2, 60, 3, 10);
        assert_eq!(e.static_energy, 140.0);
        assert_eq!(e.overhead, 42.0);
    }

    #[test]
    fn break_even_event_is_energy_neutral() {
        // One event gated for exactly BET cycles: saved = BET, overhead = BET.
        let baseline = EnergyBreakdown::with_bet(&params(), UnitType::Int, 14, 100, 1, 0, 0, 0);
        let gated = EnergyBreakdown::with_bet(&params(), UnitType::Int, 14, 100, 1, 14, 1, 0);
        let saved = baseline.static_energy - gated.static_energy;
        assert!((saved - gated.overhead).abs() < 1e-12);
    }

    #[test]
    fn event_shorter_than_bet_is_net_negative() {
        let baseline = EnergyBreakdown::with_bet(&params(), UnitType::Int, 14, 100, 1, 0, 0, 0);
        let gated = EnergyBreakdown::with_bet(&params(), UnitType::Int, 14, 100, 1, 5, 1, 0);
        let with_pg = gated.static_energy + gated.overhead;
        assert!(with_pg > baseline.static_energy, "net energy loss expected");
    }

    #[test]
    #[should_panic(expected = "exceed capacity")]
    fn impossible_gated_cycles_rejected() {
        let _ = EnergyBreakdown::from_counts(&params(), UnitType::Int, 10, 2, 21, 0, 0);
    }

    #[test]
    fn normalized_fractions_sum_to_one_against_own_total() {
        let e = EnergyBreakdown::from_counts(&params(), UnitType::Int, 100, 2, 60, 3, 10);
        let (d, o, s) = e.normalized_to(e.total());
        assert!((d + o + s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "reference total")]
    fn zero_reference_total_rejected() {
        let e = EnergyBreakdown::from_counts(&params(), UnitType::Int, 100, 2, 0, 0, 0);
        let _ = e.normalized_to(0.0);
    }

    #[test]
    fn savings_fraction_positive_for_long_gating() {
        let s = StaticSavings {
            baseline_static: 200.0,
            gated_static_plus_overhead: 120.0,
        };
        assert!((s.fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn savings_fraction_negative_when_overhead_dominates() {
        let s = StaticSavings {
            baseline_static: 200.0,
            gated_static_plus_overhead: 230.0,
        };
        assert!(s.fraction() < 0.0);
    }

    #[test]
    fn savings_from_run_statistics() {
        use warped_sim::GatingReport;
        let mut baseline = SimStats::new();
        baseline.cycles = 1000;
        let mut gated_stats = SimStats::new();
        gated_stats.cycles = 1010; // slight slowdown
        let mut report = GatingReport::new();
        report.domain_mut(DomainId::INT0).gated_cycles = 400;
        report.domain_mut(DomainId::INT0).gate_events = 5;
        report.domain_mut(DomainId::INT1).gated_cycles = 500;
        report.domain_mut(DomainId::INT1).gate_events = 5;
        let s = StaticSavings::for_unit(
            &params(),
            &baseline,
            &gated_stats,
            &report,
            UnitType::Int,
            14,
        );
        // baseline static = 2*1000; gated static = 2*1010-900 = 1120;
        // overhead = 10*14 = 140 → (2000-1260)/2000 = 0.37
        assert!((s.fraction() - 0.37).abs() < 1e-12);
    }
}
