//! # warped-power
//!
//! GPUWattch/McPAT-style energy, area, and power-gating-overhead models
//! for the Warped Gates reproduction.
//!
//! The model works in *leakage-cycle units*: the leakage of one execution
//! cluster over one cycle is the unit of energy. Every quantity the
//! paper's figures report — static-energy savings, energy breakdowns,
//! overhead shares — is a ratio, so this normalisation is lossless. The
//! chip-level estimator ([`chip`]) converts to watts using the published
//! GTX480 constants from the paper's Section 7.3, and the hardware
//! overhead model ([`hardware`]) embeds the synthesized counter
//! area/power figures of Section 7.5.
//!
//! ## Quick example
//!
//! ```
//! use warped_power::{EnergyBreakdown, PowerParams};
//!
//! let params = PowerParams::default();
//! // A 1000-cycle run in which the two INT clusters were gated for a
//! // total of 600 cluster-cycles across 10 gating events and executed
//! // 500 instructions:
//! let e = EnergyBreakdown::from_counts(&params, warped_isa::UnitType::Int, 1000, 2, 600, 10, 500);
//! assert!(e.static_energy > 0.0);
//! let baseline = EnergyBreakdown::from_counts(&params, warped_isa::UnitType::Int, 1000, 2, 0, 0, 500);
//! assert!(e.total() < baseline.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod hardware;

mod energy;
mod params;
mod timeline;

pub use energy::{EnergyBreakdown, StaticSavings};
pub use params::PowerParams;
pub use timeline::{EnergyTimeline, EpochEnergy};
