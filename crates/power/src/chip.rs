//! Chip-level power-savings estimator (paper Section 7.3).
//!
//! Converts the execution-unit static-energy savings measured by the
//! simulator into a total on-chip power-savings estimate, using the
//! GTX480 leakage figures the paper reads out of GPUWattch.

/// Total on-chip leakage power of the GTX480, in watts (GPUWattch).
pub const CHIP_LEAKAGE_W: f64 = 26.87;

/// Leakage attributed to all integer units, in watts.
///
/// Reported verbatim from the paper's Section 7.3. Note: this figure is
/// suspiciously small next to the FP figure (the paper's own Figure 1b
/// shows substantial INT static energy); we reproduce the published
/// constant rather than second-guess it, since it only affects the
/// chip-level headline estimate, not any per-unit result.
pub const INT_UNITS_LEAKAGE_W: f64 = 0.00557;

/// Leakage attributed to all floating point units, in watts.
pub const FP_UNITS_LEAKAGE_W: f64 = 4.40;

/// The execution units' share of on-chip leakage (the paper's 16.38%).
///
/// The paper derives this from the GPUWattch component breakdown; it is
/// slightly above `(INT + FP) / CHIP` because it also counts shared
/// execution-block overheads.
pub const EXEC_UNIT_LEAKAGE_SHARE: f64 = 0.1638;

/// Estimates the fraction of total on-chip power saved.
///
/// * `leakage_share_of_total` — what fraction of total chip power is
///   leakage (the paper considers 33% for today and 50% for future
///   nodes),
/// * `static_savings` — the measured execution-unit static-energy
///   savings fraction (e.g. 0.30–0.45 for Warped Gates).
///
/// # Panics
///
/// Panics if either argument is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use warped_power::chip::total_chip_savings;
///
/// // The paper's bounds: 30%–45% unit savings at 33% leakage share
/// // give 1.62%–2.43% total chip savings.
/// let low = total_chip_savings(0.33, 0.30);
/// let high = total_chip_savings(0.33, 0.45);
/// assert!((low - 0.0162).abs() < 2e-4);
/// assert!((high - 0.0243).abs() < 2e-4);
/// ```
#[must_use]
pub fn total_chip_savings(leakage_share_of_total: f64, static_savings: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&leakage_share_of_total),
        "leakage share must be in [0,1]"
    );
    assert!(
        (-1.0..=1.0).contains(&static_savings),
        "savings fraction must be in [-1,1]"
    );
    EXEC_UNIT_LEAKAGE_SHARE * leakage_share_of_total * static_savings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_node_scenario_matches_paper() {
        // At 50% leakage share, 30%–45% unit savings → 2.46%–3.69%.
        let low = total_chip_savings(0.50, 0.30);
        let high = total_chip_savings(0.50, 0.45);
        assert!((low - 0.0246).abs() < 3e-4);
        assert!((high - 0.0369).abs() < 3e-4);
    }

    #[test]
    fn exec_share_consistent_with_component_figures() {
        // INT + FP leakage alone is ~16.4% of chip leakage.
        let direct = (INT_UNITS_LEAKAGE_W + FP_UNITS_LEAKAGE_W) / CHIP_LEAKAGE_W;
        assert!((direct - EXEC_UNIT_LEAKAGE_SHARE).abs() < 0.01);
    }

    #[test]
    fn zero_savings_zero_chip_impact() {
        assert_eq!(total_chip_savings(0.33, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "leakage share")]
    fn out_of_range_share_rejected() {
        let _ = total_chip_savings(1.5, 0.3);
    }

    #[test]
    fn negative_savings_allowed_for_pathological_gating() {
        assert!(total_chip_savings(0.33, -0.05) < 0.0);
    }
}
