//! Content digest of raw trace bytes.
//!
//! Downstream cache keys (the serve tier's `cell_fingerprint`) must be
//! a function of the trace's *content*, never its filename: two
//! directories holding the same bytes under different names must share
//! cache lines, and editing one byte of a trace must move every key.
//! This module provides that digest — a SplitMix64-style word fold over
//! the raw bytes, the same non-cryptographic mixer the rest of the
//! workspace uses for seeded hashing, so the crate stays
//! dependency-free.

const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64's avalanche finalizer (Steele et al., OOPSLA 2014).
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The content digest of a byte string: length first, then the bytes in
/// 8-byte little-endian words (zero-padded tail), folded through the
/// SplitMix64 avalanche under a fixed domain tag.
///
/// Not cryptographic — collision resistance only needs to beat
/// accidental aliasing between distinct checked-in traces, the same bar
/// the workspace's config fingerprints clear.
///
/// # Examples
///
/// ```
/// use warped_trace::content_digest;
///
/// let a = content_digest(b"WGT1 k\n");
/// assert_eq!(a, content_digest(b"WGT1 k\n"), "pure function");
/// assert_ne!(a, content_digest(b"WGT1 j\n"), "one byte moves the digest");
/// ```
#[must_use]
pub fn content_digest(bytes: &[u8]) -> u64 {
    // Domain tag: b"wgtrace1" as a little-endian word.
    let mut state = avalanche(u64::from_le_bytes(*b"wgtrace1").wrapping_add(GAMMA));
    let fold = |w: u64, state: u64| avalanche(state.wrapping_add(GAMMA) ^ w);
    state = fold(bytes.len() as u64, state);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        state = fold(u64::from_le_bytes(w), state);
    }
    avalanche(state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic() {
        let text = b"WGT1 hotspot\nlaunch warps=1 block=1 stagger=0 waves=1\n";
        assert_eq!(content_digest(text), content_digest(text));
    }

    #[test]
    fn single_byte_edits_move_the_digest() {
        let base = b"i ldg d=120 s=16 lat=1".to_vec();
        let reference = content_digest(&base);
        for i in 0..base.len() {
            let mut edited = base.clone();
            edited[i] ^= 1;
            assert_ne!(
                content_digest(&edited),
                reference,
                "flipping byte {i} must move the digest"
            );
        }
    }

    #[test]
    fn length_extension_does_not_alias() {
        // Zero-padded tails must not collide with explicit zero bytes.
        assert_ne!(content_digest(b"abc"), content_digest(b"abc\0"));
        assert_ne!(content_digest(b""), content_digest(b"\0"));
    }
}
