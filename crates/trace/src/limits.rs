//! Hard size caps the WGT1 parser enforces.
//!
//! Every cap exists so that a hostile or corrupted trace is rejected
//! with a typed error before the parser allocates or loops
//! proportionally to an attacker-controlled claim. The caps are
//! generous relative to every trace the capture path produces (a
//! full-scale captured benchmark is a few kilobytes and well under a
//! hundred instructions).

/// Maximum size of a whole trace in bytes (1 MiB).
pub const MAX_TRACE_BYTES: usize = 1 << 20;

/// Maximum length of a single line in bytes.
pub const MAX_LINE_BYTES: usize = 1 << 12;

/// Maximum length of the kernel name in bytes.
pub const MAX_NAME_BYTES: usize = 64;

/// Maximum number of static instructions in a trace.
pub const MAX_INSTRUCTIONS: usize = 1 << 12;

/// Maximum number of segments (straight blocks and loops).
pub const MAX_SEGMENTS: usize = 256;

/// Maximum number of `@` address samples attached to one instruction.
pub const MAX_SAMPLES_PER_INSTRUCTION: usize = 64;

/// Maximum warps per SM a trace may launch.
pub const MAX_WARPS: u32 = 1 << 20;

/// Maximum warps per thread block.
pub const MAX_BLOCK_WARPS: u32 = 1 << 10;

/// Maximum back-to-back kernel waves.
pub const MAX_WAVES: u32 = 1 << 16;

/// Maximum loop trip count.
pub const MAX_TRIPS: u32 = 1 << 24;

/// Maximum launch stagger in dynamic instructions.
pub const MAX_STAGGER: u32 = 1 << 24;
