//! The lowered form of a parsed trace: a simulator-ready workload.

use warped_isa::{Kernel, Segment};

/// A parsed, lowered WGT1 trace: everything the experiment engine needs
/// to launch the recorded workload on one SM.
///
/// Produced only by the parser ([`parse_bytes`](crate::parse_bytes) and
/// friends), so every invariant the simulator's constructors assert —
/// non-empty kernel, positive warp/trip/wave counts, an in-range hit
/// rate — is already guaranteed.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWorkload {
    /// The kernel name recorded on the magic line.
    pub name: String,
    /// The lowered kernel, with address-stream descriptors attached to
    /// the memory instructions that recorded them.
    pub kernel: Kernel,
    /// Warps launched per SM (grid size).
    pub total_warps: u32,
    /// Warps per thread block (slot-refill granularity).
    pub block_warps: u32,
    /// Launch stagger in dynamic instructions.
    pub stagger: u32,
    /// Back-to-back kernel launches the grid is split into.
    pub waves: u32,
    /// L1 hit rate of the seeded latency model for global loads.
    pub l1_hit_rate: f64,
    /// Memory-system seed.
    pub mem_seed: u64,
    /// Content digest of the raw trace bytes (see
    /// [`content_digest`](crate::content_digest)). Cache keys fold this
    /// in, so results address the trace's *content*, not its filename.
    pub digest: u64,
}

impl TraceWorkload {
    /// A proportionally smaller copy — fewer warps, waves, and loop
    /// trips — for fast tests and smoke runs, mirroring
    /// `BenchmarkSpec::scaled`. The digest is unchanged: the scale
    /// factor is a separate experiment knob that cache keys already
    /// fold, exactly as they do for synthetic benchmarks.
    ///
    /// Note that scaling a trace scales its *recorded* loop trip counts
    /// directly, whereas scaling a synthetic spec scales the trip count
    /// the generator divides among barrier rounds — so a trace captured
    /// at full scale and then scaled is not necessarily the same
    /// workload as a capture of the scaled spec. Round-trip equality
    /// holds when both sides run at the same effective scale.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `(0, 1]`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> TraceWorkload {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0,1]");
        let scale_u32 = |v: u32| ((f64::from(v) * factor).round() as u32).max(1);
        let segments = self
            .kernel
            .segments()
            .iter()
            .map(|s| match s {
                Segment::Straight(v) => Segment::Straight(v.clone()),
                Segment::Loop { body, trips } => Segment::Loop {
                    body: body.clone(),
                    trips: scale_u32(*trips),
                },
            })
            .collect();
        TraceWorkload {
            kernel: Kernel::new(self.kernel.name().to_owned(), segments),
            total_warps: scale_u32(self.total_warps),
            waves: scale_u32(self.waves),
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_isa::KernelBuilder;

    fn sample() -> TraceWorkload {
        TraceWorkload {
            name: "k".to_owned(),
            kernel: KernelBuilder::new("k")
                .iadd(1, 0, 0)
                .begin_loop(100)
                .fadd(2, 1, 2)
                .end_loop()
                .build(),
            total_warps: 96,
            block_warps: 6,
            stagger: 10,
            waves: 6,
            l1_hit_rate: 0.7,
            mem_seed: 42,
            digest: 7,
        }
    }

    #[test]
    fn scaling_shrinks_warps_waves_and_trips() {
        let w = sample().scaled(0.1);
        assert_eq!(w.total_warps, 10);
        assert_eq!(w.waves, 1);
        assert_eq!(w.kernel.dynamic_len(), 1 + 10);
        assert_eq!(w.digest, 7, "digest addresses the original bytes");
    }

    #[test]
    fn full_scale_is_the_identity() {
        let w = sample();
        assert_eq!(w.scaled(1.0), w);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn zero_scale_is_rejected() {
        let _ = sample().scaled(0.0);
    }
}
