//! Deterministic WGT1 serialization: capture a kernel back out as text.
//!
//! The capture path is the inverse of [`parse_str`](crate::parse_str):
//! `capture(&spec)` emits exactly the grammar the parser accepts, so
//! capture → parse → lower reproduces the original kernel structurally
//! (`Kernel: PartialEq`) and bit-identically under simulation. The
//! output is fully deterministic — same spec, same bytes — which is
//! what lets the corpus under `traces/` be diffed in CI.

use std::fmt::Write as _;
use warped_isa::{AddrGen, Kernel, Segment};

/// How many warps' address samples a capture records per
/// descriptor-carrying memory instruction.
pub const SAMPLE_WARPS: u32 = 2;

/// How many per-warp access indices a capture records per
/// descriptor-carrying memory instruction.
pub const SAMPLE_INDICES: u64 = 4;

/// Everything a WGT1 capture records about one workload: the kernel and
/// the launch/memory configuration it ran under.
#[derive(Debug, Clone, Copy)]
pub struct CaptureSpec<'a> {
    /// Kernel name for the magic line (ASCII alphanumerics, `_`, `-`,
    /// `.`; at most 64 bytes).
    pub name: &'a str,
    /// The kernel whose issue stream is being recorded.
    pub kernel: &'a Kernel,
    /// Warps launched per SM.
    pub total_warps: u32,
    /// Warps per thread block.
    pub block_warps: u32,
    /// Launch stagger in dynamic instructions.
    pub stagger: u32,
    /// Back-to-back launches the grid is split into.
    pub waves: u32,
    /// L1 hit rate of the seeded latency model.
    pub l1_hit_rate: f64,
    /// Memory-system seed.
    pub mem_seed: u64,
}

/// Serializes a workload as WGT1 text.
///
/// The producer side is allowed to be strict where the parser must be
/// forgiving: a capture of an invalid spec is a caller bug, not an
/// input-handling concern.
///
/// # Panics
///
/// Panics if the name violates the WGT1 charset/length rules, the hit
/// rate is outside `[0, 1]`, or any launch field is zero where the
/// format requires at least 1 — all conditions the parser would reject
/// on read-back.
#[must_use]
pub fn capture(spec: &CaptureSpec<'_>) -> String {
    assert!(
        !spec.name.is_empty()
            && spec.name.len() <= crate::limits::MAX_NAME_BYTES
            && spec
                .name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'),
        "kernel name '{}' violates the WGT1 name rules",
        spec.name
    );
    assert!(
        spec.l1_hit_rate.is_finite() && (0.0..=1.0).contains(&spec.l1_hit_rate),
        "hit rate {} outside [0,1]",
        spec.l1_hit_rate
    );
    assert!(
        spec.total_warps >= 1 && spec.block_warps >= 1 && spec.waves >= 1,
        "launch fields must be at least 1"
    );

    let mut out = String::new();
    let _ = writeln!(out, "WGT1 {}", spec.name);
    let _ = writeln!(
        out,
        "launch warps={} block={} stagger={} waves={}",
        spec.total_warps, spec.block_warps, spec.stagger, spec.waves
    );
    // f64 Display is the shortest round-tripping representation, so
    // `hit` survives capture → parse bit-exactly.
    let _ = writeln!(
        out,
        "mem hit={} seed={:#x}",
        spec.l1_hit_rate, spec.mem_seed
    );
    for segment in spec.kernel.segments() {
        let body = match segment {
            Segment::Straight(body) => {
                let _ = writeln!(out, "seg straight");
                body
            }
            Segment::Loop { body, trips } => {
                let _ = writeln!(out, "seg loop trips={trips}");
                body
            }
        };
        for instr in body {
            out.push_str("i ");
            out.push_str(instr.opcode().mnemonic());
            if let Some(dst) = instr.destination() {
                let _ = write!(out, " d={}", dst.index());
            }
            let mut sources = instr.sources();
            if let Some(first) = sources.next() {
                let _ = write!(out, " s={}", first.index());
                for src in sources {
                    let _ = write!(out, ",{}", src.index());
                }
            }
            let _ = write!(out, " lat={}", instr.opcode().latency());
            if let Some(gen) = instr.addr_gen() {
                let _ = write!(out, " gen={}", gen_field(gen));
            }
            out.push('\n');
            if let Some(gen) = instr.addr_gen() {
                for warp in 0..SAMPLE_WARPS.min(spec.total_warps) {
                    for index in 0..SAMPLE_INDICES {
                        let _ = writeln!(out, "@ {warp} {index} {:#x}", gen.address(warp, index));
                    }
                }
            }
        }
        out.push_str("end\n");
    }
    out
}

/// The `gen=` field syntax for a descriptor, matching what
/// `parse_gen` accepts.
fn gen_field(gen: AddrGen) -> String {
    match gen {
        AddrGen::Strided {
            base,
            stride,
            warp_stride,
        } => format!("strided:{base:#x},{stride},{warp_stride}"),
        AddrGen::Tiled {
            base,
            row_len,
            tile,
        } => format!("tiled:{base:#x},{row_len},{tile}"),
        AddrGen::IndirectRandom { seed, footprint } => {
            format!("random:{seed:#x},{footprint}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_str;
    use warped_isa::KernelBuilder;

    fn spec_of(kernel: &Kernel) -> CaptureSpec<'_> {
        CaptureSpec {
            name: "roundtrip",
            kernel,
            total_warps: 48,
            block_warps: 4,
            stagger: 7,
            waves: 2,
            l1_hit_rate: 0.73,
            mem_seed: 0xdead_c0de,
        }
    }

    fn rich_kernel() -> Kernel {
        KernelBuilder::new("roundtrip")
            .iadd(1, 0, 0)
            .load_global_strided(2, 0x1000, 4, 256)
            .begin_loop(17)
            .ffma(3, 1, 2, 3)
            .load_global_random(4, 99, 4096)
            .sfu(5, 4)
            .end_loop()
            .load_global_tiled(6, 0x8000, 64, 8)
            .store_global_strided(5, 0x2000, 8, 512)
            .barrier()
            .build()
    }

    #[test]
    fn capture_is_deterministic() {
        let kernel = rich_kernel();
        let spec = spec_of(&kernel);
        assert_eq!(capture(&spec), capture(&spec));
    }

    #[test]
    fn capture_parses_back_to_the_same_workload() {
        let kernel = rich_kernel();
        let spec = spec_of(&kernel);
        let text = capture(&spec);
        let parsed = parse_str(&text).unwrap();
        assert_eq!(parsed.kernel, kernel, "structural kernel equality");
        assert_eq!(parsed.name, spec.name);
        assert_eq!(parsed.total_warps, spec.total_warps);
        assert_eq!(parsed.block_warps, spec.block_warps);
        assert_eq!(parsed.stagger, spec.stagger);
        assert_eq!(parsed.waves, spec.waves);
        assert_eq!(parsed.mem_seed, spec.mem_seed);
        assert!(
            (parsed.l1_hit_rate - spec.l1_hit_rate).abs() == 0.0,
            "hit rate survives bit-exactly"
        );
    }

    #[test]
    fn recapture_of_a_parse_is_byte_identical() {
        let kernel = rich_kernel();
        let text = capture(&spec_of(&kernel));
        let parsed = parse_str(&text).unwrap();
        let again = capture(&CaptureSpec {
            name: &parsed.name,
            kernel: &parsed.kernel,
            total_warps: parsed.total_warps,
            block_warps: parsed.block_warps,
            stagger: parsed.stagger,
            waves: parsed.waves,
            l1_hit_rate: parsed.l1_hit_rate,
            mem_seed: parsed.mem_seed,
        });
        assert_eq!(text, again, "capture ∘ parse is idempotent");
    }

    #[test]
    fn samples_cover_at_most_the_launched_warps() {
        let kernel = rich_kernel();
        let mut spec = spec_of(&kernel);
        spec.total_warps = 1;
        let text = capture(&spec);
        assert!(!text.contains("@ 1 "), "no samples beyond warp 0");
        assert!(parse_str(&text).is_ok());
    }

    #[test]
    #[should_panic(expected = "name")]
    fn bad_names_are_rejected_at_capture_time() {
        let kernel = rich_kernel();
        let mut spec = spec_of(&kernel);
        spec.name = "no spaces allowed";
        let _ = capture(&spec);
    }
}
