//! Typed parse errors with line and byte-offset diagnostics.

use std::fmt;

/// A WGT1 parse failure: what went wrong and where.
///
/// `line` is 1-based; `offset` is the byte offset of the start of the
/// offending line (or of the offending byte, for encoding errors).
/// Errors that concern the whole input (size cap, I/O) use line 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending line (0 = whole input).
    pub line: usize,
    /// Byte offset of the offending position in the input.
    pub offset: usize,
    /// What went wrong.
    pub kind: TraceErrorKind,
}

impl TraceError {
    pub(crate) fn at(line: usize, offset: usize, kind: TraceErrorKind) -> Self {
        TraceError { line, offset, kind }
    }

    pub(crate) fn whole(kind: TraceErrorKind) -> Self {
        TraceError {
            line: 0,
            offset: 0,
            kind,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace: {}", self.kind)
        } else {
            write!(
                f,
                "line {} (byte {}): {}",
                self.line, self.offset, self.kind
            )
        }
    }
}

impl std::error::Error for TraceError {}

/// Every way a WGT1 trace can be malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceErrorKind {
    /// Reading the input failed.
    Io(String),
    /// The input exceeds [`limits::MAX_TRACE_BYTES`](crate::limits).
    TooLarge {
        /// The cap in bytes.
        limit: usize,
    },
    /// The input is not valid UTF-8.
    InvalidUtf8,
    /// A line exceeds [`limits::MAX_LINE_BYTES`](crate::limits).
    LineTooLong {
        /// The cap in bytes.
        limit: usize,
    },
    /// The first line is not `WGT1 <name>`.
    BadMagic,
    /// The kernel name is empty, too long, or uses a forbidden
    /// character (allowed: ASCII alphanumerics, `_`, `-`, `.`).
    BadName(String),
    /// A header directive appeared twice.
    DuplicateHeader(&'static str),
    /// A required header directive never appeared.
    MissingHeader(&'static str),
    /// The line starts with no known directive.
    UnknownDirective(String),
    /// A directive is missing a required field.
    MissingField(&'static str),
    /// A directive carries a field it does not define.
    UnknownField(String),
    /// A field appeared twice on one line.
    DuplicateField(&'static str),
    /// A field's value failed to parse or fell outside its range.
    BadValue {
        /// The field at fault.
        field: &'static str,
        /// The offending value as given.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// A structural cap was exceeded (instructions, segments, samples).
    LimitExceeded {
        /// What overflowed.
        what: &'static str,
        /// The cap.
        limit: u64,
    },
    /// A directive appeared where the grammar forbids it (e.g. `i`
    /// outside a segment, `@` after a non-memory instruction, nested
    /// `seg`).
    MisplacedLine(&'static str),
    /// An instruction record names no known opcode mnemonic.
    UnknownMnemonic(String),
    /// Destination/source operands are inconsistent with the opcode
    /// (missing or forbidden destination, too many sources, or a
    /// register index out of range).
    OperandMismatch(String),
    /// The recorded `lat` disagrees with the opcode class's pipeline
    /// latency — the capture and this simulator disagree about timing.
    LatencyMismatch {
        /// The opcode's mnemonic.
        mnemonic: &'static str,
        /// The latency the opcode class defines.
        expected: u32,
        /// The latency the record claims.
        got: u32,
    },
    /// A `gen=` descriptor or `@` sample on a non-memory instruction.
    AddrOnNonMemory(&'static str),
    /// A recorded address sample disagrees with the instruction's
    /// `gen=` descriptor.
    SampleMismatch {
        /// Warp of the offending sample.
        warp: u32,
        /// Dynamic access index of the offending sample.
        index: u64,
        /// The address the trace records.
        recorded: u64,
        /// The address the descriptor derives.
        derived: u64,
    },
    /// The recorded samples fit no exact `strided` descriptor.
    UnfittableSamples(String),
    /// The input ended inside a segment (no `end`).
    UnterminatedSegment,
    /// A segment closed with no instructions.
    EmptySegment,
    /// The trace contains no instructions at all.
    EmptyKernel,
}

impl fmt::Display for TraceErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceErrorKind::Io(e) => write!(f, "read failed: {e}"),
            TraceErrorKind::TooLarge { limit } => {
                write!(f, "trace exceeds the {limit}-byte cap")
            }
            TraceErrorKind::InvalidUtf8 => f.write_str("input is not valid UTF-8"),
            TraceErrorKind::LineTooLong { limit } => {
                write!(f, "line exceeds the {limit}-byte cap")
            }
            TraceErrorKind::BadMagic => f.write_str("first line must be 'WGT1 <name>'"),
            TraceErrorKind::BadName(name) => write!(
                f,
                "bad kernel name '{name}' (ASCII alphanumerics, '_', '-', '.' only, \
                 at most 64 bytes)"
            ),
            TraceErrorKind::DuplicateHeader(h) => write!(f, "duplicate '{h}' header"),
            TraceErrorKind::MissingHeader(h) => write!(f, "missing '{h}' header"),
            TraceErrorKind::UnknownDirective(d) => write!(f, "unknown directive '{d}'"),
            TraceErrorKind::MissingField(field) => write!(f, "missing field '{field}'"),
            TraceErrorKind::UnknownField(field) => write!(f, "unknown field '{field}'"),
            TraceErrorKind::DuplicateField(field) => write!(f, "duplicate field '{field}'"),
            TraceErrorKind::BadValue {
                field,
                value,
                expected,
            } => write!(
                f,
                "field '{field}' value '{value}' is invalid (expected {expected})"
            ),
            TraceErrorKind::LimitExceeded { what, limit } => {
                write!(f, "too many {what} (cap {limit})")
            }
            TraceErrorKind::MisplacedLine(what) => write!(f, "'{what}' is not allowed here"),
            TraceErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic '{m}'"),
            TraceErrorKind::OperandMismatch(why) => write!(f, "bad operands: {why}"),
            TraceErrorKind::LatencyMismatch {
                mnemonic,
                expected,
                got,
            } => write!(
                f,
                "latency {got} disagrees with the '{mnemonic}' pipeline ({expected} cycles)"
            ),
            TraceErrorKind::AddrOnNonMemory(m) => {
                write!(f, "address data on non-memory instruction '{m}'")
            }
            TraceErrorKind::SampleMismatch {
                warp,
                index,
                recorded,
                derived,
            } => write!(
                f,
                "sample (warp {warp}, index {index}) records {recorded:#x} but the \
                 descriptor derives {derived:#x}"
            ),
            TraceErrorKind::UnfittableSamples(why) => {
                write!(f, "samples fit no strided descriptor: {why}")
            }
            TraceErrorKind::UnterminatedSegment => f.write_str("input ended inside a segment"),
            TraceErrorKind::EmptySegment => f.write_str("segment has no instructions"),
            TraceErrorKind::EmptyKernel => f.write_str("trace contains no instructions"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_and_offset() {
        let e = TraceError::at(7, 123, TraceErrorKind::BadMagic);
        let msg = e.to_string();
        assert!(msg.contains("line 7") && msg.contains("byte 123"), "{msg}");
    }

    #[test]
    fn whole_input_errors_omit_the_line() {
        let e = TraceError::whole(TraceErrorKind::TooLarge { limit: 42 });
        assert!(e.to_string().starts_with("trace:"));
    }
}
