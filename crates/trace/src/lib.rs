//! # warped-trace
//!
//! A trace-driven workload frontend for the Warped Gates reproduction:
//! the **WGT1** versioned, line-oriented text trace format, a strict
//! size-capped parser, and a lowering pass that compiles a parsed trace
//! into a [`warped_isa::Kernel`] ready for the simulator.
//!
//! ## The WGT1 format
//!
//! A trace is UTF-8 text. The first line is the magic plus the kernel
//! name; then two header directives; then one or more segment blocks.
//! Blank lines and `#` comments are allowed anywhere after the magic.
//!
//! ```text
//! WGT1 hotspot
//! launch warps=120 block=6 stagger=46 waves=6
//! mem hit=0.82 seed=0xdeadc0de
//! seg straight
//! i ldg d=120 s=16 lat=1
//! i iadd d=17 s=0,1 lat=4
//! end
//! seg loop trips=30
//! i ffma d=32 s=17,120,32 lat=8
//! i stg s=32 lat=1 gen=strided:0x1000,4,256
//! @ 0 0 0x1000
//! @ 0 1 0x1004
//! end
//! ```
//!
//! * `launch` records the grid/block/launch dimensions: warps per SM,
//!   warps per thread block, the launch stagger, and the number of
//!   back-to-back kernel waves.
//! * `mem` records the workload's memory behaviour: the L1 hit rate of
//!   the seeded latency model and the memory-system seed.
//! * Each `i` record is one static instruction: an opcode-class
//!   mnemonic, destination/source registers, and its operand latency
//!   (`lat`, which must equal the opcode class's pipeline latency — a
//!   consistency check on the capture).
//! * A memory instruction may carry a `gen=` address-stream descriptor
//!   ([`warped_isa::AddrGen`]) and/or `@ warp index address` sample
//!   lines recording its per-lane global addresses (the warp's
//!   coalesced access stream). Lowering validates samples against the
//!   descriptor, or — when only samples are present — fits an exact
//!   `strided` descriptor from them, so the memory hierarchy sees the
//!   trace's real locality.
//!
//! ## Guarantees
//!
//! * The parser **never panics**: every malformed input maps to a typed
//!   [`TraceError`] carrying the line number and byte offset.
//! * All inputs are size-capped (see [`limits`]): oversized traces,
//!   overlong lines, and runaway instruction/sample counts are rejected
//!   with typed errors before any allocation proportional to the claim.
//! * Parsing is a pure function of the bytes: the same bytes always
//!   yield the same [`TraceWorkload`], including its content
//!   [`digest`](TraceWorkload::digest) (which downstream cache keys
//!   fold in, so renaming a trace file can never alias results).
//! * [`capture`] is the exact inverse of parsing for every kernel the
//!   workspace can express: `parse(capture(k))` lowers to a kernel
//!   bit-identical to `k`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod digest;
mod error;
mod fit;
pub mod limits;
mod parse;
mod workload;

pub use capture::{capture, CaptureSpec, SAMPLE_INDICES, SAMPLE_WARPS};
pub use digest::content_digest;
pub use error::{TraceError, TraceErrorKind};
pub use parse::{parse_bytes, parse_reader, parse_str};
pub use workload::TraceWorkload;
