//! The strict, size-capped, never-panicking WGT1 parser.

use crate::digest::content_digest;
use crate::error::{TraceError, TraceErrorKind as K};
use crate::fit;
use crate::limits;
use crate::workload::TraceWorkload;
use std::io::Read;
use warped_isa::{AddrGen, Instruction, Kernel, MemSpace, Opcode, Reg, Segment, MAX_SRCS};

/// Parses a WGT1 trace from a reader, capping the total bytes consumed.
///
/// Reads are buffered internally, so byte-at-a-time readers parse
/// identically to a whole-slice parse (the fuzz suite pins this down).
///
/// # Errors
///
/// Returns a typed [`TraceError`] for I/O failures, an input exceeding
/// [`limits::MAX_TRACE_BYTES`], or any malformation `parse_bytes`
/// rejects.
pub fn parse_reader<R: Read>(mut reader: R) -> Result<TraceWorkload, TraceError> {
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if bytes.len() + n > limits::MAX_TRACE_BYTES {
                    return Err(TraceError::whole(K::TooLarge {
                        limit: limits::MAX_TRACE_BYTES,
                    }));
                }
                bytes.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(TraceError::whole(K::Io(e.to_string()))),
        }
    }
    parse_bytes(&bytes)
}

/// Parses a WGT1 trace from a byte slice.
///
/// # Errors
///
/// Returns a typed [`TraceError`] carrying the line number and byte
/// offset of the first malformation. Never panics on any input.
pub fn parse_bytes(bytes: &[u8]) -> Result<TraceWorkload, TraceError> {
    if bytes.len() > limits::MAX_TRACE_BYTES {
        return Err(TraceError::whole(K::TooLarge {
            limit: limits::MAX_TRACE_BYTES,
        }));
    }
    let text = std::str::from_utf8(bytes)
        .map_err(|e| TraceError::at(0, e.valid_up_to(), K::InvalidUtf8))?;
    let mut parser = Parser::new(content_digest(bytes));
    let mut offset = 0usize;
    for (n, raw) in text.split('\n').enumerate() {
        let line_no = n + 1;
        let line_offset = offset;
        offset += raw.len() + 1;
        if raw.len() > limits::MAX_LINE_BYTES {
            return Err(TraceError::at(
                line_no,
                line_offset,
                K::LineTooLong {
                    limit: limits::MAX_LINE_BYTES,
                },
            ));
        }
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        parser.line(line, line_no, line_offset)?;
    }
    parser.finish(text.len())
}

/// Parses a WGT1 trace from a string.
///
/// # Errors
///
/// Identical to [`parse_bytes`] on the string's UTF-8 bytes.
pub fn parse_str(text: &str) -> Result<TraceWorkload, TraceError> {
    parse_bytes(text.as_bytes())
}

/// An instruction awaiting descriptor resolution at segment close.
struct PendingInstr {
    instr: Instruction,
    gen: Option<AddrGen>,
    samples: Vec<fit::Sample>,
    line: usize,
    offset: usize,
}

enum SegKind {
    Straight,
    Loop { trips: u32 },
}

struct Parser {
    digest: u64,
    name: Option<String>,
    launch: Option<(u32, u32, u32, u32)>,
    mem: Option<(f64, u64)>,
    segments: Vec<Segment>,
    current: Option<(SegKind, Vec<PendingInstr>)>,
    instructions: usize,
}

impl Parser {
    fn new(digest: u64) -> Self {
        Parser {
            digest,
            name: None,
            launch: None,
            mem: None,
            segments: Vec::new(),
            current: None,
            instructions: 0,
        }
    }

    fn line(&mut self, line: &str, line_no: usize, offset: usize) -> Result<(), TraceError> {
        let err = |kind| Err(TraceError::at(line_no, offset, kind));
        if line_no == 1 {
            let Some(rest) = line.strip_prefix("WGT1 ") else {
                return err(K::BadMagic);
            };
            let name = rest.trim();
            if name.is_empty()
                || name.len() > limits::MAX_NAME_BYTES
                || !name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
            {
                return err(K::BadName(name.to_owned()));
            }
            self.name = Some(name.to_owned());
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(());
        }
        if self.name.is_none() {
            // Unreachable through the public entry points (line 1 either
            // set the name or errored), kept as a defensive guard.
            return err(K::BadMagic);
        }
        let mut tokens = trimmed.split_whitespace();
        let directive = tokens.next().unwrap_or_default();
        match directive {
            "launch" => self.launch_header(tokens, line_no, offset),
            "mem" => self.mem_header(tokens, line_no, offset),
            "seg" => self.open_segment(tokens, line_no, offset),
            "i" => self.instruction(tokens, line_no, offset),
            "@" => self.sample(tokens, line_no, offset),
            "end" => self.close_segment(line_no, offset),
            other => err(K::UnknownDirective(other.to_owned())),
        }
    }

    fn launch_header<'a>(
        &mut self,
        tokens: impl Iterator<Item = &'a str>,
        line_no: usize,
        offset: usize,
    ) -> Result<(), TraceError> {
        let err = |kind| Err(TraceError::at(line_no, offset, kind));
        if self.launch.is_some() {
            return err(K::DuplicateHeader("launch"));
        }
        if self.current.is_some() || !self.segments.is_empty() {
            return err(K::MisplacedLine("launch"));
        }
        let mut warps = None;
        let mut block = None;
        let mut stagger = None;
        let mut waves = None;
        for token in tokens {
            let (key, value) = split_field(token, line_no, offset)?;
            let slot = match key {
                "warps" => &mut warps,
                "block" => &mut block,
                "stagger" => &mut stagger,
                "waves" => &mut waves,
                other => return err(K::UnknownField(other.to_owned())),
            };
            if slot.is_some() {
                return err(K::DuplicateField(field_name(key)));
            }
            *slot = Some(parse_u32(field_name(key), value, line_no, offset)?);
        }
        let require = |v: Option<u32>, field: &'static str| {
            v.ok_or_else(|| TraceError::at(line_no, offset, K::MissingField(field)))
        };
        let warps = require(warps, "warps")?;
        let block = require(block, "block")?;
        let stagger = require(stagger, "stagger")?;
        let waves = require(waves, "waves")?;
        check_range("warps", warps, 1, limits::MAX_WARPS, line_no, offset)?;
        check_range("block", block, 1, limits::MAX_BLOCK_WARPS, line_no, offset)?;
        check_range("stagger", stagger, 0, limits::MAX_STAGGER, line_no, offset)?;
        check_range("waves", waves, 1, limits::MAX_WAVES, line_no, offset)?;
        self.launch = Some((warps, block, stagger, waves));
        Ok(())
    }

    fn mem_header<'a>(
        &mut self,
        tokens: impl Iterator<Item = &'a str>,
        line_no: usize,
        offset: usize,
    ) -> Result<(), TraceError> {
        let err = |kind| Err(TraceError::at(line_no, offset, kind));
        if self.mem.is_some() {
            return err(K::DuplicateHeader("mem"));
        }
        if self.current.is_some() || !self.segments.is_empty() {
            return err(K::MisplacedLine("mem"));
        }
        let mut hit = None;
        let mut seed = None;
        for token in tokens {
            let (key, value) = split_field(token, line_no, offset)?;
            match key {
                "hit" => {
                    if hit.is_some() {
                        return err(K::DuplicateField("hit"));
                    }
                    let v: f64 = value.parse().map_err(|_| {
                        TraceError::at(
                            line_no,
                            offset,
                            K::BadValue {
                                field: "hit",
                                value: value.to_owned(),
                                expected: "a number in [0,1]",
                            },
                        )
                    })?;
                    if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                        return err(K::BadValue {
                            field: "hit",
                            value: value.to_owned(),
                            expected: "a number in [0,1]",
                        });
                    }
                    hit = Some(v);
                }
                "seed" => {
                    if seed.is_some() {
                        return err(K::DuplicateField("seed"));
                    }
                    seed = Some(parse_u64("seed", value, line_no, offset)?);
                }
                other => return err(K::UnknownField(other.to_owned())),
            }
        }
        let hit = hit.ok_or_else(|| TraceError::at(line_no, offset, K::MissingField("hit")))?;
        let seed = seed.ok_or_else(|| TraceError::at(line_no, offset, K::MissingField("seed")))?;
        self.mem = Some((hit, seed));
        Ok(())
    }

    fn open_segment<'a>(
        &mut self,
        mut tokens: impl Iterator<Item = &'a str>,
        line_no: usize,
        offset: usize,
    ) -> Result<(), TraceError> {
        let err = |kind| Err(TraceError::at(line_no, offset, kind));
        if self.current.is_some() {
            return err(K::MisplacedLine("seg"));
        }
        if self.segments.len() >= limits::MAX_SEGMENTS {
            return err(K::LimitExceeded {
                what: "segments",
                limit: limits::MAX_SEGMENTS as u64,
            });
        }
        let kind = match tokens.next() {
            Some("straight") => SegKind::Straight,
            Some("loop") => {
                let token = tokens
                    .next()
                    .ok_or_else(|| TraceError::at(line_no, offset, K::MissingField("trips")))?;
                let (key, value) = split_field(token, line_no, offset)?;
                if key != "trips" {
                    return err(K::UnknownField(key.to_owned()));
                }
                let trips = parse_u32("trips", value, line_no, offset)?;
                check_range("trips", trips, 1, limits::MAX_TRIPS, line_no, offset)?;
                SegKind::Loop { trips }
            }
            Some(other) => {
                return err(K::BadValue {
                    field: "seg",
                    value: other.to_owned(),
                    expected: "'straight' or 'loop trips=<n>'",
                })
            }
            None => return err(K::MissingField("seg kind")),
        };
        if let Some(extra) = tokens.next() {
            return err(K::UnknownField(extra.to_owned()));
        }
        self.current = Some((kind, Vec::new()));
        Ok(())
    }

    fn instruction<'a>(
        &mut self,
        mut tokens: impl Iterator<Item = &'a str>,
        line_no: usize,
        offset: usize,
    ) -> Result<(), TraceError> {
        let err = |kind| Err(TraceError::at(line_no, offset, kind));
        if self.current.is_none() {
            return err(K::MisplacedLine("i"));
        }
        if self.instructions >= limits::MAX_INSTRUCTIONS {
            return err(K::LimitExceeded {
                what: "instructions",
                limit: limits::MAX_INSTRUCTIONS as u64,
            });
        }
        let mnemonic = tokens
            .next()
            .ok_or_else(|| TraceError::at(line_no, offset, K::MissingField("mnemonic")))?;
        let Some(op) = opcode_of(mnemonic) else {
            return err(K::UnknownMnemonic(mnemonic.to_owned()));
        };
        let mut dst: Option<Reg> = None;
        let mut srcs: Vec<Reg> = Vec::new();
        let mut seen_srcs = false;
        let mut lat: Option<u32> = None;
        let mut gen: Option<AddrGen> = None;
        for token in tokens {
            let (key, value) = split_field(token, line_no, offset)?;
            match key {
                "d" => {
                    if dst.is_some() {
                        return err(K::DuplicateField("d"));
                    }
                    dst = Some(parse_reg(value, line_no, offset)?);
                }
                "s" => {
                    if seen_srcs {
                        return err(K::DuplicateField("s"));
                    }
                    seen_srcs = true;
                    for part in value.split(',') {
                        if srcs.len() >= MAX_SRCS {
                            return err(K::OperandMismatch(format!(
                                "more than {MAX_SRCS} sources"
                            )));
                        }
                        srcs.push(parse_reg(part, line_no, offset)?);
                    }
                }
                "lat" => {
                    if lat.is_some() {
                        return err(K::DuplicateField("lat"));
                    }
                    lat = Some(parse_u32("lat", value, line_no, offset)?);
                }
                "gen" => {
                    if gen.is_some() {
                        return err(K::DuplicateField("gen"));
                    }
                    gen = Some(parse_gen(value, line_no, offset)?);
                }
                other => return err(K::UnknownField(other.to_owned())),
            }
        }
        let lat = lat.ok_or_else(|| TraceError::at(line_no, offset, K::MissingField("lat")))?;
        if lat != op.latency() {
            return err(K::LatencyMismatch {
                mnemonic: op.mnemonic(),
                expected: op.latency(),
                got: lat,
            });
        }
        if op.writes_register() != dst.is_some() {
            return err(K::OperandMismatch(format!(
                "'{}' {} a destination",
                op.mnemonic(),
                if op.writes_register() {
                    "requires"
                } else {
                    "forbids"
                }
            )));
        }
        let is_memory = matches!(op, Opcode::Load(_) | Opcode::Store(_));
        if gen.is_some() && !is_memory {
            return err(K::AddrOnNonMemory(op.mnemonic()));
        }
        // All `Instruction::new` preconditions hold: sources are capped
        // at MAX_SRCS and destination presence matches the opcode.
        let instr = Instruction::new(op, dst, &srcs);
        self.instructions += 1;
        let (_, pending) = self.current.as_mut().expect("checked above");
        pending.push(PendingInstr {
            instr,
            gen,
            samples: Vec::new(),
            line: line_no,
            offset,
        });
        Ok(())
    }

    fn sample<'a>(
        &mut self,
        mut tokens: impl Iterator<Item = &'a str>,
        line_no: usize,
        offset: usize,
    ) -> Result<(), TraceError> {
        let err = |kind| Err(TraceError::at(line_no, offset, kind));
        let Some((_, pending)) = self.current.as_mut() else {
            return err(K::MisplacedLine("@"));
        };
        let Some(last) = pending.last_mut() else {
            return err(K::MisplacedLine("@"));
        };
        if !matches!(last.instr.opcode(), Opcode::Load(_) | Opcode::Store(_)) {
            return err(K::AddrOnNonMemory(last.instr.opcode().mnemonic()));
        }
        if last.samples.len() >= limits::MAX_SAMPLES_PER_INSTRUCTION {
            return err(K::LimitExceeded {
                what: "samples",
                limit: limits::MAX_SAMPLES_PER_INSTRUCTION as u64,
            });
        }
        let mut next = |field: &'static str| {
            tokens
                .next()
                .ok_or_else(|| TraceError::at(line_no, offset, K::MissingField(field)))
        };
        let warp = parse_u32("warp", next("warp")?, line_no, offset)?;
        let index = parse_u64("index", next("index")?, line_no, offset)?;
        let addr = parse_u64("address", next("address")?, line_no, offset)?;
        if let Some(extra) = tokens.next() {
            return err(K::UnknownField(extra.to_owned()));
        }
        last.samples.push((warp, index, addr));
        Ok(())
    }

    fn close_segment(&mut self, line_no: usize, offset: usize) -> Result<(), TraceError> {
        let Some((kind, pending)) = self.current.take() else {
            return Err(TraceError::at(line_no, offset, K::MisplacedLine("end")));
        };
        if pending.is_empty() {
            return Err(TraceError::at(line_no, offset, K::EmptySegment));
        }
        let mut body = Vec::with_capacity(pending.len());
        for p in pending {
            body.push(resolve(p)?);
        }
        self.segments.push(match kind {
            SegKind::Straight => Segment::Straight(body),
            SegKind::Loop { trips } => Segment::Loop { body, trips },
        });
        Ok(())
    }

    fn finish(mut self, end_offset: usize) -> Result<TraceWorkload, TraceError> {
        if self.current.is_some() {
            return Err(TraceError::at(0, end_offset, K::UnterminatedSegment));
        }
        let name = self
            .name
            .take()
            .ok_or_else(|| TraceError::whole(K::BadMagic))?;
        let (warps, block, stagger, waves) = self
            .launch
            .ok_or_else(|| TraceError::whole(K::MissingHeader("launch")))?;
        let (hit, seed) = self
            .mem
            .ok_or_else(|| TraceError::whole(K::MissingHeader("mem")))?;
        if self.segments.is_empty() {
            return Err(TraceError::whole(K::EmptyKernel));
        }
        // `Kernel::new` preconditions all hold: every loop has trips >= 1
        // and a non-empty body (close_segment), and at least one segment
        // with at least one instruction exists.
        let kernel = Kernel::new(name.clone(), self.segments);
        Ok(TraceWorkload {
            name,
            kernel,
            total_warps: warps,
            block_warps: block,
            stagger,
            waves,
            l1_hit_rate: hit,
            mem_seed: seed,
            digest: self.digest,
        })
    }
}

/// Resolves a pending instruction's address descriptor: validates
/// samples against an explicit `gen=`, or fits a strided descriptor
/// when only samples were recorded.
fn resolve(p: PendingInstr) -> Result<Instruction, TraceError> {
    let gen = match (p.gen, p.samples.is_empty()) {
        (Some(g), _) => {
            if let Err(((warp, index, recorded), derived)) = fit::validate_samples(g, &p.samples) {
                return Err(TraceError::at(
                    p.line,
                    p.offset,
                    K::SampleMismatch {
                        warp,
                        index,
                        recorded,
                        derived,
                    },
                ));
            }
            Some(g)
        }
        (None, false) => Some(
            fit::fit_strided(&p.samples)
                .map_err(|why| TraceError::at(p.line, p.offset, K::UnfittableSamples(why)))?,
        ),
        (None, true) => None,
    };
    // `with_addr_gen` cannot panic: samples and `gen=` are only accepted
    // on memory instructions.
    Ok(match gen {
        Some(g) => p.instr.with_addr_gen(g),
        None => p.instr,
    })
}

fn opcode_of(mnemonic: &str) -> Option<Opcode> {
    Some(match mnemonic {
        "iadd" => Opcode::IAlu,
        "imul" => Opcode::IMul,
        "fadd" => Opcode::FAlu,
        "fmul" => Opcode::FMul,
        "ffma" => Opcode::FFma,
        "sfu" => Opcode::Sfu,
        "ldg" => Opcode::Load(MemSpace::Global),
        "lds" => Opcode::Load(MemSpace::Shared),
        "stg" => Opcode::Store(MemSpace::Global),
        "sts" => Opcode::Store(MemSpace::Shared),
        "bar" => Opcode::Bar,
        _ => return None,
    })
}

fn split_field(token: &str, line_no: usize, offset: usize) -> Result<(&str, &str), TraceError> {
    token.split_once('=').ok_or_else(|| {
        TraceError::at(
            line_no,
            offset,
            K::BadValue {
                field: "record",
                value: token.to_owned(),
                expected: "key=value",
            },
        )
    })
}

/// Interns the handful of field names so `DuplicateField` can carry a
/// `&'static str` without leaking.
fn field_name(key: &str) -> &'static str {
    match key {
        "warps" => "warps",
        "block" => "block",
        "stagger" => "stagger",
        "waves" => "waves",
        _ => "field",
    }
}

fn parse_u64(
    field: &'static str,
    value: &str,
    line_no: usize,
    offset: usize,
) -> Result<u64, TraceError> {
    let parsed = match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.map_err(|_| {
        TraceError::at(
            line_no,
            offset,
            K::BadValue {
                field,
                value: value.to_owned(),
                expected: "an unsigned integer (decimal or 0x hex)",
            },
        )
    })
}

fn parse_u32(
    field: &'static str,
    value: &str,
    line_no: usize,
    offset: usize,
) -> Result<u32, TraceError> {
    let wide = parse_u64(field, value, line_no, offset)?;
    u32::try_from(wide).map_err(|_| {
        TraceError::at(
            line_no,
            offset,
            K::BadValue {
                field,
                value: value.to_owned(),
                expected: "an unsigned 32-bit integer",
            },
        )
    })
}

fn check_range(
    field: &'static str,
    value: u32,
    min: u32,
    max: u32,
    line_no: usize,
    offset: usize,
) -> Result<(), TraceError> {
    if value < min || value > max {
        return Err(TraceError::at(
            line_no,
            offset,
            K::BadValue {
                field,
                value: value.to_string(),
                expected: "a value inside the documented cap (see warped_trace::limits)",
            },
        ));
    }
    Ok(())
}

fn parse_reg(value: &str, line_no: usize, offset: usize) -> Result<Reg, TraceError> {
    value
        .parse::<u16>()
        .ok()
        .and_then(Reg::try_new)
        .ok_or_else(|| {
            TraceError::at(
                line_no,
                offset,
                K::OperandMismatch(format!("register '{value}' out of range")),
            )
        })
}

fn parse_gen(value: &str, line_no: usize, offset: usize) -> Result<AddrGen, TraceError> {
    let bad = |expected: &'static str| {
        TraceError::at(
            line_no,
            offset,
            K::BadValue {
                field: "gen",
                value: value.to_owned(),
                expected,
            },
        )
    };
    let Some((kind, args)) = value.split_once(':') else {
        return Err(bad("kind:args"));
    };
    let parts: Vec<&str> = args.split(',').collect();
    match kind {
        "strided" => {
            if parts.len() != 3 {
                return Err(bad("strided:base,stride,warp_stride"));
            }
            Ok(AddrGen::Strided {
                base: parse_u64("gen", parts[0], line_no, offset)?,
                stride: parse_u32("gen", parts[1], line_no, offset)?,
                warp_stride: parse_u32("gen", parts[2], line_no, offset)?,
            })
        }
        "tiled" => {
            if parts.len() != 3 {
                return Err(bad("tiled:base,row_len,tile"));
            }
            let row_len = parse_u32("gen", parts[1], line_no, offset)?;
            let tile = parse_u32("gen", parts[2], line_no, offset)?;
            if tile == 0 || row_len == 0 {
                return Err(bad("tiled dimensions must be at least 1"));
            }
            Ok(AddrGen::Tiled {
                base: parse_u64("gen", parts[0], line_no, offset)?,
                row_len,
                tile,
            })
        }
        "random" => {
            if parts.len() != 2 {
                return Err(bad("random:seed,footprint"));
            }
            let footprint = parse_u64("gen", parts[1], line_no, offset)?;
            if footprint == 0 {
                return Err(bad("footprint must be at least 1"));
            }
            Ok(AddrGen::IndirectRandom {
                seed: parse_u64("gen", parts[0], line_no, offset)?,
                footprint,
            })
        }
        _ => Err(bad("strided:…, tiled:…, or random:…")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "WGT1 demo\n\
                           launch warps=4 block=2 stagger=0 waves=1\n\
                           mem hit=0.5 seed=0x5eed\n\
                           seg straight\n\
                           i iadd d=1 s=0 lat=4\n\
                           end\n";

    #[test]
    fn minimal_trace_parses() {
        let w = parse_str(MINIMAL).unwrap();
        assert_eq!(w.name, "demo");
        assert_eq!(w.total_warps, 4);
        assert_eq!(w.block_warps, 2);
        assert_eq!(w.waves, 1);
        assert_eq!(w.kernel.len(), 1);
        assert_eq!(w.mem_seed, 0x5eed);
        assert!((w.l1_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(w.digest, crate::content_digest(MINIMAL.as_bytes()));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = MINIMAL.replace("seg straight\n", "# a comment\n\n   \nseg straight\n");
        assert!(parse_str(&text).is_ok());
    }

    #[test]
    fn loops_and_descriptors_lower_faithfully() {
        let text = "WGT1 k\n\
                    launch warps=2 block=1 stagger=3 waves=2\n\
                    mem hit=0.75 seed=11\n\
                    seg loop trips=10\n\
                    i ldg d=5 s=1 lat=1 gen=strided:0x100,4,64\n\
                    i ffma d=6 s=5,5,6 lat=8\n\
                    end\n";
        let w = parse_str(text).unwrap();
        assert_eq!(w.kernel.dynamic_len(), 20);
        let load = w.kernel.instruction(0).unwrap();
        assert_eq!(
            load.addr_gen(),
            Some(AddrGen::Strided {
                base: 0x100,
                stride: 4,
                warp_stride: 64
            })
        );
    }

    #[test]
    fn samples_without_a_descriptor_fit_a_strided_stream() {
        let text = "WGT1 k\n\
                    launch warps=2 block=1 stagger=0 waves=1\n\
                    mem hit=0.5 seed=1\n\
                    seg straight\n\
                    i ldg d=5 lat=1\n\
                    @ 0 0 0x1000\n\
                    @ 0 1 0x1004\n\
                    @ 1 0 0x1100\n\
                    end\n";
        let w = parse_str(text).unwrap();
        assert_eq!(
            w.kernel.instruction(0).unwrap().addr_gen(),
            Some(AddrGen::Strided {
                base: 0x1000,
                stride: 4,
                warp_stride: 0x100
            })
        );
    }

    #[test]
    fn sample_descriptor_disagreement_is_a_typed_error() {
        let text = "WGT1 k\n\
                    launch warps=2 block=1 stagger=0 waves=1\n\
                    mem hit=0.5 seed=1\n\
                    seg straight\n\
                    i ldg d=5 lat=1 gen=strided:0x1000,4,0\n\
                    @ 0 1 0x9999\n\
                    end\n";
        let e = parse_str(text).unwrap_err();
        assert!(
            matches!(
                e.kind,
                K::SampleMismatch {
                    recorded: 0x9999,
                    ..
                }
            ),
            "{e}"
        );
        assert_eq!(e.line, 5, "error anchors to the instruction line");
    }

    #[test]
    fn latency_disagreement_is_a_typed_error() {
        let text = MINIMAL.replace("lat=4", "lat=5");
        let e = parse_str(&text).unwrap_err();
        assert!(matches!(
            e.kind,
            K::LatencyMismatch {
                expected: 4,
                got: 5,
                ..
            }
        ));
    }

    #[test]
    fn structural_errors_are_typed() {
        assert!(matches!(
            parse_str(&MINIMAL.replace("WGT1", "WGTX"))
                .unwrap_err()
                .kind,
            K::BadMagic
        ));
        assert!(matches!(
            parse_str(&MINIMAL.replace("warps=4", "warps=0"))
                .unwrap_err()
                .kind,
            K::BadValue { field: "warps", .. }
        ));
        assert!(matches!(
            parse_str(&MINIMAL.replace("i iadd d=1 s=0 lat=4\n", ""))
                .unwrap_err()
                .kind,
            K::EmptySegment
        ));
        assert!(matches!(
            parse_str(&MINIMAL.replace("end\n", "")).unwrap_err().kind,
            K::UnterminatedSegment
        ));
        assert!(matches!(
            parse_str(&MINIMAL.replace("mem hit=0.5 seed=0x5eed\n", ""))
                .unwrap_err()
                .kind,
            K::MissingHeader("mem")
        ));
        assert!(matches!(
            parse_str(&MINIMAL.replace("d=1", "d=999"))
                .unwrap_err()
                .kind,
            K::OperandMismatch(_)
        ));
        assert!(matches!(
            parse_str(&MINIMAL.replace("i iadd", "i yolo"))
                .unwrap_err()
                .kind,
            K::UnknownMnemonic(_)
        ));
    }

    #[test]
    fn oversized_inputs_are_rejected_before_parsing() {
        let huge = vec![b'a'; limits::MAX_TRACE_BYTES + 1];
        assert!(matches!(
            parse_bytes(&huge).unwrap_err().kind,
            K::TooLarge { .. }
        ));
        let long_line = format!("WGT1 k\n{}\n", "x".repeat(limits::MAX_LINE_BYTES + 1));
        let e = parse_str(&long_line).unwrap_err();
        assert!(matches!(e.kind, K::LineTooLong { .. }));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn invalid_utf8_reports_the_byte_offset() {
        let mut bytes = MINIMAL.as_bytes().to_vec();
        bytes[10] = 0xff;
        let e = parse_bytes(&bytes).unwrap_err();
        assert!(matches!(e.kind, K::InvalidUtf8));
        assert_eq!(e.offset, 10);
    }

    #[test]
    fn errors_carry_the_offending_line_offset() {
        let e = parse_str(&format!("{MINIMAL}bogus\n")).unwrap_err();
        assert!(matches!(e.kind, K::UnknownDirective(_)));
        assert_eq!(e.line, 7);
        assert_eq!(e.offset, MINIMAL.len());
    }

    #[test]
    fn reader_parse_equals_slice_parse() {
        let whole = parse_str(MINIMAL).unwrap();
        let dribbled = parse_reader(MINIMAL.as_bytes()).unwrap();
        assert_eq!(whole, dribbled);
    }
}
