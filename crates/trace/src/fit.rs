//! Address-descriptor synthesis from recorded samples.
//!
//! A WGT1 memory record may carry only `@ warp index address` sample
//! lines, with no explicit `gen=` descriptor. Lowering then *fits* an
//! exact [`AddrGen::Strided`] descriptor to the samples — base address,
//! per-access stride, and per-warp stride — and verifies every sample
//! against the candidate before accepting it. Strided streams are the
//! only shape fitting attempts: they are the only descriptor family
//! whose parameters are uniquely determined by a handful of samples
//! (tiled and indirect streams must be recorded with an explicit
//! `gen=`, which the same validation pass checks sample-by-sample).

use warped_isa::AddrGen;

/// One recorded address sample: `(warp, dynamic access index, address)`.
pub(crate) type Sample = (u32, u64, u64);

/// Checks every sample against an explicit descriptor. Returns the
/// first disagreeing sample together with the derived address.
pub(crate) fn validate_samples(gen: AddrGen, samples: &[Sample]) -> Result<(), (Sample, u64)> {
    for &(warp, index, addr) in samples {
        let derived = gen.address(warp, index);
        if derived != addr {
            return Err(((warp, index, addr), derived));
        }
    }
    Ok(())
}

/// Fits an exact `Strided` descriptor to the samples, or explains why
/// none exists. Never panics; all arithmetic is checked.
pub(crate) fn fit_strided(samples: &[Sample]) -> Result<AddrGen, String> {
    let Some(&(w0, i0, a0)) = samples.first() else {
        return Err("no samples recorded".to_owned());
    };

    // Per-access stride, from the first warp that recorded two
    // distinct indices. The validation pass below catches any warp
    // that disagrees with this candidate.
    let mut stride: u64 = 0;
    'stride: for (n, &(warp, index, addr)) in samples.iter().enumerate() {
        for &(warp2, index2, addr2) in &samples[n + 1..] {
            if warp2 != warp || index2 == index {
                continue;
            }
            let (lo, hi) = if index < index2 {
                ((index, addr), (index2, addr2))
            } else {
                ((index2, addr2), (index, addr))
            };
            let di = hi.0 - lo.0;
            let Some(da) = hi.1.checked_sub(lo.1) else {
                return Err(format!(
                    "warp {warp}: address decreases from index {} to {}",
                    lo.0, hi.0
                ));
            };
            if da % di != 0 {
                return Err(format!(
                    "warp {warp}: address delta {da} is not a multiple of index delta {di}"
                ));
            }
            stride = da / di;
            break 'stride;
        }
    }
    if stride > u64::from(u32::MAX) {
        return Err(format!("stride {stride} exceeds u32"));
    }

    // Per-warp stride, from the first two distinct warps' bases.
    let base_of = |warp: u32, index: u64, addr: u64| -> Result<u64, String> {
        index
            .checked_mul(stride)
            .and_then(|span| addr.checked_sub(span))
            .ok_or_else(|| format!("warp {warp}: index {index} extrapolates below address zero"))
    };
    let b0 = base_of(w0, i0, a0)?;
    let mut warp_stride: u64 = 0;
    for &(warp, index, addr) in &samples[1..] {
        if warp == w0 {
            continue;
        }
        let b = base_of(warp, index, addr)?;
        let (lo, hi) = if warp < w0 {
            ((warp, b), (w0, b0))
        } else {
            ((w0, b0), (warp, b))
        };
        let dw = u64::from(hi.0 - lo.0);
        let Some(db) = hi.1.checked_sub(lo.1) else {
            return Err(format!(
                "base address decreases from warp {} to warp {}",
                lo.0, hi.0
            ));
        };
        if db % dw != 0 {
            return Err(format!(
                "base delta {db} between warps {} and {} is not a multiple of {dw}",
                lo.0, hi.0
            ));
        }
        warp_stride = db / dw;
        break;
    }
    if warp_stride > u64::from(u32::MAX) {
        return Err(format!("warp stride {warp_stride} exceeds u32"));
    }

    let Some(base) = u64::from(w0)
        .checked_mul(warp_stride)
        .and_then(|span| b0.checked_sub(span))
    else {
        return Err(format!("warp {w0} extrapolates below address zero"));
    };

    #[allow(clippy::cast_possible_truncation)] // both bounded above
    let candidate = AddrGen::Strided {
        base,
        stride: stride as u32,
        warp_stride: warp_stride as u32,
    };
    match validate_samples(candidate, samples) {
        Ok(()) => Ok(candidate),
        Err(((warp, index, addr), derived)) => Err(format!(
            "sample (warp {warp}, index {index}) records {addr:#x} but the fitted \
             {candidate} derives {derived:#x}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples_of(gen: AddrGen, warps: u32, indices: u64) -> Vec<Sample> {
        (0..warps)
            .flat_map(|w| (0..indices).map(move |i| (w, i, gen.address(w, i))))
            .collect()
    }

    #[test]
    fn fit_recovers_a_strided_stream_exactly() {
        let gen = AddrGen::Strided {
            base: 0x1000,
            stride: 4,
            warp_stride: 256,
        };
        assert_eq!(fit_strided(&samples_of(gen, 3, 4)), Ok(gen));
    }

    #[test]
    fn fit_handles_single_warp_and_single_index() {
        let gen = AddrGen::Strided {
            base: 0x40,
            stride: 8,
            warp_stride: 0,
        };
        assert_eq!(fit_strided(&samples_of(gen, 1, 4)), Ok(gen));
        // One sample: a constant stream at that address.
        let fitted = fit_strided(&[(2, 0, 0x80)]).unwrap();
        assert_eq!(fitted.address(2, 0), 0x80);
    }

    #[test]
    fn inconsistent_samples_are_rejected_with_a_reason() {
        let mut s = samples_of(
            AddrGen::Strided {
                base: 0,
                stride: 4,
                warp_stride: 64,
            },
            2,
            4,
        );
        s[5].2 ^= 0x10;
        let err = fit_strided(&s).unwrap_err();
        assert!(err.contains("records"), "{err}");
    }

    #[test]
    fn decreasing_addresses_are_rejected_not_wrapped() {
        let err = fit_strided(&[(0, 0, 0x100), (0, 1, 0x80)]).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }

    #[test]
    fn validate_reports_the_first_disagreeing_sample() {
        let gen = AddrGen::IndirectRandom {
            seed: 7,
            footprint: 4096,
        };
        let good = samples_of(gen, 2, 3);
        assert_eq!(validate_samples(gen, &good), Ok(()));
        let mut bad = good;
        bad[4].2 ^= 4;
        let ((w, i, a), derived) = validate_samples(gen, &bad).unwrap_err();
        assert_eq!((w, i), (bad[4].0, bad[4].1));
        assert_eq!(a, bad[4].2);
        assert_ne!(a, derived);
    }
}
