//! Seeded property tests hardening the WGT1 parser.
//!
//! The trace frontend parses files straight off disk and (through the
//! serve tier) content a deployment operator drops into `--trace-dir`,
//! so the invariant under test is blunt: *no input may panic the
//! parser*, and anything malformed must come back as a typed
//! [`TraceError`] with a line/offset diagnostic. Every case is driven
//! by `SplitMix64`, so a failure reproduces from its printed seed —
//! the same harness discipline as `warped-serve`'s parser fuzz suite.

use std::io::{BufReader, Read};

use warped_trace::{capture, limits, parse_bytes, parse_reader, parse_str, CaptureSpec};
use warped_workloads::rng::SplitMix64;
use warped_workloads::Benchmark;

/// A small but fully featured valid trace to mutate: loop and straight
/// segments, an explicit descriptor with samples, and a fitted one.
const VALID: &str = "WGT1 fuzz-seed\n\
                     launch warps=8 block=4 stagger=3 waves=2\n\
                     mem hit=0.75 seed=0xfeed\n\
                     seg loop trips=12\n\
                     i ldg d=5 s=1 lat=1 gen=strided:0x1000,4,256\n\
                     @ 0 0 0x1000\n\
                     @ 0 1 0x1004\n\
                     @ 1 0 0x1100\n\
                     i ffma d=6 s=5,5,6 lat=8\n\
                     end\n\
                     seg straight\n\
                     i stg s=6 lat=1\n\
                     @ 0 0 0x2000\n\
                     @ 0 1 0x2008\n\
                     i bar lat=1\n\
                     end\n";

#[test]
fn the_mutation_seed_itself_parses() {
    let w = parse_str(VALID).expect("the seed trace must be valid");
    assert_eq!(w.name, "fuzz-seed");
    assert_eq!(w.kernel.dynamic_len(), 12 * 2 + 2);
}

#[test]
fn random_bytes_never_panic_the_parser() {
    for seed in 0..2000u64 {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let len = rng.below(600) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        // Any outcome but a panic is acceptable; random bytes never
        // start with the magic, so in practice every case errors.
        let _ = parse_bytes(&bytes);
    }
}

#[test]
fn random_ascii_lines_never_panic_the_parser() {
    // Directive-shaped soup: tokens drawn from the grammar's own
    // alphabet, far likelier to reach deep parser states than raw bytes.
    const ALPHA: &[u8] = b"WGT1 launchmemsegiend@=0x123456789abcdef.,-_\n\r #";
    for seed in 0..2000u64 {
        let mut rng = SplitMix64::new(seed ^ 0x7747_5431);
        let mut text = String::from("WGT1 k\n");
        let len = rng.below(400) as usize;
        text.extend((0..len).map(|_| char::from(ALPHA[rng.index(ALPHA.len())])));
        let _ = parse_str(&text);
    }
}

#[test]
fn mutated_valid_traces_answer_typed_errors() {
    for seed in 0..2000u64 {
        let mut rng = SplitMix64::new(seed ^ 0x6d75_7461_7465);
        let mut bytes = VALID.as_bytes().to_vec();
        // One to four point mutations: flip, overwrite, or truncate.
        for _ in 0..=rng.below(3) {
            let at = rng.index(bytes.len());
            match rng.below(3) {
                0 => bytes[at] ^= 1 << rng.below(8),
                1 => bytes[at] = (rng.next_u64() & 0xff) as u8,
                _ => bytes.truncate(at),
            }
            if bytes.is_empty() {
                break;
            }
        }
        // The contract: parse, or a typed TraceError whose Display
        // renders — never a panic. (Some mutations stay valid.)
        if let Err(e) = parse_bytes(&bytes) {
            let msg = e.to_string();
            assert!(!msg.is_empty(), "seed {seed}: empty diagnostic");
        }
    }
}

#[test]
fn truncations_at_every_byte_never_panic() {
    for cut in 0..VALID.len() {
        let _ = parse_str(&VALID[..cut]);
    }
}

#[test]
fn oversized_inputs_and_lines_are_rejected() {
    let huge = vec![b'#'; limits::MAX_TRACE_BYTES + 1];
    let e = parse_bytes(&huge).unwrap_err();
    assert!(e.to_string().contains("cap"), "{e}");

    let long = format!("WGT1 k\n# {}\n", "x".repeat(limits::MAX_LINE_BYTES));
    let e = parse_str(&long).unwrap_err();
    assert_eq!(e.line, 2, "{e}");

    // Instruction flood past the structural cap.
    let mut flood = String::from(
        "WGT1 k\nlaunch warps=1 block=1 stagger=0 waves=1\nmem hit=0.5 seed=1\nseg straight\n",
    );
    for _ in 0..=limits::MAX_INSTRUCTIONS {
        flood.push_str("i iadd d=1 s=0 lat=4\n");
    }
    flood.push_str("end\n");
    let e = parse_str(&flood).unwrap_err();
    assert!(e.to_string().contains("too many instructions"), "{e}");
}

/// A reader that hands out at most `step` bytes per `read`, modelling
/// a trickling pipe that splits every token across reads.
struct Dribble<'a> {
    bytes: &'a [u8],
    step: usize,
}

impl Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.step.min(self.bytes.len()).min(buf.len());
        buf[..n].copy_from_slice(&self.bytes[..n]);
        self.bytes = &self.bytes[n..];
        Ok(n)
    }
}

#[test]
fn split_reads_parse_identically_to_whole_reads() {
    let want = parse_str(VALID).unwrap();
    for step in [1usize, 2, 3, 7, 13] {
        let reader = BufReader::with_capacity(
            16,
            Dribble {
                bytes: VALID.as_bytes(),
                step,
            },
        );
        let got = parse_reader(reader).unwrap_or_else(|e| panic!("step {step}: {e}"));
        assert_eq!(got, want, "step {step}");
    }
}

#[test]
fn captured_benchmarks_survive_mutation_fuzzing() {
    // A real corpus-sized capture as the mutation seed: exercises the
    // full grammar surface the checked-in traces use.
    let spec = Benchmark::Hotspot.spec();
    let kernel = spec.kernel();
    let text = capture(&CaptureSpec {
        name: spec.name,
        kernel: &kernel,
        total_warps: spec.total_warps,
        block_warps: spec.block_warps,
        stagger: spec.body_len as u32,
        waves: spec.launches,
        l1_hit_rate: spec.l1_hit_rate,
        mem_seed: spec.seed ^ 0xdead_beef,
    });
    parse_str(&text).expect("the capture itself must parse");
    for seed in 0..1000u64 {
        let mut rng = SplitMix64::new(seed ^ 0x6361_7074);
        let mut bytes = text.as_bytes().to_vec();
        for _ in 0..=rng.below(4) {
            let at = rng.index(bytes.len());
            match rng.below(3) {
                0 => bytes[at] ^= 1 << rng.below(8),
                1 => bytes[at] = (rng.next_u64() & 0xff) as u8,
                _ => bytes.truncate(at.max(1)),
            }
        }
        if let Err(e) = parse_bytes(&bytes) {
            assert!(!e.to_string().is_empty(), "seed {seed}");
        }
    }
}
