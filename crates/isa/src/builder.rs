//! Fluent construction of [`Kernel`]s.

use crate::{AddrGen, Instruction, Kernel, MemSpace, Opcode, Reg, Segment};

/// A fluent builder for [`Kernel`]s.
///
/// Instruction helpers take raw `u16` register indices for brevity; they
/// panic on out-of-range indices just like [`Reg::new`].
///
/// # Examples
///
/// ```
/// use warped_isa::KernelBuilder;
///
/// let k = KernelBuilder::new("saxpy-ish")
///     .load_global(1)
///     .begin_loop(100)
///     .fmul(2, 1, 0)
///     .fadd(3, 2, 3)
///     .end_loop()
///     .store_global(3)
///     .build();
/// assert_eq!(k.dynamic_len(), 1 + 200 + 1);
/// ```
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    segments: Vec<Segment>,
    current: Vec<Instruction>,
    loop_trips: Option<u32>,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            segments: Vec::new(),
            current: Vec::new(),
            loop_trips: None,
        }
    }

    /// Appends an arbitrary pre-built instruction.
    #[must_use]
    pub fn push(mut self, instr: Instruction) -> Self {
        self.current.push(instr);
        self
    }

    fn flush_straight(&mut self) {
        if !self.current.is_empty() {
            let body = std::mem::take(&mut self.current);
            self.segments.push(Segment::Straight(body));
        }
    }

    /// Opens a counted loop. Instructions added until [`end_loop`] form the
    /// loop body.
    ///
    /// # Panics
    ///
    /// Panics when nesting loops (only one level is supported) or when
    /// `trips` is zero.
    ///
    /// [`end_loop`]: KernelBuilder::end_loop
    #[must_use]
    pub fn begin_loop(mut self, trips: u32) -> Self {
        assert!(self.loop_trips.is_none(), "loops cannot be nested");
        assert!(trips >= 1, "loop trips must be >= 1");
        self.flush_straight();
        self.loop_trips = Some(trips);
        self
    }

    /// Closes the currently open loop.
    ///
    /// # Panics
    ///
    /// Panics if no loop is open or the loop body is empty.
    #[must_use]
    pub fn end_loop(mut self) -> Self {
        let trips = self.loop_trips.take().expect("end_loop without begin_loop");
        assert!(!self.current.is_empty(), "loop body must not be empty");
        let body = std::mem::take(&mut self.current);
        self.segments.push(Segment::Loop { body, trips });
        self
    }

    /// Finalises the kernel.
    ///
    /// # Panics
    ///
    /// Panics if a loop is still open or the kernel would be empty.
    #[must_use]
    pub fn build(mut self) -> Kernel {
        assert!(self.loop_trips.is_none(), "unclosed loop at build time");
        self.flush_straight();
        Kernel::new(self.name, self.segments)
    }

    // --- instruction helpers -------------------------------------------

    /// Integer ALU op: `dst <- src_a (op) src_b`.
    #[must_use]
    pub fn iadd(self, dst: u16, src_a: u16, src_b: u16) -> Self {
        self.push(Instruction::new(
            Opcode::IAlu,
            Some(Reg::new(dst)),
            &[Reg::new(src_a), Reg::new(src_b)],
        ))
    }

    /// Integer multiply: `dst <- src_a * src_b`.
    #[must_use]
    pub fn imul(self, dst: u16, src_a: u16, src_b: u16) -> Self {
        self.push(Instruction::new(
            Opcode::IMul,
            Some(Reg::new(dst)),
            &[Reg::new(src_a), Reg::new(src_b)],
        ))
    }

    /// Floating point add: `dst <- src_a + src_b`.
    #[must_use]
    pub fn fadd(self, dst: u16, src_a: u16, src_b: u16) -> Self {
        self.push(Instruction::new(
            Opcode::FAlu,
            Some(Reg::new(dst)),
            &[Reg::new(src_a), Reg::new(src_b)],
        ))
    }

    /// Floating point multiply: `dst <- src_a * src_b`.
    #[must_use]
    pub fn fmul(self, dst: u16, src_a: u16, src_b: u16) -> Self {
        self.push(Instruction::new(
            Opcode::FMul,
            Some(Reg::new(dst)),
            &[Reg::new(src_a), Reg::new(src_b)],
        ))
    }

    /// Fused multiply-add: `dst <- src_a * src_b + src_c`.
    #[must_use]
    pub fn ffma(self, dst: u16, src_a: u16, src_b: u16, src_c: u16) -> Self {
        self.push(Instruction::new(
            Opcode::FFma,
            Some(Reg::new(dst)),
            &[Reg::new(src_a), Reg::new(src_b), Reg::new(src_c)],
        ))
    }

    /// Special-function op (sin/cos/rcp/...): `dst <- f(src)`.
    #[must_use]
    pub fn sfu(self, dst: u16, src: u16) -> Self {
        self.push(Instruction::new(
            Opcode::Sfu,
            Some(Reg::new(dst)),
            &[Reg::new(src)],
        ))
    }

    /// Global memory load: `dst <- mem[...]` (long latency).
    #[must_use]
    pub fn load_global(self, dst: u16) -> Self {
        self.push(Instruction::new(
            Opcode::Load(MemSpace::Global),
            Some(Reg::new(dst)),
            &[],
        ))
    }

    /// Global memory load with an address register dependence.
    #[must_use]
    pub fn load_global_indexed(self, dst: u16, addr: u16) -> Self {
        self.push(Instruction::new(
            Opcode::Load(MemSpace::Global),
            Some(Reg::new(dst)),
            &[Reg::new(addr)],
        ))
    }

    /// Global memory load walking a deterministic strided stream:
    /// `dst <- mem[base + warp*warp_stride + i*stride]`.
    #[must_use]
    pub fn load_global_strided(self, dst: u16, base: u64, stride: u32, warp_stride: u32) -> Self {
        self.push(
            Instruction::new(Opcode::Load(MemSpace::Global), Some(Reg::new(dst)), &[])
                .with_addr_gen(AddrGen::Strided {
                    base,
                    stride,
                    warp_stride,
                }),
        )
    }

    /// Global memory load walking a row-major tiled 2D array.
    #[must_use]
    pub fn load_global_tiled(self, dst: u16, base: u64, row_len: u32, tile: u32) -> Self {
        self.push(
            Instruction::new(Opcode::Load(MemSpace::Global), Some(Reg::new(dst)), &[])
                .with_addr_gen(AddrGen::Tiled {
                    base,
                    row_len,
                    tile,
                }),
        )
    }

    /// Global memory load gathering from a seeded random window of
    /// `footprint` bytes.
    #[must_use]
    pub fn load_global_random(self, dst: u16, seed: u64, footprint: u64) -> Self {
        self.push(
            Instruction::new(Opcode::Load(MemSpace::Global), Some(Reg::new(dst)), &[])
                .with_addr_gen(AddrGen::IndirectRandom { seed, footprint }),
        )
    }

    /// Shared memory load: `dst <- shmem[...]` (short latency).
    #[must_use]
    pub fn load_shared(self, dst: u16) -> Self {
        self.push(Instruction::new(
            Opcode::Load(MemSpace::Shared),
            Some(Reg::new(dst)),
            &[],
        ))
    }

    /// Global memory store of `src`.
    #[must_use]
    pub fn store_global(self, src: u16) -> Self {
        self.push(Instruction::new(
            Opcode::Store(MemSpace::Global),
            None,
            &[Reg::new(src)],
        ))
    }

    /// Global memory store of `src` along a deterministic strided
    /// stream (write-through in the hierarchy model).
    #[must_use]
    pub fn store_global_strided(self, src: u16, base: u64, stride: u32, warp_stride: u32) -> Self {
        self.push(
            Instruction::new(Opcode::Store(MemSpace::Global), None, &[Reg::new(src)])
                .with_addr_gen(AddrGen::Strided {
                    base,
                    stride,
                    warp_stride,
                }),
        )
    }

    /// Shared memory store of `src`.
    #[must_use]
    pub fn store_shared(self, src: u16) -> Self {
        self.push(Instruction::new(
            Opcode::Store(MemSpace::Shared),
            None,
            &[Reg::new(src)],
        ))
    }

    /// Block-wide barrier (`__syncthreads`).
    #[must_use]
    pub fn barrier(self) -> Self {
        self.push(Instruction::new(Opcode::Bar, None, &[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitType;

    #[test]
    fn builder_produces_expected_structure() {
        let k = KernelBuilder::new("t")
            .iadd(1, 0, 0)
            .begin_loop(3)
            .fadd(2, 1, 2)
            .end_loop()
            .store_global(2)
            .build();
        assert_eq!(k.segments().len(), 3);
        assert_eq!(k.dynamic_len(), 1 + 3 + 1);
    }

    #[test]
    fn consecutive_straight_instructions_merge_into_one_segment() {
        let k = KernelBuilder::new("t").iadd(1, 0, 0).fadd(2, 1, 1).build();
        assert_eq!(k.segments().len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot be nested")]
    fn nested_loops_rejected() {
        let _ = KernelBuilder::new("t")
            .begin_loop(2)
            .iadd(1, 0, 0)
            .begin_loop(2);
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn unclosed_loop_rejected_at_build() {
        let _ = KernelBuilder::new("t").begin_loop(2).iadd(1, 0, 0).build();
    }

    #[test]
    #[should_panic(expected = "end_loop without begin_loop")]
    fn stray_end_loop_rejected() {
        let _ = KernelBuilder::new("t").iadd(1, 0, 0).end_loop();
    }

    #[test]
    fn helpers_set_expected_units() {
        let k = KernelBuilder::new("t")
            .iadd(1, 0, 0)
            .imul(2, 1, 1)
            .fadd(3, 2, 2)
            .fmul(4, 3, 3)
            .ffma(5, 4, 4, 4)
            .sfu(6, 5)
            .load_global(7)
            .load_shared(8)
            .store_global(7)
            .store_shared(8)
            .build();
        let units: Vec<_> = k.iter().map(|i| i.unit()).collect();
        assert_eq!(
            units,
            vec![
                UnitType::Int,
                UnitType::Int,
                UnitType::Fp,
                UnitType::Fp,
                UnitType::Fp,
                UnitType::Sfu,
                UnitType::Ldst,
                UnitType::Ldst,
                UnitType::Ldst,
                UnitType::Ldst,
            ]
        );
    }

    #[test]
    fn indexed_load_carries_address_dependence() {
        let k = KernelBuilder::new("t").load_global_indexed(2, 1).build();
        let i = k.instruction(0).unwrap();
        assert_eq!(i.sources().count(), 1);
    }
}
