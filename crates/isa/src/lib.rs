//! # warped-isa
//!
//! A compact, timing-oriented micro ISA for GPGPU simulation.
//!
//! This crate defines the instruction set understood by the
//! [`warped-sim`](../warped_sim/index.html) cycle-level streaming
//! multiprocessor (SM) simulator. It is *timing only*: instructions carry
//! register operands so that dependencies can be tracked through a
//! scoreboard, but no values are ever computed.
//!
//! The ISA mirrors what the Warped Gates paper (MICRO 2013) needs to
//! observe: every instruction belongs to one of four execution-unit classes
//! ([`UnitType`]) — integer, floating point, special function, and
//! load/store — because the paper's scheduling and power gating mechanisms
//! act on the occupancy of those unit types.
//!
//! ## Quick example
//!
//! ```
//! use warped_isa::{KernelBuilder, UnitType};
//!
//! let kernel = KernelBuilder::new("axpy")
//!     .load_global(1)             // r1 <- mem
//!     .fmul(2, 1, 0)              // r2 <- r1 * r0
//!     .fadd(3, 2, 3)              // r3 <- r2 + r3
//!     .store_global(3)
//!     .build();
//!
//! assert_eq!(kernel.len(), 4);
//! assert_eq!(kernel.instruction(1).unwrap().unit(), UnitType::Fp);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod builder;
mod instr;
mod kernel;
mod mix;
mod reg;

pub use addr::AddrGen;
pub use builder::KernelBuilder;
pub use instr::{Instruction, MemSpace, Opcode, UnitType, MAX_SRCS};
pub use kernel::{Kernel, KernelCursor, Segment};
pub use mix::InstructionMix;
pub use reg::{Reg, NUM_REGS};
