//! Kernels: straight-line code and structured loops, plus a cursor that
//! walks a kernel in dynamic execution order.

use crate::{Instruction, InstructionMix, UnitType};
use std::fmt;

/// A structural element of a kernel body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Straight-line code executed exactly once per kernel execution.
    Straight(Vec<Instruction>),
    /// A counted loop: `body` executes `trips` times.
    ///
    /// Loops let synthetic workloads run for hundreds of thousands of
    /// dynamic instructions while keeping the static kernel small.
    Loop {
        /// Instructions in the loop body.
        body: Vec<Instruction>,
        /// Number of iterations (must be at least 1).
        trips: u32,
    },
}

impl Segment {
    fn static_len(&self) -> usize {
        match self {
            Segment::Straight(v) => v.len(),
            Segment::Loop { body, .. } => body.len(),
        }
    }

    fn dynamic_len(&self) -> u64 {
        match self {
            Segment::Straight(v) => v.len() as u64,
            Segment::Loop { body, trips } => body.len() as u64 * u64::from(*trips),
        }
    }
}

/// A kernel: a named sequence of [`Segment`]s executed by every warp.
///
/// All warps run the same kernel (the SIMT model); per-warp timing diverges
/// only through scheduling and the memory system.
///
/// # Examples
///
/// ```
/// use warped_isa::{KernelBuilder, UnitType};
///
/// let k = KernelBuilder::new("demo")
///     .iadd(1, 0, 0)
///     .begin_loop(10)
///     .fadd(2, 1, 2)
///     .end_loop()
///     .build();
/// assert_eq!(k.dynamic_len(), 1 + 10);
/// assert!(k.mix().fraction(UnitType::Fp) > 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    name: String,
    segments: Vec<Segment>,
    static_len: usize,
    dynamic_len: u64,
}

impl Kernel {
    /// Creates a kernel from raw segments.
    ///
    /// # Panics
    ///
    /// Panics if any loop has zero trips or an empty body, or if the kernel
    /// contains no instructions at all.
    #[must_use]
    pub fn new(name: impl Into<String>, segments: Vec<Segment>) -> Self {
        for s in &segments {
            if let Segment::Loop { body, trips } = s {
                assert!(*trips >= 1, "loop trips must be >= 1");
                assert!(!body.is_empty(), "loop body must not be empty");
            }
        }
        let static_len = segments.iter().map(Segment::static_len).sum();
        let dynamic_len = segments.iter().map(Segment::dynamic_len).sum();
        assert!(
            static_len > 0,
            "kernel must contain at least one instruction"
        );
        Kernel {
            name: name.into(),
            segments,
            static_len,
            dynamic_len,
        }
    }

    /// Kernel name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The structural segments of the kernel body.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of *static* instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.static_len
    }

    /// Whether the kernel has no instructions (never true for a
    /// constructed kernel, provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.static_len == 0
    }

    /// Number of *dynamic* instructions one warp executes.
    #[must_use]
    pub fn dynamic_len(&self) -> u64 {
        self.dynamic_len
    }

    /// Returns the `idx`-th static instruction, in segment order.
    #[must_use]
    pub fn instruction(&self, idx: usize) -> Option<Instruction> {
        let mut remaining = idx;
        for seg in &self.segments {
            let body = match seg {
                Segment::Straight(v) => v,
                Segment::Loop { body, .. } => body,
            };
            if remaining < body.len() {
                return Some(body[remaining]);
            }
            remaining -= body.len();
        }
        None
    }

    /// Iterates over static instructions in segment order.
    pub fn iter(&self) -> impl Iterator<Item = Instruction> + '_ {
        self.segments.iter().flat_map(|s| match s {
            Segment::Straight(v) => v.iter().copied(),
            Segment::Loop { body, .. } => body.iter().copied(),
        })
    }

    /// The *dynamic* instruction mix (loop bodies weighted by trip
    /// count). Barriers are synchronisation, not execution, and are
    /// excluded.
    #[must_use]
    pub fn mix(&self) -> InstructionMix {
        let mut counts = [0u64; 4];
        for seg in &self.segments {
            let (body, weight) = match seg {
                Segment::Straight(v) => (v, 1u64),
                Segment::Loop { body, trips } => (body, u64::from(*trips)),
            };
            for i in body {
                if !i.is_barrier() {
                    counts[i.unit().index()] += weight;
                }
            }
        }
        InstructionMix::from_counts(counts)
    }

    /// Number of dynamic instructions that occupy an execution unit
    /// (i.e. [`Kernel::dynamic_len`] minus barriers).
    #[must_use]
    pub fn dynamic_executable_len(&self) -> u64 {
        let mut n = 0;
        for seg in &self.segments {
            let (body, weight) = match seg {
                Segment::Straight(v) => (v, 1u64),
                Segment::Loop { body, trips } => (body, u64::from(*trips)),
            };
            n += weight * body.iter().filter(|i| !i.is_barrier()).count() as u64;
        }
        n
    }

    /// Total dynamic instructions of a given unit type.
    #[must_use]
    pub fn dynamic_count(&self, unit: UnitType) -> u64 {
        let mut n = 0;
        for seg in &self.segments {
            let (body, weight) = match seg {
                Segment::Straight(v) => (v, 1u64),
                Segment::Loop { body, trips } => (body, u64::from(*trips)),
            };
            n += weight
                * body
                    .iter()
                    .filter(|i| !i.is_barrier() && i.unit() == unit)
                    .count() as u64;
        }
        n
    }

    /// Creates a cursor positioned at the first dynamic instruction.
    #[must_use]
    pub fn cursor(&self) -> KernelCursor {
        KernelCursor::new(self)
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel {} ({} static / {} dynamic):",
            self.name, self.static_len, self.dynamic_len
        )?;
        for seg in &self.segments {
            match seg {
                Segment::Straight(v) => {
                    for i in v {
                        writeln!(f, "  {i}")?;
                    }
                }
                Segment::Loop { body, trips } => {
                    writeln!(f, "  loop x{trips} {{")?;
                    for i in body {
                        writeln!(f, "    {i}")?;
                    }
                    writeln!(f, "  }}")?;
                }
            }
        }
        Ok(())
    }
}

/// A lightweight per-warp program counter over a [`Kernel`].
///
/// The cursor yields instructions in dynamic order, re-walking loop bodies
/// `trips` times, without materialising the unrolled program. Cloning a
/// cursor is cheap, so each warp owns one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelCursor {
    segment: usize,
    offset: usize,
    trips_left: u32,
    executed: u64,
}

impl KernelCursor {
    fn new(kernel: &Kernel) -> Self {
        let mut c = KernelCursor {
            segment: 0,
            offset: 0,
            trips_left: 0,
            executed: 0,
        };
        c.sync_trips(kernel);
        c
    }

    fn sync_trips(&mut self, kernel: &Kernel) {
        if let Some(Segment::Loop { trips, .. }) = kernel.segments().get(self.segment) {
            if self.offset == 0 && self.trips_left == 0 {
                self.trips_left = *trips;
            }
        }
    }

    /// The instruction the cursor currently points at, or `None` when the
    /// warp has retired its whole program.
    #[must_use]
    pub fn peek(&self, kernel: &Kernel) -> Option<Instruction> {
        let seg = kernel.segments().get(self.segment)?;
        let body = match seg {
            Segment::Straight(v) => v,
            Segment::Loop { body, .. } => body,
        };
        body.get(self.offset).copied()
    }

    /// A stable identifier of the current *static* instruction, usable as a
    /// pseudo program counter (e.g. for hashing memory access latencies).
    #[must_use]
    pub fn pc(&self) -> u64 {
        ((self.segment as u64) << 32) | self.offset as u64
    }

    /// Number of dynamic instructions already stepped past.
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Whether the warp has executed its entire program.
    #[must_use]
    pub fn is_done(&self, kernel: &Kernel) -> bool {
        self.segment >= kernel.segments().len()
    }

    /// Advances past the current instruction.
    ///
    /// Does nothing when the program is already done.
    pub fn advance(&mut self, kernel: &Kernel) {
        let Some(seg) = kernel.segments().get(self.segment) else {
            return;
        };
        self.executed += 1;
        match seg {
            Segment::Straight(v) => {
                self.offset += 1;
                if self.offset >= v.len() {
                    self.segment += 1;
                    self.offset = 0;
                    self.sync_trips(kernel);
                }
            }
            Segment::Loop { body, .. } => {
                self.offset += 1;
                if self.offset >= body.len() {
                    self.offset = 0;
                    self.trips_left -= 1;
                    if self.trips_left == 0 {
                        self.segment += 1;
                        self.sync_trips(kernel);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Instruction, MemSpace, Opcode, Reg};

    fn ialu(d: u16, s: u16) -> Instruction {
        Instruction::new(Opcode::IAlu, Some(Reg::new(d)), &[Reg::new(s)])
    }

    fn falu(d: u16, s: u16) -> Instruction {
        Instruction::new(Opcode::FAlu, Some(Reg::new(d)), &[Reg::new(s)])
    }

    fn sample() -> Kernel {
        Kernel::new(
            "k",
            vec![
                Segment::Straight(vec![ialu(1, 0), falu(2, 1)]),
                Segment::Loop {
                    body: vec![ialu(3, 2), falu(4, 3), ialu(5, 4)],
                    trips: 4,
                },
                Segment::Straight(vec![Instruction::new(
                    Opcode::Store(MemSpace::Global),
                    None,
                    &[Reg::new(5)],
                )]),
            ],
        )
    }

    #[test]
    fn lengths_account_for_loop_trips() {
        let k = sample();
        assert_eq!(k.len(), 6);
        assert_eq!(k.dynamic_len(), 2 + 3 * 4 + 1);
    }

    #[test]
    fn cursor_walks_dynamic_order() {
        let k = sample();
        let mut c = k.cursor();
        let mut seen = Vec::new();
        while let Some(i) = c.peek(&k) {
            seen.push(i.opcode().mnemonic());
            c.advance(&k);
        }
        assert_eq!(seen.len() as u64, k.dynamic_len());
        assert!(c.is_done(&k));
        assert_eq!(c.executed(), k.dynamic_len());
        // Loop body repeats: positions 2..5, 5..8, ... all start with iadd.
        assert_eq!(seen[2], "iadd");
        assert_eq!(seen[5], "iadd");
        assert_eq!(seen[8], "iadd");
        assert_eq!(*seen.last().unwrap(), "stg");
    }

    #[test]
    fn cursor_pc_is_stable_across_iterations() {
        let k = sample();
        let mut c = k.cursor();
        c.advance(&k);
        c.advance(&k); // first loop instruction
        let pc_first_iter = c.pc();
        for _ in 0..3 {
            c.advance(&k);
        }
        assert_eq!(c.pc(), pc_first_iter, "same static pc on second trip");
    }

    #[test]
    fn advance_past_end_is_a_no_op() {
        let k = Kernel::new("k", vec![Segment::Straight(vec![ialu(1, 0)])]);
        let mut c = k.cursor();
        c.advance(&k);
        assert!(c.is_done(&k));
        let before = c.clone();
        c.advance(&k);
        assert_eq!(c, before);
    }

    #[test]
    fn mix_weights_loops_by_trip_count() {
        let k = sample();
        let mix = k.mix();
        // Dynamic: INT = 1 + 2*4 = 9, FP = 1 + 4 = 5, LDST = 1; total 15.
        assert!((mix.fraction(UnitType::Int) - 9.0 / 15.0).abs() < 1e-12);
        assert!((mix.fraction(UnitType::Fp) - 5.0 / 15.0).abs() < 1e-12);
        assert!((mix.fraction(UnitType::Ldst) - 1.0 / 15.0).abs() < 1e-12);
        assert_eq!(k.dynamic_count(UnitType::Int), 9);
    }

    #[test]
    fn instruction_indexing_spans_segments() {
        let k = sample();
        assert_eq!(k.instruction(0).unwrap().opcode(), Opcode::IAlu);
        assert_eq!(k.instruction(2).unwrap().opcode(), Opcode::IAlu);
        assert_eq!(
            k.instruction(5).unwrap().opcode(),
            Opcode::Store(MemSpace::Global)
        );
        assert_eq!(k.instruction(6), None);
    }

    #[test]
    #[should_panic(expected = "trips must be >= 1")]
    fn zero_trip_loop_is_rejected() {
        let _ = Kernel::new(
            "bad",
            vec![Segment::Loop {
                body: vec![ialu(1, 0)],
                trips: 0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_kernel_is_rejected() {
        let _ = Kernel::new("bad", vec![]);
    }
}
