//! Deterministic per-warp address generators for memory instructions.
//!
//! A memory instruction may carry an [`AddrGen`] descriptor: a small,
//! integer-only program that maps `(warp, dynamic access index)` to a
//! byte address. This makes access locality a *property of the kernel*
//! — strided streams, row-major tiled walks, or seeded indirect
//! gathers — instead of a probability drawn at issue time, which is
//! what a real cache hierarchy needs to produce meaningful hit/miss
//! shapes.
//!
//! Descriptors are pure functions: the same `(warp, index)` always
//! yields the same address, so every clock backend of the simulator
//! observes the same stream.

use std::fmt;

/// Finalizer of SplitMix64 — the same avalanche the rest of the
/// workspace uses for seeded hashing.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic address-stream descriptor attached to a load/store.
///
/// All fields are integers so instructions stay `Copy + Eq + Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrGen {
    /// A linear stream: `base + warp * warp_stride + index * stride`.
    ///
    /// `stride` smaller than a cache line gives spatial locality;
    /// `warp_stride == 0` makes every warp share the same line
    /// (maximal miss merging).
    Strided {
        /// Base byte address of the stream.
        base: u64,
        /// Bytes advanced per dynamic access.
        stride: u32,
        /// Byte offset between consecutive warps' streams.
        warp_stride: u32,
    },
    /// A row-major walk of a 2D array in square tiles of `tile × tile`
    /// 4-byte elements, `row_len` elements per row. Consecutive warps
    /// start one tile apart, so neighbouring warps revisit each other's
    /// lines — the classic blocked-GEMM reuse shape.
    Tiled {
        /// Base byte address of the array.
        base: u64,
        /// Elements per row (must be a multiple of `tile`).
        row_len: u32,
        /// Tile edge length in elements (must be >= 1).
        tile: u32,
    },
    /// A seeded indirect gather: each access hashes
    /// `(seed, warp, index)` onto a `footprint`-byte window. Large
    /// footprints defeat the cache; small ones turn into hits.
    IndirectRandom {
        /// Hash seed (decorrelates kernels from each other).
        seed: u64,
        /// Window size in bytes the gather is spread over.
        footprint: u64,
    },
}

impl AddrGen {
    /// The byte address of dynamic access `index` by warp `warp`.
    #[must_use]
    pub fn address(self, warp: u32, index: u64) -> u64 {
        match self {
            AddrGen::Strided {
                base,
                stride,
                warp_stride,
            } => base
                .wrapping_add(u64::from(warp) * u64::from(warp_stride))
                .wrapping_add(index.wrapping_mul(u64::from(stride))),
            AddrGen::Tiled {
                base,
                row_len,
                tile,
            } => {
                let tile = u64::from(tile.max(1));
                let row_len = u64::from(row_len.max(1)).max(tile);
                let per_tile = tile * tile;
                let tiles_per_row = (row_len / tile).max(1);
                // Consecutive warps start one tile later in the walk.
                let e = index + u64::from(warp) * per_tile;
                let tile_idx = e / per_tile;
                let within = e % per_tile;
                let tile_row = tile_idx / tiles_per_row;
                let tile_col = tile_idx % tiles_per_row;
                let row = tile_row * tile + within / tile;
                let col = tile_col * tile + within % tile;
                base + (row * row_len + col) * 4
            }
            AddrGen::IndirectRandom { seed, footprint } => {
                let h = mix64(
                    seed ^ u64::from(warp).wrapping_mul(0x1000_0001)
                        ^ index.wrapping_mul(0x0071_0003),
                );
                (h % footprint.max(1)) & !3
            }
        }
    }
}

impl fmt::Display for AddrGen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrGen::Strided {
                base,
                stride,
                warp_stride,
            } => write!(
                f,
                "strided(base={base:#x}, +{stride}/acc, +{warp_stride}/warp)"
            ),
            AddrGen::Tiled {
                base,
                row_len,
                tile,
            } => write!(f, "tiled(base={base:#x}, row={row_len}, tile={tile})"),
            AddrGen::IndirectRandom { seed, footprint } => {
                write!(f, "random(seed={seed:#x}, footprint={footprint})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_streams_are_linear_and_warp_offset() {
        let g = AddrGen::Strided {
            base: 0x1000,
            stride: 4,
            warp_stride: 256,
        };
        assert_eq!(g.address(0, 0), 0x1000);
        assert_eq!(g.address(0, 10), 0x1000 + 40);
        assert_eq!(g.address(3, 0), 0x1000 + 768);
    }

    #[test]
    fn tiled_walk_stays_inside_a_tile_before_moving_on() {
        let g = AddrGen::Tiled {
            base: 0,
            row_len: 8,
            tile: 2,
        };
        // First tile (rows 0-1, cols 0-1): elements 0,1,8,9 in row-major
        // element coordinates -> byte addresses x4.
        let first_tile: Vec<u64> = (0..4).map(|i| g.address(0, i)).collect();
        assert_eq!(first_tile, vec![0, 4, 32, 36]);
        // Second tile starts at column 2 of row 0.
        assert_eq!(g.address(0, 4), 8);
        // Warp 1 starts exactly one tile later than warp 0.
        assert_eq!(g.address(1, 0), g.address(0, 4));
    }

    #[test]
    fn indirect_random_is_deterministic_and_bounded() {
        let g = AddrGen::IndirectRandom {
            seed: 0x5eed,
            footprint: 4096,
        };
        for w in 0..4 {
            for i in 0..100 {
                let a = g.address(w, i);
                assert_eq!(a, g.address(w, i), "pure function");
                assert!(a < 4096);
                assert_eq!(a % 4, 0, "word aligned");
            }
        }
        // Different warps see different streams.
        assert_ne!(g.address(0, 5), g.address(1, 5));
    }
}
