//! Instruction-type mixes (the quantity Figure 5a of the paper reports).

use crate::UnitType;
use std::fmt;

/// The fraction of dynamic instructions belonging to each execution-unit
/// class.
///
/// Fractions always sum to 1 (or are all zero for an empty mix).
///
/// # Examples
///
/// ```
/// use warped_isa::{InstructionMix, UnitType};
///
/// let mix = InstructionMix::new(0.5, 0.3, 0.0, 0.2);
/// assert!((mix.fraction(UnitType::Int) - 0.5).abs() < 1e-12);
/// assert!(mix.has_type(UnitType::Fp));
/// assert!(!mix.has_type(UnitType::Sfu));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    fractions: [f64; 4],
}

impl InstructionMix {
    /// Creates a mix from per-type fractions (INT, FP, SFU, LDST).
    ///
    /// # Panics
    ///
    /// Panics if any fraction is negative or if the fractions do not sum to
    /// 1 within a small tolerance.
    #[must_use]
    pub fn new(int: f64, fp: f64, sfu: f64, ldst: f64) -> Self {
        let fractions = [int, fp, sfu, ldst];
        for f in fractions {
            assert!(f >= 0.0, "mix fractions must be non-negative, got {f}");
        }
        let sum: f64 = fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "mix fractions must sum to 1, got {sum}"
        );
        InstructionMix { fractions }
    }

    /// Creates a mix from absolute instruction counts (INT, FP, SFU, LDST).
    ///
    /// All-zero counts produce the zero mix.
    #[must_use]
    pub fn from_counts(counts: [u64; 4]) -> Self {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return InstructionMix {
                fractions: [0.0; 4],
            };
        }
        let mut fractions = [0.0; 4];
        for (f, c) in fractions.iter_mut().zip(counts) {
            *f = c as f64 / total as f64;
        }
        InstructionMix { fractions }
    }

    /// The fraction of instructions dispatched to `unit`.
    #[must_use]
    pub fn fraction(&self, unit: UnitType) -> f64 {
        self.fractions[unit.index()]
    }

    /// Whether the mix contains any instructions of `unit`.
    #[must_use]
    pub fn has_type(&self, unit: UnitType) -> bool {
        self.fraction(unit) > 0.0
    }

    /// Whether the mix is integer-only (no FP activity).
    ///
    /// Figure 9b of the paper excludes such benchmarks from FP energy
    /// reporting.
    #[must_use]
    pub fn is_integer_only(&self) -> bool {
        !self.has_type(UnitType::Fp)
    }

    /// All four fractions in [`UnitType::ALL`] order.
    #[must_use]
    pub fn fractions(&self) -> [f64; 4] {
        self.fractions
    }
}

impl fmt::Display for InstructionMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "INT {:.1}% / FP {:.1}% / SFU {:.1}% / LDST {:.1}%",
            self.fractions[0] * 100.0,
            self.fractions[1] * 100.0,
            self.fractions[2] * 100.0,
            self.fractions[3] * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_normalizes() {
        let m = InstructionMix::from_counts([2, 1, 0, 1]);
        assert!((m.fraction(UnitType::Int) - 0.5).abs() < 1e-12);
        assert!((m.fraction(UnitType::Ldst) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_counts_yield_zero_mix() {
        let m = InstructionMix::from_counts([0; 4]);
        for u in UnitType::ALL {
            assert_eq!(m.fraction(u), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn fractions_must_sum_to_one() {
        let _ = InstructionMix::new(0.5, 0.5, 0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_fractions_rejected() {
        let _ = InstructionMix::new(1.2, -0.2, 0.0, 0.0);
    }

    #[test]
    fn integer_only_detection() {
        assert!(InstructionMix::new(0.8, 0.0, 0.0, 0.2).is_integer_only());
        assert!(!InstructionMix::new(0.7, 0.1, 0.0, 0.2).is_integer_only());
    }

    #[test]
    fn display_shows_percentages() {
        let s = InstructionMix::new(0.5, 0.25, 0.0, 0.25).to_string();
        assert!(s.contains("INT 50.0%"));
        assert!(s.contains("LDST 25.0%"));
    }
}
