//! Architectural register identifiers.

use std::fmt;

/// Maximum number of architectural registers addressable per warp.
///
/// The scoreboard in `warped-sim` uses a fixed-width bitset sized by this
/// constant, so register indices must stay below it.
pub const NUM_REGS: u16 = 256;

/// An architectural register identifier local to a warp.
///
/// Registers are pure dependence tokens: the simulator never stores values
/// in them, it only tracks which registers have in-flight writers.
///
/// # Examples
///
/// ```
/// use warped_isa::Reg;
///
/// let r = Reg::new(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(r.to_string(), "r7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u16);

impl Reg {
    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not below [`NUM_REGS`].
    #[must_use]
    pub fn new(index: u16) -> Self {
        assert!(
            index < NUM_REGS,
            "register index {index} out of range (max {})",
            NUM_REGS - 1
        );
        Reg(index)
    }

    /// Creates a register identifier without the range check.
    ///
    /// Returns `None` when `index` is out of range, making it usable in
    /// contexts where panicking is undesirable.
    #[must_use]
    pub fn try_new(index: u16) -> Option<Self> {
        (index < NUM_REGS).then_some(Reg(index))
    }

    /// The numeric register index.
    #[must_use]
    pub fn index(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for u16 {
    fn from(r: Reg) -> u16 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_in_range_indices() {
        assert_eq!(Reg::new(0).index(), 0);
        assert_eq!(Reg::new(NUM_REGS - 1).index(), NUM_REGS - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range_index() {
        let _ = Reg::new(NUM_REGS);
    }

    #[test]
    fn try_new_mirrors_new_without_panicking() {
        assert_eq!(Reg::try_new(3), Some(Reg::new(3)));
        assert_eq!(Reg::try_new(NUM_REGS), None);
    }

    #[test]
    fn display_uses_r_prefix() {
        assert_eq!(Reg::new(42).to_string(), "r42");
    }

    #[test]
    fn conversion_to_u16_roundtrips() {
        let r = Reg::new(13);
        assert_eq!(u16::from(r), 13);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Reg::new(1) < Reg::new(2));
    }
}
