//! Instructions, opcodes, and execution-unit classes.

use crate::{AddrGen, Reg};
use std::fmt;

/// The execution-unit class an instruction dispatches to.
///
/// The Warped Gates mechanisms operate on the occupancy of these four unit
/// types inside a Fermi-like SM: two shader processors (each with separate
/// integer and floating point pipelines), four special function units, and
/// sixteen load/store units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnitType {
    /// Integer ALU pipeline inside the CUDA cores.
    Int,
    /// Floating point pipeline inside the CUDA cores.
    Fp,
    /// Special function unit (transcendentals, reciprocals).
    Sfu,
    /// Load/store unit (global and shared memory).
    Ldst,
}

impl UnitType {
    /// All unit types, in the fixed paper ordering (INT, FP, SFU, LDST).
    pub const ALL: [UnitType; 4] = [UnitType::Int, UnitType::Fp, UnitType::Sfu, UnitType::Ldst];

    /// A compact index in `0..4`, stable across the crate.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            UnitType::Int => 0,
            UnitType::Fp => 1,
            UnitType::Sfu => 2,
            UnitType::Ldst => 3,
        }
    }

    /// The inverse of [`UnitType::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }
}

impl fmt::Display for UnitType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnitType::Int => "INT",
            UnitType::Fp => "FP",
            UnitType::Sfu => "SFU",
            UnitType::Ldst => "LDST",
        };
        f.write_str(s)
    }
}

/// Address space accessed by a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Off-chip global memory: long, variable latency; consumers of the
    /// loaded value park the warp in the pending set.
    Global,
    /// On-chip shared memory: short, fixed latency.
    Shared,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Global => f.write_str("global"),
            MemSpace::Shared => f.write_str("shared"),
        }
    }
}

/// Operation performed by an instruction.
///
/// Opcodes are deliberately coarse: the timing simulator only needs the
/// unit class, the pipeline latency class, and (for memory operations)
/// whether a value is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Integer add/subtract/logic/shift/compare (single-cycle class).
    IAlu,
    /// Integer multiply / multiply-add (longer pipeline).
    IMul,
    /// Floating point add/subtract/compare.
    FAlu,
    /// Floating point multiply.
    FMul,
    /// Fused multiply-add.
    FFma,
    /// Special-function operation (sin, cos, rcp, sqrt, log, exp).
    Sfu,
    /// Load from memory into a destination register.
    Load(MemSpace),
    /// Store to memory (no destination register).
    Store(MemSpace),
    /// Block-wide barrier (`__syncthreads`): every warp of the thread
    /// block must arrive before any may proceed. Barriers never occupy
    /// an execution unit; the simulator handles them at the scheduling
    /// boundary.
    Bar,
}

impl Opcode {
    /// The execution unit this opcode dispatches to.
    #[must_use]
    pub fn unit(self) -> UnitType {
        match self {
            // Barriers never dispatch to a unit; the INT mapping is a
            // placeholder that the simulator is guaranteed not to use
            // (it intercepts barriers before issue).
            Opcode::IAlu | Opcode::IMul | Opcode::Bar => UnitType::Int,
            Opcode::FAlu | Opcode::FMul | Opcode::FFma => UnitType::Fp,
            Opcode::Sfu => UnitType::Sfu,
            Opcode::Load(_) | Opcode::Store(_) => UnitType::Ldst,
        }
    }

    /// Whether this is a block-wide barrier.
    #[must_use]
    pub fn is_barrier(self) -> bool {
        matches!(self, Opcode::Bar)
    }

    /// Default execution latency in core cycles.
    ///
    /// Simple integer ALU operations use the 4-cycle latency /
    /// single-cycle initiation interval the paper quotes as the
    /// GPGPU-Sim Fermi default; floating point and multiply pipelines
    /// are deeper (GPGPU-Sim's Fermi configuration uses longer FP
    /// latencies). Loads resolve through the simulator's memory model,
    /// so the value returned here only covers address generation in the
    /// LDST unit.
    #[must_use]
    pub fn latency(self) -> u32 {
        match self {
            Opcode::IAlu => 4,
            Opcode::FAlu | Opcode::FMul => 6,
            Opcode::FFma | Opcode::IMul => 8,
            Opcode::Sfu => 16,
            Opcode::Load(_) | Opcode::Store(_) | Opcode::Bar => 1,
        }
    }

    /// Whether the opcode produces a register result.
    #[must_use]
    pub fn writes_register(self) -> bool {
        !matches!(self, Opcode::Store(_) | Opcode::Bar)
    }

    /// Whether the result arrives via the long-latency memory path.
    #[must_use]
    pub fn is_long_latency_load(self) -> bool {
        matches!(self, Opcode::Load(MemSpace::Global))
    }

    /// Short mnemonic for display purposes.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::IAlu => "iadd",
            Opcode::IMul => "imul",
            Opcode::FAlu => "fadd",
            Opcode::FMul => "fmul",
            Opcode::FFma => "ffma",
            Opcode::Sfu => "sfu",
            Opcode::Load(MemSpace::Global) => "ldg",
            Opcode::Load(MemSpace::Shared) => "lds",
            Opcode::Store(MemSpace::Global) => "stg",
            Opcode::Store(MemSpace::Shared) => "sts",
            Opcode::Bar => "bar",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Maximum number of source operands an instruction may carry.
pub const MAX_SRCS: usize = 3;

/// A decoded instruction.
///
/// Instructions are immutable once built; use [`Instruction::new`] or the
/// [`KernelBuilder`](crate::KernelBuilder) convenience methods.
///
/// # Examples
///
/// ```
/// use warped_isa::{Instruction, Opcode, Reg, UnitType};
///
/// let i = Instruction::new(Opcode::FFma, Some(Reg::new(4)), &[Reg::new(1), Reg::new(2), Reg::new(4)]);
/// assert_eq!(i.unit(), UnitType::Fp);
/// assert_eq!(i.sources().count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instruction {
    op: Opcode,
    dst: Option<Reg>,
    srcs: [Option<Reg>; MAX_SRCS],
    addr: Option<AddrGen>,
}

impl Instruction {
    /// Creates an instruction.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SRCS`] sources are supplied, if a store
    /// carries a destination, or if a value-producing opcode lacks one.
    #[must_use]
    pub fn new(op: Opcode, dst: Option<Reg>, srcs: &[Reg]) -> Self {
        assert!(
            srcs.len() <= MAX_SRCS,
            "instruction supports at most {MAX_SRCS} sources, got {}",
            srcs.len()
        );
        assert_eq!(
            op.writes_register(),
            dst.is_some(),
            "destination presence must match opcode {op}"
        );
        let mut s = [None; MAX_SRCS];
        for (slot, reg) in s.iter_mut().zip(srcs) {
            *slot = Some(*reg);
        }
        Instruction {
            op,
            dst,
            srcs: s,
            addr: None,
        }
    }

    /// Attaches a deterministic address-stream descriptor.
    ///
    /// # Panics
    ///
    /// Panics on non-memory opcodes — an address generator only makes
    /// sense on loads and stores.
    #[must_use]
    pub fn with_addr_gen(mut self, gen: AddrGen) -> Self {
        assert!(
            matches!(self.op, Opcode::Load(_) | Opcode::Store(_)),
            "address generators only attach to memory instructions, not {}",
            self.op
        );
        self.addr = Some(gen);
        self
    }

    /// The attached address-stream descriptor, if any.
    #[must_use]
    pub fn addr_gen(self) -> Option<AddrGen> {
        self.addr
    }

    /// The opcode.
    #[must_use]
    pub fn opcode(self) -> Opcode {
        self.op
    }

    /// The execution unit class this instruction needs.
    ///
    /// This is the "two-bit instruction type" that GATES attaches to each
    /// active-warp entry.
    #[must_use]
    pub fn unit(self) -> UnitType {
        self.op.unit()
    }

    /// Whether this is a block-wide barrier.
    #[must_use]
    pub fn is_barrier(self) -> bool {
        self.op.is_barrier()
    }

    /// Destination register, if the instruction produces a value.
    #[must_use]
    pub fn destination(self) -> Option<Reg> {
        self.dst
    }

    /// Iterator over the source registers.
    pub fn sources(self) -> impl Iterator<Item = Reg> {
        self.srcs.into_iter().flatten()
    }

    /// Pipeline latency of this instruction in the execution unit.
    #[must_use]
    pub fn latency(self) -> u32 {
        self.op.latency()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        for s in self.srcs.into_iter().flatten() {
            write!(f, ", {s}")?;
        }
        if let Some(g) = self.addr {
            write!(f, " @{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn unit_classification_covers_all_opcodes() {
        assert_eq!(Opcode::IAlu.unit(), UnitType::Int);
        assert_eq!(Opcode::IMul.unit(), UnitType::Int);
        assert_eq!(Opcode::FAlu.unit(), UnitType::Fp);
        assert_eq!(Opcode::FMul.unit(), UnitType::Fp);
        assert_eq!(Opcode::FFma.unit(), UnitType::Fp);
        assert_eq!(Opcode::Sfu.unit(), UnitType::Sfu);
        assert_eq!(Opcode::Load(MemSpace::Global).unit(), UnitType::Ldst);
        assert_eq!(Opcode::Store(MemSpace::Shared).unit(), UnitType::Ldst);
    }

    #[test]
    fn alu_class_latencies_follow_fermi_pipeline_depths() {
        assert_eq!(Opcode::IAlu.latency(), 4);
        assert_eq!(Opcode::FAlu.latency(), 6);
        assert_eq!(Opcode::FFma.latency(), 8);
        assert!(Opcode::Sfu.latency() > Opcode::FFma.latency());
    }

    #[test]
    fn stores_do_not_write_registers() {
        assert!(!Opcode::Store(MemSpace::Global).writes_register());
        assert!(Opcode::Load(MemSpace::Global).writes_register());
        assert!(Opcode::IAlu.writes_register());
    }

    #[test]
    fn only_global_loads_are_long_latency() {
        assert!(Opcode::Load(MemSpace::Global).is_long_latency_load());
        assert!(!Opcode::Load(MemSpace::Shared).is_long_latency_load());
        assert!(!Opcode::Store(MemSpace::Global).is_long_latency_load());
        assert!(!Opcode::FAlu.is_long_latency_load());
    }

    #[test]
    fn instruction_sources_preserve_order() {
        let i = Instruction::new(Opcode::FFma, Some(r(9)), &[r(1), r(2), r(3)]);
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![r(1), r(2), r(3)]);
    }

    #[test]
    #[should_panic(expected = "destination presence")]
    fn store_with_destination_is_rejected() {
        let _ = Instruction::new(Opcode::Store(MemSpace::Global), Some(r(1)), &[r(2)]);
    }

    #[test]
    #[should_panic(expected = "destination presence")]
    fn alu_without_destination_is_rejected() {
        let _ = Instruction::new(Opcode::IAlu, None, &[r(2)]);
    }

    #[test]
    fn unit_type_index_roundtrips() {
        for u in UnitType::ALL {
            assert_eq!(UnitType::from_index(u.index()), u);
        }
    }

    #[test]
    fn display_formats_are_stable() {
        let i = Instruction::new(Opcode::FMul, Some(r(2)), &[r(0), r(1)]);
        assert_eq!(i.to_string(), "fmul r2, r0, r1");
        assert_eq!(UnitType::Ldst.to_string(), "LDST");
        assert_eq!(MemSpace::Global.to_string(), "global");
    }
}
