//! Cluster mode: consistent-hash sharding, health-checked failover,
//! and client-side retry/hedging for `warped-serve`.
//!
//! A cluster is N identical nodes, each running the full service. The
//! versioned [`cell_fingerprint`] is the routing key: a [`HashRing`]
//! built from the (sorted) peer list maps every fingerprint to an
//! owner node, so the content-addressed cache is *partitioned* across
//! the fleet instead of duplicated — each node's disk cache holds its
//! shard of the grid. Because the fingerprint deliberately excludes
//! observe-only switches (watchdog, telemetry, clock backend), a
//! client and every server compute the same key for the same cell
//! regardless of per-node configuration.
//!
//! Resilience is layered:
//!
//! * **Peer forwarding** (server side): a node receiving a cell it
//!   does not own forwards it one hop to the owner, tagging the
//!   request with `X-Warped-Forwarded` so the owner always serves
//!   locally — the loop guard makes a second hop impossible. A failed
//!   forward degrades to local simulation, never to an error.
//! * **Circuit breakers**: every peer has a half-open breaker fed by
//!   active `/healthz` probes and passive 5xx/transport observations.
//!   `Closed` → `Open` after a failure streak, `Open` → `HalfOpen`
//!   after a cooldown (one trial request is let through), and the
//!   trial's outcome closes or re-opens the breaker.
//! * **Client retries + hedging** ([`ClusterClient`]): bounded
//!   retries walk the ring's replica order with decorrelated-jitter
//!   exponential backoff and per-attempt timeouts; a sweep whose
//!   progress stalls re-dispatches the straggler cells to the next
//!   replica (once per cell), so a node killed mid-sweep costs extra
//!   work, never a failed or non-bit-identical grid.
//!
//! The chaos harness ([`chaos_plan`] + [`ChaosMode`]) injects
//! kill/stall/error faults on a seeded schedule — deterministic, so a
//! failing chaos run is reproducible from its seed.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use warped_gates::fingerprint::{cell_fingerprint, ConfigHasher};
use warped_gates::{Experiment, Technique};
use warped_gating::GatingParams;
use warped_workloads::rng::SplitMix64;
use warped_workloads::Benchmark;

use crate::client::Client;

/// Domain tag separating ring-point hashes from every other use of
/// [`ConfigHasher`].
const RING_TAG: u64 = 0x7761_7270_6564_5f72;

/// The loop-guard header (lower-cased, as parsed requests store it).
/// A request carrying it is served locally, never forwarded again.
pub const FORWARDED_HEADER: &str = "x-warped-forwarded";

// ---------------------------------------------------------------------------
// Hash ring
// ---------------------------------------------------------------------------

/// A consistent-hash ring with virtual nodes.
///
/// Every node contributes `vnodes` points; a key is owned by the node
/// of the first point at or after the key's hash (wrapping). All
/// cluster members build the ring from the same sorted peer list, so
/// ownership is a pure function of (peer list, fingerprint) and every
/// node and client agree on it without coordination.
#[derive(Debug)]
pub struct HashRing {
    /// `(point, node index)` sorted by point.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// Builds the ring over `names` (one entry per node, order
    /// significant — callers sort first) with `vnodes` points each.
    #[must_use]
    pub fn new(names: &[String], vnodes: usize) -> Self {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (node, name) in names.iter().enumerate() {
            for v in 0..vnodes {
                let mut h = ConfigHasher::new(RING_TAG);
                h.str(name).word(v as u64);
                points.push((h.finish(), node));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            nodes: names.len(),
        }
    }

    /// The node owning `key`.
    #[must_use]
    pub fn owner(&self, key: u64) -> usize {
        self.replicas(key)
            .next()
            .expect("ring always has at least one node")
    }

    /// Distinct nodes in ring order starting at the owner — the
    /// failover order for `key`.
    #[must_use]
    pub fn replicas(&self, key: u64) -> Replicas<'_> {
        let start = self.points.partition_point(|(p, _)| *p < key);
        Replicas {
            ring: self,
            pos: start,
            walked: 0,
            seen: 0,
            yielded: 0,
        }
    }

    /// Number of nodes on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Whether the ring has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }
}

/// Iterator over a key's failover order (see [`HashRing::replicas`]).
#[derive(Debug)]
pub struct Replicas<'a> {
    ring: &'a HashRing,
    pos: usize,
    walked: usize,
    /// Bitset of node indices already yielded (rings are small).
    seen: u128,
    yielded: usize,
}

impl Iterator for Replicas<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.yielded < self.ring.nodes && self.walked < self.ring.points.len() {
            let (_, node) = self.ring.points[self.pos % self.ring.points.len()];
            self.pos += 1;
            self.walked += 1;
            let bit = 1u128 << (node % 128);
            if self.seen & bit == 0 {
                self.seen |= bit;
                self.yielded += 1;
                return Some(node);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// Breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip `Closed` → `Open`.
    pub threshold: u32,
    /// How long `Open` holds before a half-open trial is allowed.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_secs(2),
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are refused until the cooldown elapses.
    Open,
    /// One trial request is in flight; its outcome decides.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    failures: u32,
    opened_at: Option<Instant>,
}

/// A half-open circuit breaker guarding one peer.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    #[must_use]
    pub fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                failures: 0,
                opened_at: None,
            }),
        }
    }

    /// Whether a request may go to this peer right now. An `Open`
    /// breaker past its cooldown transitions to `HalfOpen` and admits
    /// the caller as the trial — so call this only when actually about
    /// to send.
    pub fn allow(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_none_or(|at| at.elapsed() >= self.config.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                }
                cooled
            }
        }
    }

    /// Records a success: the breaker closes and the streak resets.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        inner.state = BreakerState::Closed;
        inner.failures = 0;
        inner.opened_at = None;
    }

    /// Records a failure. Returns `true` when this failure tripped the
    /// breaker open (including a failed half-open trial re-opening it).
    pub fn record_failure(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock poisoned");
        match inner.state {
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                true
            }
            BreakerState::Closed => {
                inner.failures += 1;
                if inner.failures >= self.config.threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The current state (for metrics and tests).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock poisoned").state
    }
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

/// Cluster membership and resilience tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Every node's address, self included. Sorted and deduplicated
    /// internally, so all members may pass the list in any order.
    pub peers: Vec<String>,
    /// Which peer is this process (server side); `None` for a pure
    /// client.
    pub self_addr: Option<String>,
    /// Virtual nodes per peer on the hash ring.
    pub vnodes: usize,
    /// Active `/healthz` probe cadence; `None` disables the prober
    /// (breakers then learn only from passive observations).
    pub probe_interval: Option<Duration>,
    /// Per-request timeout for server-side peer forwards.
    pub forward_timeout: Duration,
    /// Breaker tuning, shared by every peer.
    pub breaker: BreakerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            peers: Vec::new(),
            self_addr: None,
            vnodes: 64,
            probe_interval: Some(Duration::from_millis(500)),
            forward_timeout: Duration::from_secs(30),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Cluster-level counters, rendered under `/metrics`.
#[derive(Debug, Default)]
pub struct ClusterCounters {
    /// Mis-routed cells successfully forwarded to their owner.
    pub forwarded_requests: AtomicU64,
    /// Forwards that failed and fell back to local simulation.
    pub forward_failures: AtomicU64,
    /// Client-side retry attempts (re-dispatches after a failure).
    pub retries: AtomicU64,
    /// Straggler sweep cells hedged to the next ring replica.
    pub hedged_cells: AtomicU64,
    /// Breaker trips (`Closed`/`HalfOpen` → `Open` transitions).
    pub breaker_open: AtomicU64,
    /// Failed peer health observations (probes and passive).
    pub peer_unhealthy: AtomicU64,
}

/// The per-peer state shared between the cluster and its prober
/// thread (the prober holds its own `Arc`, so dropping the cluster
/// can join it without a reference cycle).
#[derive(Debug)]
struct PeerTable {
    addrs: Vec<SocketAddr>,
    breakers: Vec<Breaker>,
    counters: ClusterCounters,
}

impl PeerTable {
    fn record_failure(&self, node: usize) {
        self.counters.peer_unhealthy.fetch_add(1, Ordering::Relaxed);
        if self.breakers[node].record_failure() {
            self.counters.breaker_open.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[derive(Debug)]
struct Prober {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

/// A cluster view: membership, the hash ring, per-peer breakers, and
/// (optionally) a background `/healthz` prober. Shared by the server
/// (forwarding) and the [`ClusterClient`].
#[derive(Debug)]
pub struct Cluster {
    names: Vec<String>,
    self_index: Option<usize>,
    ring: HashRing,
    forward_timeout: Duration,
    table: Arc<PeerTable>,
    prober: Option<Prober>,
}

impl Cluster {
    /// Builds a cluster view from the configuration, resolving every
    /// peer address and spawning the prober if one is configured.
    ///
    /// # Errors
    ///
    /// Returns a message when the peer list is empty, an address does
    /// not resolve, or `self_addr` is not in the list.
    pub fn new(config: &ClusterConfig) -> Result<Cluster, String> {
        let mut names = config.peers.clone();
        names.sort();
        names.dedup();
        if names.is_empty() {
            return Err("cluster needs at least one peer".to_owned());
        }
        let addrs = names
            .iter()
            .map(|name| {
                name.to_socket_addrs()
                    .map_err(|e| format!("cannot resolve peer {name}: {e}"))?
                    .next()
                    .ok_or_else(|| format!("peer {name} resolves to no address"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let self_index = match &config.self_addr {
            None => None,
            Some(own) => Some(
                names
                    .iter()
                    .position(|n| n == own)
                    .ok_or_else(|| format!("self address {own} is not in the peer list"))?,
            ),
        };
        let ring = HashRing::new(&names, config.vnodes);
        let table = Arc::new(PeerTable {
            addrs,
            breakers: names
                .iter()
                .map(|_| Breaker::new(config.breaker.clone()))
                .collect(),
            counters: ClusterCounters::default(),
        });
        let prober = config
            .probe_interval
            .map(|interval| spawn_prober(Arc::clone(&table), self_index, interval));
        Ok(Cluster {
            names,
            self_index,
            ring,
            forward_timeout: config.forward_timeout,
            table,
            prober,
        })
    }

    /// The sorted peer list the ring was built from.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.names
    }

    /// This process's index in [`Cluster::nodes`], when it is a member.
    #[must_use]
    pub fn self_index(&self) -> Option<usize> {
        self.self_index
    }

    /// The resolved address of one node.
    #[must_use]
    pub fn addr(&self, node: usize) -> SocketAddr {
        self.table.addrs[node]
    }

    /// The hash ring (ownership and failover order).
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// One node's breaker.
    #[must_use]
    pub fn breaker(&self, node: usize) -> &Breaker {
        &self.table.breakers[node]
    }

    /// The cluster counters.
    #[must_use]
    pub fn counters(&self) -> &ClusterCounters {
        &self.table.counters
    }

    /// Records a failed exchange with `node` (passive observation):
    /// bumps `peer_unhealthy` and feeds the breaker.
    pub fn record_peer_failure(&self, node: usize) {
        self.table.record_failure(node);
    }

    /// Records a successful exchange with `node`: the breaker closes.
    pub fn record_peer_success(&self, node: usize) {
        self.table.breakers[node].record_success();
    }

    /// Picks the node for `fingerprint` at failover position `offset`
    /// (0 = the owner), skipping ahead past peers whose breaker
    /// refuses. Falls back to the positional candidate when every
    /// breaker refuses — sending *somewhere* beats failing fast.
    #[must_use]
    pub fn route(&self, fingerprint: u64, offset: usize) -> usize {
        let order: Vec<usize> = self.ring.replicas(fingerprint).collect();
        let candidate = order[offset % order.len()];
        if self.table.breakers[candidate].allow() {
            return candidate;
        }
        for step in 1..order.len() {
            let next = order[(offset + step) % order.len()];
            if self.table.breakers[next].allow() {
                return next;
            }
        }
        candidate
    }

    /// The forward target for a fingerprint this node received: the
    /// owner, unless that is us, the breaker refuses, or this process
    /// is not a cluster member.
    #[must_use]
    pub fn forward_target(&self, fingerprint: u64) -> Option<usize> {
        let owner = self.ring.owner(fingerprint);
        if self.self_index == Some(owner) || self.self_index.is_none() {
            return None;
        }
        self.table.breakers[owner].allow().then_some(owner)
    }

    /// Forwards one `/run` body to `node` with the loop-guard header
    /// set. Success feeds the breaker and `forwarded_requests`;
    /// failure feeds the breaker and `forward_failures` and returns
    /// the error (the caller falls back to local simulation).
    ///
    /// # Errors
    ///
    /// Returns a message on transport failure or a non-200 answer.
    pub fn forward_run(&self, node: usize, body: &str) -> Result<Vec<u8>, String> {
        let mut client = Client::new(self.table.addrs[node])
            .with_keep_alive(false)
            .with_read_timeout(Some(self.forward_timeout))
            .with_connect_timeout(Some(self.forward_timeout))
            .with_header("X-Warped-Forwarded", "1");
        let counters = &self.table.counters;
        match client.post_json("/run", body) {
            Ok(r) if r.status == 200 => {
                self.record_peer_success(node);
                counters.forwarded_requests.fetch_add(1, Ordering::Relaxed);
                Ok(r.body)
            }
            Ok(r) => {
                self.table.record_failure(node);
                counters.forward_failures.fetch_add(1, Ordering::Relaxed);
                Err(format!("peer {} answered {}", self.names[node], r.status))
            }
            Err(e) => {
                self.table.record_failure(node);
                counters.forward_failures.fetch_add(1, Ordering::Relaxed);
                Err(format!("peer {} unreachable: {e}", self.names[node]))
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(prober) = self.prober.take() {
            prober.stop.store(true, Ordering::SeqCst);
            let _ = prober.thread.join();
        }
    }
}

/// The active health prober: a `GET /healthz` round over every peer
/// (skipping self) each interval, feeding breakers and counters.
fn spawn_prober(table: Arc<PeerTable>, self_index: Option<usize>, interval: Duration) -> Prober {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let probe_timeout = interval.min(Duration::from_millis(500));
    let thread = std::thread::Builder::new()
        .name("warped-cluster-probe".to_owned())
        .spawn(move || {
            let tick = Duration::from_millis(25);
            loop {
                for node in 0..table.addrs.len() {
                    if stop_flag.load(Ordering::SeqCst) {
                        return;
                    }
                    if self_index == Some(node) {
                        continue;
                    }
                    let mut client = Client::new(table.addrs[node])
                        .with_keep_alive(false)
                        .with_read_timeout(Some(probe_timeout))
                        .with_connect_timeout(Some(probe_timeout));
                    match client.get("/healthz") {
                        Ok(r) if r.status == 200 => table.breakers[node].record_success(),
                        _ => table.record_failure(node),
                    }
                }
                // Sleep the interval in short ticks so drop-time join
                // never waits a full cadence.
                let slept_until = Instant::now() + interval;
                while Instant::now() < slept_until {
                    if stop_flag.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(tick);
                }
            }
        })
        .expect("spawn prober thread");
    Prober { stop, thread }
}

// ---------------------------------------------------------------------------
// Cluster client
// ---------------------------------------------------------------------------

/// Retry tuning for [`ClusterClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per cell (first try included).
    pub max_attempts: u32,
    /// First backoff delay.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
        }
    }
}

/// One routable cell: the `/run` body and its routing fingerprint.
#[derive(Debug, Clone)]
pub struct ClusterCell {
    /// The canonical `/run` request body.
    pub body: String,
    /// The cell's [`cell_fingerprint`] — must match what the server
    /// computes for `body`, or routing degenerates to forwarding.
    pub fingerprint: u64,
}

/// Builds a [`ClusterCell`] for a default-parameter cell, computing
/// the same fingerprint the server will (scale folded in, observe-only
/// switches excluded).
#[must_use]
pub fn cell_for(benchmark: Benchmark, technique: Technique, scale: f64) -> ClusterCell {
    let experiment = Experiment::new(GatingParams::default()).with_scale(scale);
    let fingerprint = cell_fingerprint(&experiment, &benchmark.spec(), technique);
    ClusterCell {
        body: format!(
            "{{\"benchmark\":\"{}\",\"technique\":\"{}\",\"scale\":{scale}}}",
            benchmark.name(),
            technique.name()
        ),
        fingerprint,
    }
}

/// How long a cell may sit outstanding with no sweep-wide progress
/// before it is hedged to the next replica.
const DEFAULT_HEDGE_AFTER: Duration = Duration::from_secs(3);

/// Threads re-dispatching failed/hedged cells cell-by-cell.
const RETRY_WORKERS: usize = 4;

/// A resilient client over a [`Cluster`]: routes each cell to its
/// ring owner, retries across replicas with decorrelated-jitter
/// backoff, and hedges sweep stragglers.
#[derive(Debug)]
pub struct ClusterClient {
    cluster: Cluster,
    retry: RetryPolicy,
    attempt_timeout: Duration,
    hedge_after: Duration,
    rng: Mutex<SplitMix64>,
}

/// Coordinator-side cell state during a sweep.
enum CellState {
    Outstanding,
    Done(Vec<u8>),
    Failed(String),
}

impl ClusterClient {
    /// A client over `cluster` with default tuning and a fixed backoff
    /// seed (pass a different seed per process for decorrelation).
    #[must_use]
    pub fn new(cluster: Cluster, seed: u64) -> Self {
        ClusterClient {
            cluster,
            retry: RetryPolicy::default(),
            attempt_timeout: Duration::from_secs(60),
            hedge_after: DEFAULT_HEDGE_AFTER,
            rng: Mutex::new(SplitMix64::new(seed)),
        }
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the per-attempt timeout (connect + read).
    #[must_use]
    pub fn with_attempt_timeout(mut self, timeout: Duration) -> Self {
        self.attempt_timeout = timeout;
        self
    }

    /// Overrides the hedging trigger.
    #[must_use]
    pub fn with_hedge_after(mut self, after: Duration) -> Self {
        self.hedge_after = after;
        self
    }

    /// The cluster view (counters, ring, breakers).
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn node_client(&self, node: usize) -> Client {
        Client::new(self.cluster.addr(node))
            .with_keep_alive(false)
            .with_read_timeout(Some(self.attempt_timeout))
            .with_connect_timeout(Some(self.attempt_timeout))
    }

    /// Decorrelated jitter (AWS style): the next delay is uniform in
    /// `[base, 3 × previous]`, capped.
    fn next_delay(&self, previous: Duration) -> Duration {
        let base = self.retry.base.as_secs_f64();
        let upper = (previous.as_secs_f64() * 3.0).max(base);
        let draw = self.rng.lock().expect("rng lock poisoned").next_f64();
        let next = base + draw * (upper - base);
        Duration::from_secs_f64(next).min(self.retry.cap)
    }

    /// Runs one cell with retries across the ring's replica order.
    ///
    /// # Errors
    ///
    /// Returns the last failure after `max_attempts` exhausted every
    /// backoff.
    pub fn run(&self, cell: &ClusterCell) -> Result<Vec<u8>, String> {
        self.run_from(cell, 0)
    }

    /// [`ClusterClient::run`] starting at failover position `start`
    /// (1 = skip the owner; used for re-dispatch when the owner is the
    /// suspected failure).
    fn run_from(&self, cell: &ClusterCell, start: usize) -> Result<Vec<u8>, String> {
        let counters = self.cluster.counters();
        let mut delay = self.retry.base;
        let mut last_err = "no attempts were made".to_owned();
        for attempt in 0..self.retry.max_attempts.max(1) {
            if attempt > 0 {
                counters.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(delay);
                delay = self.next_delay(delay);
            }
            let node = self
                .cluster
                .route(cell.fingerprint, start + attempt as usize);
            match self.node_client(node).post_json("/run", &cell.body) {
                Ok(r) if r.status == 200 => {
                    self.cluster.record_peer_success(node);
                    return Ok(r.body);
                }
                Ok(r) => {
                    self.cluster.record_peer_failure(node);
                    last_err = format!(
                        "{} answered {}: {:.200}",
                        self.cluster.nodes()[node],
                        r.status,
                        r.text()
                    );
                }
                Err(e) => {
                    self.cluster.record_peer_failure(node);
                    last_err = format!("{}: {e}", self.cluster.nodes()[node]);
                }
            }
        }
        Err(last_err)
    }

    /// Runs a batch of cells across the cluster: each node streams its
    /// owned shard through one `/sweep`, dead or erroring shards are
    /// re-dispatched cell-by-cell to other replicas, and stalled
    /// stragglers are hedged (once per cell) to the next replica.
    /// Results come back in input order, byte-identical to what `/run`
    /// answers for each cell.
    ///
    /// # Errors
    ///
    /// Returns a message when any cell exhausted every replica and
    /// retry.
    pub fn sweep(&self, cells: &[ClusterCell]) -> Result<Vec<Vec<u8>>, String> {
        if cells.is_empty() {
            return Ok(Vec::new());
        }
        let n = cells.len();
        let node_count = self.cluster.nodes().len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); node_count];
        for (i, cell) in cells.iter().enumerate() {
            groups[self.cluster.route(cell.fingerprint, 0)].push(i);
        }

        // Events: (cell index, terminal outcome of one dispatch).
        let (event_tx, event_rx) = mpsc::channel::<(usize, Result<Vec<u8>, String>)>();
        // Retry queue: cells needing cell-by-cell re-dispatch.
        let (retry_tx, retry_rx) = mpsc::channel::<usize>();
        let retry_rx = Mutex::new(retry_rx);
        // Lets late retry workers skip cells the coordinator already
        // settled (a benign race: a duplicate event is ignored).
        let answered: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

        let state = std::thread::scope(|scope| {
            for (node, group) in groups.iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let event_tx = event_tx.clone();
                let retry_tx = retry_tx.clone();
                scope.spawn(move || {
                    self.stream_group(node, group, cells, &event_tx, &retry_tx);
                });
            }
            for _ in 0..RETRY_WORKERS.min(n) {
                let event_tx = event_tx.clone();
                let (retry_rx, answered) = (&retry_rx, &answered);
                scope.spawn(move || loop {
                    let next = retry_rx.lock().expect("retry lock poisoned").recv();
                    let Ok(index) = next else { break };
                    if answered[index].load(Ordering::Acquire) {
                        continue;
                    }
                    // Skip the owner: it is the suspected failure.
                    let outcome = self.run_from(&cells[index], 1);
                    if event_tx.send((index, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(event_tx);

            let counters = self.cluster.counters();
            let mut state: Vec<CellState> = (0..n).map(|_| CellState::Outstanding).collect();
            let mut hedged = vec![false; n];
            let mut open = n;
            while open > 0 {
                match event_rx.recv_timeout(self.hedge_after) {
                    Ok((i, Ok(bytes))) => {
                        // First success wins; a success may also
                        // overturn an earlier terminal failure (the
                        // original stream answered late).
                        match state[i] {
                            CellState::Done(_) => {}
                            CellState::Outstanding => {
                                state[i] = CellState::Done(bytes);
                                answered[i].store(true, Ordering::Release);
                                open -= 1;
                            }
                            CellState::Failed(_) => {
                                state[i] = CellState::Done(bytes);
                                answered[i].store(true, Ordering::Release);
                            }
                        }
                    }
                    Ok((i, Err(e))) => {
                        if matches!(state[i], CellState::Outstanding) {
                            state[i] = CellState::Failed(e);
                            answered[i].store(true, Ordering::Release);
                            open -= 1;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // No progress for a whole hedge window: assume
                        // the outstanding cells sit on a stalled node
                        // and hedge each to the next replica, once.
                        for i in 0..n {
                            if matches!(state[i], CellState::Outstanding) && !hedged[i] {
                                hedged[i] = true;
                                counters.hedged_cells.fetch_add(1, Ordering::Relaxed);
                                let _ = retry_tx.send(i);
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
            drop(retry_tx);
            state
        });

        let mut results = Vec::with_capacity(n);
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (i, cell_state) in state.into_iter().enumerate() {
            match cell_state {
                CellState::Done(bytes) => results.push(bytes),
                CellState::Failed(e) => failures.push((i, e)),
                CellState::Outstanding => {
                    failures.push((i, "cell never completed".to_owned()));
                }
            }
        }
        if let Some((index, first)) = failures.first() {
            return Err(format!(
                "{} of {n} cells failed; first: cell {index}: {first}",
                failures.len()
            ));
        }
        Ok(results)
    }

    /// Streams one node's shard through `POST /sweep`, forwarding each
    /// completed report to the coordinator and requeueing every cell
    /// the stream never answered (death mid-sweep, error lines, or a
    /// non-200) for cell-by-cell retry on other replicas.
    fn stream_group(
        &self,
        node: usize,
        group: &[usize],
        cells: &[ClusterCell],
        event_tx: &mpsc::Sender<(usize, Result<Vec<u8>, String>)>,
        retry_tx: &mpsc::Sender<usize>,
    ) {
        let bodies: Vec<&str> = group.iter().map(|&i| cells[i].body.as_str()).collect();
        let body = format!("{{\"cells\":[{}]}}", bodies.join(","));
        let mut seen = vec![false; group.len()];
        let mut client = self.node_client(node);
        let outcome = client.post_stream_lines("/sweep", &body, |line| {
            // `{"index":<sub>,"report":<run body>}` — error lines and
            // parse failures stay unseen and take the retry path.
            let Some((head, tail)) = line.split_once(",\"report\":") else {
                return;
            };
            let Some(sub) = head
                .strip_prefix("{\"index\":")
                .and_then(|s| s.parse::<usize>().ok())
            else {
                return;
            };
            let Some(report) = tail.strip_suffix('}') else {
                return;
            };
            if let Some(&global) = group.get(sub) {
                seen[sub] = true;
                // Reconstruct the exact `/run` body (trailing newline
                // included) so cluster results are byte-identical to
                // single-node results.
                let mut bytes = report.as_bytes().to_vec();
                bytes.push(b'\n');
                let _ = event_tx.send((global, Ok(bytes)));
            }
        });
        let complete = seen.iter().all(|s| *s);
        match outcome {
            Ok(200) if complete => self.cluster.record_peer_success(node),
            Ok(200) => {}
            _ => self.cluster.record_peer_failure(node),
        }
        let counters = self.cluster.counters();
        for (sub, &global) in group.iter().enumerate() {
            if !seen[sub] {
                counters.retries.fetch_add(1, Ordering::Relaxed);
                let _ = retry_tx.send(global);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Chaos
// ---------------------------------------------------------------------------

/// Fault injected into a running node (`POST /chaos` sets it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaosMode {
    /// No fault: serve normally.
    #[default]
    None,
    /// Answer every request with a typed `500`.
    Error,
    /// Freeze every request until the mode clears (bounded).
    Stall,
    /// Drop the connection mid-request — an in-process `kill -9`.
    Abort,
}

impl ChaosMode {
    /// Stable wire encoding (for the atomic the service stores).
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            ChaosMode::None => 0,
            ChaosMode::Error => 1,
            ChaosMode::Stall => 2,
            ChaosMode::Abort => 3,
        }
    }

    /// Inverse of [`ChaosMode::as_u8`] (unknown values are `None`).
    #[must_use]
    pub fn from_u8(value: u8) -> Self {
        match value {
            1 => ChaosMode::Error,
            2 => ChaosMode::Stall,
            3 => ChaosMode::Abort,
            _ => ChaosMode::None,
        }
    }

    /// The lowercase wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosMode::None => "none",
            ChaosMode::Error => "error",
            ChaosMode::Stall => "stall",
            ChaosMode::Abort => "abort",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(ChaosMode::None),
            "error" => Some(ChaosMode::Error),
            "stall" => Some(ChaosMode::Stall),
            "abort" => Some(ChaosMode::Abort),
            _ => None,
        }
    }
}

/// One scheduled fault: which node, what fault, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Index of the victim node (into the sorted peer list).
    pub victim: usize,
    /// The injected fault.
    pub mode: ChaosMode,
    /// Delay from harness start to injection.
    pub after: Duration,
}

/// The deterministic chaos schedule for a seed: equal seeds give equal
/// (victim, fault, delay) triples, so a failing chaos run reproduces
/// from its seed alone.
///
/// # Panics
///
/// Panics when `nodes` is zero.
#[must_use]
pub fn chaos_plan(seed: u64, nodes: usize) -> ChaosPlan {
    assert!(nodes > 0, "a chaos plan needs at least one node");
    let mut rng = SplitMix64::new(seed ^ RING_TAG);
    ChaosPlan {
        victim: rng.index(nodes),
        mode: [ChaosMode::Abort, ChaosMode::Stall, ChaosMode::Error][rng.index(3)],
        after: Duration::from_millis(300 + rng.below(1500)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn ring_ownership_is_deterministic_and_total() {
        let nodes = names(&["10.0.0.1:1", "10.0.0.2:1", "10.0.0.3:1"]);
        let a = HashRing::new(&nodes, 64);
        let b = HashRing::new(&nodes, 64);
        let mut rng = SplitMix64::new(7);
        let mut owned = [0usize; 3];
        for _ in 0..3000 {
            let key = rng.next_u64();
            let owner = a.owner(key);
            assert_eq!(owner, b.owner(key), "same list, same ring");
            owned[owner] += 1;
        }
        for (node, count) in owned.iter().enumerate() {
            assert!(
                *count > 300,
                "node {node} owns a reasonable share: {owned:?}"
            );
        }
    }

    #[test]
    fn ring_replicas_are_distinct_and_start_at_the_owner() {
        let nodes = names(&["a:1", "b:1", "c:1", "d:1"]);
        let ring = HashRing::new(&nodes, 32);
        let mut rng = SplitMix64::new(11);
        for _ in 0..200 {
            let key = rng.next_u64();
            let order: Vec<usize> = ring.replicas(key).collect();
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], ring.owner(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "every node appears once: {order:?}");
        }
    }

    #[test]
    fn removing_a_node_only_remaps_its_own_keys() {
        let three = names(&["a:1", "b:1", "c:1"]);
        let two = names(&["a:1", "b:1"]);
        let full = HashRing::new(&three, 64);
        let reduced = HashRing::new(&two, 64);
        let mut rng = SplitMix64::new(3);
        let mut moved = 0;
        let mut kept = 0;
        for _ in 0..2000 {
            let key = rng.next_u64();
            let before = full.owner(key);
            let after = reduced.owner(key);
            if before == 2 {
                // c's keys must land somewhere among the survivors.
                assert!(after < 2);
            } else if before == after {
                kept += 1;
            } else {
                moved += 1;
            }
        }
        // Consistent hashing: keys not owned by the removed node stay
        // put (name-keyed points are identical across the two rings).
        assert_eq!(moved, 0, "{kept} kept, {moved} moved");
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_and_back() {
        let breaker = Breaker::new(BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(20),
        });
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(!breaker.record_failure());
        assert!(breaker.allow(), "one failure stays closed");
        assert!(breaker.record_failure(), "second failure trips it");
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow(), "open refuses before the cooldown");

        std::thread::sleep(Duration::from_millis(25));
        assert!(breaker.allow(), "cooldown admits one trial");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.allow(), "only one trial at a time");
        assert!(breaker.record_failure(), "failed trial re-opens");
        assert_eq!(breaker.state(), BreakerState::Open);

        std::thread::sleep(Duration::from_millis(25));
        assert!(breaker.allow());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow());
    }

    #[test]
    fn cluster_membership_is_order_insensitive_and_validated() {
        let forward = Cluster::new(&ClusterConfig {
            peers: names(&["127.0.0.1:19001", "127.0.0.1:19002"]),
            self_addr: Some("127.0.0.1:19001".to_owned()),
            probe_interval: None,
            ..ClusterConfig::default()
        })
        .unwrap();
        let backward = Cluster::new(&ClusterConfig {
            peers: names(&["127.0.0.1:19002", "127.0.0.1:19001"]),
            self_addr: Some("127.0.0.1:19002".to_owned()),
            probe_interval: None,
            ..ClusterConfig::default()
        })
        .unwrap();
        assert_eq!(forward.nodes(), backward.nodes(), "sorted membership");
        assert_eq!(forward.self_index(), Some(0));
        assert_eq!(backward.self_index(), Some(1));
        let mut rng = SplitMix64::new(5);
        for _ in 0..100 {
            let key = rng.next_u64();
            assert_eq!(
                forward.ring().owner(key),
                backward.ring().owner(key),
                "every member agrees on ownership"
            );
        }

        assert!(Cluster::new(&ClusterConfig::default()).is_err(), "empty");
        assert!(
            Cluster::new(&ClusterConfig {
                peers: names(&["127.0.0.1:19001"]),
                self_addr: Some("127.0.0.1:9".to_owned()),
                probe_interval: None,
                ..ClusterConfig::default()
            })
            .is_err(),
            "self must be a member"
        );
    }

    #[test]
    fn route_skips_open_breakers() {
        let cluster = Cluster::new(&ClusterConfig {
            peers: names(&["127.0.0.1:19011", "127.0.0.1:19012", "127.0.0.1:19013"]),
            probe_interval: None,
            breaker: BreakerConfig {
                threshold: 1,
                cooldown: Duration::from_secs(60),
            },
            ..ClusterConfig::default()
        })
        .unwrap();
        let cell = cell_for(Benchmark::Nw, Technique::Baseline, 0.05);
        let owner = cluster.ring().owner(cell.fingerprint);
        assert_eq!(cluster.route(cell.fingerprint, 0), owner);
        cluster.record_peer_failure(owner);
        assert_eq!(cluster.breaker(owner).state(), BreakerState::Open);
        let rerouted = cluster.route(cell.fingerprint, 0);
        assert_ne!(rerouted, owner, "open breaker skips the owner");
        let order: Vec<usize> = cluster.ring().replicas(cell.fingerprint).collect();
        assert_eq!(rerouted, order[1], "…to the next replica in ring order");
        assert_eq!(cluster.counters().breaker_open.load(Ordering::Relaxed), 1);
        assert_eq!(cluster.counters().peer_unhealthy.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn forward_target_is_loop_free() {
        let peers = names(&["127.0.0.1:19021", "127.0.0.1:19022"]);
        let config = |own: &str| ClusterConfig {
            peers: peers.clone(),
            self_addr: Some(own.to_owned()),
            probe_interval: None,
            ..ClusterConfig::default()
        };
        let a = Cluster::new(&config("127.0.0.1:19021")).unwrap();
        let b = Cluster::new(&config("127.0.0.1:19022")).unwrap();
        let mut rng = SplitMix64::new(13);
        for _ in 0..200 {
            let key = rng.next_u64();
            // Exactly one of the two nodes forwards any given key; the
            // other (the owner) serves locally.
            let targets = [a.forward_target(key), b.forward_target(key)];
            assert_eq!(
                targets.iter().filter(|t| t.is_some()).count(),
                1,
                "{targets:?}"
            );
        }
        // A pure client never forwards.
        let client_view = Cluster::new(&ClusterConfig {
            peers: peers.clone(),
            self_addr: None,
            probe_interval: None,
            ..ClusterConfig::default()
        })
        .unwrap();
        assert_eq!(client_view.forward_target(rng.next_u64()), None);
    }

    #[test]
    fn chaos_plan_is_deterministic_per_seed() {
        for seed in 0..50 {
            assert_eq!(chaos_plan(seed, 3), chaos_plan(seed, 3));
            let plan = chaos_plan(seed, 3);
            assert!(plan.victim < 3);
            assert!(plan.mode != ChaosMode::None);
            assert!(plan.after >= Duration::from_millis(300));
            assert!(plan.after < Duration::from_millis(1800));
        }
        assert_ne!(
            (0..50).map(|s| chaos_plan(s, 3).victim).sum::<usize>(),
            0,
            "victims vary across seeds"
        );
    }

    #[test]
    fn chaos_mode_round_trips_names_and_bytes() {
        for mode in [
            ChaosMode::None,
            ChaosMode::Error,
            ChaosMode::Stall,
            ChaosMode::Abort,
        ] {
            assert_eq!(ChaosMode::from_u8(mode.as_u8()), mode);
            assert_eq!(ChaosMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(ChaosMode::from_name("nope"), None);
    }

    #[test]
    fn cell_for_matches_the_server_side_fingerprint() {
        // The client fingerprint must equal what the service computes
        // (which folds in its own job_timeout — excluded from the
        // hash) or routing would degrade to per-cell forwarding.
        let cell = cell_for(Benchmark::Bfs, Technique::WarpedGates, 0.25);
        let with_watchdog = Experiment::new(GatingParams::default())
            .with_scale(0.25)
            .with_job_timeout(Some(Duration::from_secs(600)));
        assert_eq!(
            cell.fingerprint,
            cell_fingerprint(
                &with_watchdog,
                &Benchmark::Bfs.spec(),
                Technique::WarpedGates
            )
        );
        assert!(cell.body.contains("\"scale\":0.25"));
    }
}
