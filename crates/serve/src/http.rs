//! Hand-rolled HTTP/1.1 message framing.
//!
//! Just enough of RFC 9112 for a localhost tool server: request
//! parsing with hard size caps, fixed-length responses, and chunked
//! transfer encoding for the streaming endpoints. Connections are
//! persistent by default ([`Request::keep_alive`] follows the HTTP/1.1
//! rules: persistent unless `Connection: close`, and HTTP/1.0 only
//! with an explicit `Connection: keep-alive`), and every response
//! declares its disposition explicitly so clients can pipeline
//! back-to-back requests over one socket. Responses are always
//! self-delimiting (`Content-Length` or chunked), which is what makes
//! reuse safe.

use std::io::{self, BufRead, Write};

/// Upper bound on one header line (request line included).
pub const MAX_LINE: usize = 8 * 1024;
/// Upper bound on the header count.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on a request body.
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// The path component of the target, e.g. `/trace`.
    pub path: String,
    /// Decoded query parameters, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request after this
    /// one: HTTP/1.1 unless the client sent `Connection: close`,
    /// HTTP/1.0 only with an explicit `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with the given name.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The connection died or timed out mid-request.
    Io(io::Error),
    /// The bytes are not an acceptable HTTP/1.1 request; the `u16` is
    /// the status to answer with (400 or 501), the string the reason.
    Bad(u16, String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "connection error: {e}"),
            HttpError::Bad(status, reason) => write!(f, "bad request ({status}): {reason}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn bad(reason: impl Into<String>) -> HttpError {
    HttpError::Bad(400, reason.into())
}

/// Reads one CRLF- (or bare-LF-) terminated line, capped at
/// [`MAX_LINE`] bytes.
fn read_line(r: &mut impl BufRead) -> Result<String, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match r.read(&mut byte)? {
            0 => {
                if line.is_empty() {
                    // Clean EOF before any byte: the peer just closed.
                    return Err(HttpError::Io(io::ErrorKind::UnexpectedEof.into()));
                }
                return Err(bad("truncated line"));
            }
            _ => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line).map_err(|_| bad("non-UTF-8 header line"));
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Err(bad("header line too long"));
                }
            }
        }
    }
}

/// Decodes `%xx` escapes and `+` in a query component.
fn url_decode(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = b.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(v) => {
                        out.push(v);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reads and parses one request.
///
/// Returns `Ok(None)` on a clean immediate close (the peer connected
/// and hung up, e.g. the server's own shutdown wake-up probe).
///
/// # Errors
///
/// [`HttpError::Io`] for transport trouble, [`HttpError::Bad`] for a
/// malformed or oversized request (answer with its embedded status).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let request_line = match read_line(r) {
        Ok(line) => line,
        Err(HttpError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(bad("malformed request line")),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Bad(501, format!("unsupported {version}")));
    }

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query: Vec<(String, String)> = query_text
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| {
            let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
            (url_decode(k), url_decode(v))
        })
        .collect();

    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let request = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_owned(),
        query,
        headers,
        body: Vec::new(),
        keep_alive: false,
    };
    let connection = request.header("connection").unwrap_or("");
    let mut request = Request {
        keep_alive: if version == "HTTP/1.0" {
            connection.eq_ignore_ascii_case("keep-alive")
        } else {
            !connection.eq_ignore_ascii_case("close")
        },
        ..request
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|te| !te.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Bad(
            501,
            "chunked request bodies are not supported".to_owned(),
        ));
    }
    if let Some(len) = request.header("content-length") {
        let len: usize = len.parse().map_err(|_| bad("malformed content-length"))?;
        if len > MAX_BODY {
            return Err(HttpError::Bad(413, format!("body over {MAX_BODY} bytes")));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        request.body = body;
    }
    Ok(Some(request))
}

/// The canonical reason phrase for the statuses this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn connection_token(keep_alive: bool) -> &'static str {
    if keep_alive {
        "keep-alive"
    } else {
        "close"
    }
}

/// Writes a complete fixed-length response, declaring whether the
/// connection stays open afterwards.
///
/// # Errors
///
/// Propagates any transport error.
pub fn write_response(
    w: &mut (impl Write + ?Sized),
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(w, status, content_type, &[], body, keep_alive)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on a load-shed `503`). Each `(name, value)` pair is emitted after
/// the standard headers.
///
/// # Errors
///
/// Propagates any transport error.
pub fn write_response_with(
    w: &mut (impl Write + ?Sized),
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        connection_token(keep_alive),
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A chunked-transfer-encoding response body writer.
///
/// Write the head with [`ChunkedWriter::begin`], stream any number of
/// [`chunk`](ChunkedWriter::chunk)s, and [`finish`](ChunkedWriter::finish)
/// to emit the terminating zero-length chunk.
pub struct ChunkedWriter<W: Write> {
    w: W,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the body writer.
    ///
    /// # Errors
    ///
    /// Propagates any transport error.
    pub fn begin(mut w: W, status: u16, content_type: &str, keep_alive: bool) -> io::Result<Self> {
        write!(
            w,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            reason(status),
            connection_token(keep_alive),
        )?;
        Ok(ChunkedWriter { w })
    }

    /// Streams one chunk (empty input is skipped: a zero-length chunk
    /// would terminate the body).
    ///
    /// # Errors
    ///
    /// Propagates any transport error.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data)?;
        self.w.write_all(b"\r\n")
    }

    /// Pushes everything buffered so far onto the wire — call between
    /// chunks when the receiver should see results as they complete
    /// (the `/sweep` streaming contract) rather than when the
    /// underlying `BufWriter` happens to fill.
    ///
    /// # Errors
    ///
    /// Propagates any transport error.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Terminates the body and flushes.
    ///
    /// # Errors
    ///
    /// Propagates any transport error.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// Decodes a chunked response body incrementally (client side),
/// handing each chunk to `sink` as soon as it is framed — the consumer
/// of a streaming endpoint sees the first result before the response
/// finishes.
///
/// # Errors
///
/// Returns an error on transport trouble or malformed chunk framing.
pub fn read_chunked_stream(
    r: &mut impl BufRead,
    mut sink: impl FnMut(&[u8]),
) -> Result<(), HttpError> {
    let mut total = 0usize;
    let mut chunk = Vec::new();
    loop {
        let size_line = read_line(r)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| bad(format!("malformed chunk size '{size_line}'")))?;
        if size == 0 {
            // Trailer section: read lines until the blank terminator.
            loop {
                if read_line(r)?.is_empty() {
                    return Ok(());
                }
            }
        }
        total = total.saturating_add(size);
        if total > 64 * 1024 * 1024 {
            return Err(bad("chunked body too large"));
        }
        chunk.resize(size, 0);
        r.read_exact(&mut chunk)?;
        let mut crlf = [0u8; 2];
        r.read_exact(&mut crlf)?;
        if &crlf != b"\r\n" {
            return Err(bad("missing chunk terminator"));
        }
        sink(&chunk);
    }
}

/// Decodes a complete chunked response body (client side).
///
/// # Errors
///
/// Returns an error on transport trouble or malformed chunk framing.
pub fn read_chunked_body(r: &mut impl BufRead) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    read_chunked_stream(r, |chunk| body.extend_from_slice(chunk))?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn parses_a_get_with_query() {
        let req = parse("GET /trace?cell=3&format=perfetto&x=a%20b HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/trace");
        assert_eq!(req.query_param("cell"), Some("3"));
        assert_eq!(req.query_param("format"), Some("perfetto"));
        assert_eq!(req.query_param("x"), Some("a b"));
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /run HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn clean_close_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn keep_alive_follows_http_version_rules() {
        let req = |text: &str| parse(text).unwrap().unwrap();
        assert!(req("GET / HTTP/1.1\r\n\r\n").keep_alive, "1.1 defaults on");
        assert!(!req("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
        assert!(!req("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").keep_alive);
        assert!(
            !req("GET / HTTP/1.0\r\n\r\n").keep_alive,
            "1.0 defaults off"
        );
        assert!(req("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").keep_alive);
    }

    #[test]
    fn two_pipelined_requests_parse_from_one_segment() {
        // Both requests arrive in a single TCP segment; the reader
        // must frame them back to back without losing a byte.
        let wire = "POST /run HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc\
                    GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
        let mut r = BufReader::new(wire.as_bytes());
        let first = read_request(&mut r).unwrap().unwrap();
        assert_eq!(
            (first.method.as_str(), first.path.as_str()),
            ("POST", "/run")
        );
        assert_eq!(first.body, b"abc");
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(read_request(&mut r).unwrap().is_none(), "then clean EOF");
    }

    /// A reader that yields at most `step` bytes per `read` call, so a
    /// request arrives split across many reads (as on a real socket).
    struct Dribble<'a> {
        bytes: &'a [u8],
        step: usize,
    }

    impl io::Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.step.min(self.bytes.len()).min(buf.len());
            buf[..n].copy_from_slice(&self.bytes[..n]);
            self.bytes = &self.bytes[n..];
            Ok(n)
        }
    }

    #[test]
    fn request_split_across_reads_parses_whole() {
        let wire = b"POST /run HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
        for step in [1, 2, 3, 7] {
            let mut r = BufReader::new(Dribble { bytes: wire, step });
            let req = read_request(&mut r).unwrap().unwrap();
            assert_eq!(req.path, "/run");
            assert_eq!(req.body, b"hello world", "step {step}");
        }
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(
            parse("NOT HTTP\r\n\r\n"),
            Err(HttpError::Bad(400, _))
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Bad(501, _))
        ));
        let oversize = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&oversize), Err(HttpError::Bad(413, _))));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::Bad(501, _))
        ));
    }

    #[test]
    fn response_writer_emits_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn response_writer_emits_extra_headers_before_the_body() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "1")],
            b"{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.contains("Retry-After: 1"), "{head}");
        assert_eq!(body, "{}");
    }

    #[test]
    fn chunked_round_trip() {
        let mut wire = Vec::new();
        let mut cw = ChunkedWriter::begin(&mut wire, 200, "application/json", true).unwrap();
        cw.chunk(b"{\"traceEvents\":[").unwrap();
        cw.chunk(b"").unwrap(); // skipped, must not terminate
        cw.chunk(b"]}").unwrap();
        cw.finish().unwrap();

        let text = String::from_utf8(wire.clone()).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("Connection: keep-alive"));
        let body_at = text.find("\r\n\r\n").unwrap() + 4;
        let mut r = BufReader::new(&wire[body_at..]);
        let body = read_chunked_body(&mut r).unwrap();
        assert_eq!(body, b"{\"traceEvents\":[]}");

        // The streaming decoder sees each chunk as framed, in order.
        let mut r = BufReader::new(&wire[body_at..]);
        let mut pieces: Vec<Vec<u8>> = Vec::new();
        read_chunked_stream(&mut r, |c| pieces.push(c.to_vec())).unwrap();
        assert_eq!(pieces, vec![b"{\"traceEvents\":[".to_vec(), b"]}".to_vec()]);
    }
}
