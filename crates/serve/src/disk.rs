//! On-disk persistence for the content-addressed result cache.
//!
//! The in-memory [`ResultCache`](crate::cache::ResultCache) dies with
//! the process; this layer keeps `fingerprint → response bytes`
//! entries on disk so a restarted service comes up warm and a sweep
//! can pre-warm the grid once for every later process.
//!
//! Layout: one file per entry under a directory keyed by
//! [`FINGERPRINT_VERSION`] (`<root>/v<N>/<fingerprint>.bin`). A
//! version bump changes the directory name, so stale entries from an
//! older canonical encoding are simply never seen again — a clean cold
//! start instead of silent key collisions.
//!
//! Entry format (all integers little-endian):
//!
//! ```text
//! "WGC1" | fingerprint u64 | payload_len u64 | payload | digest u64
//! ```
//!
//! where the digest is a [`ConfigHasher`] run over the fingerprint,
//! the length, and the payload. A truncated, torn, or bit-flipped file
//! fails validation, is deleted, and reads as a miss — corruption can
//! degrade the cache but never serve wrong bytes.
//!
//! Writes are **write-behind**: `put` enqueues onto a dedicated writer
//! thread (the request path never waits on the filesystem), which
//! writes `*.tmp` and atomically renames into place. The store is
//! size-capped: least-recently-used entries are evicted both when the
//! directory is scanned at startup (ordered by file mtime) and as the
//! writer pushes the total over budget.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::SystemTime;

use warped_gates::fingerprint::{ConfigHasher, FINGERPRINT_VERSION};

const MAGIC: &[u8; 4] = b"WGC1";
/// Fixed bytes around the payload: magic + fingerprint + len + digest.
const OVERHEAD: usize = 4 + 8 + 8 + 8;
/// Domain tag separating entry digests from every other
/// [`ConfigHasher`] use in the workspace.
const DIGEST_TAG: u64 = 0x6469_736b_6361_6368; // "diskcach"

fn digest(fingerprint: u64, payload: &[u8]) -> u64 {
    let mut h = ConfigHasher::new(DIGEST_TAG);
    h.word(fingerprint).word(payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h.word(u64::from_le_bytes(w));
    }
    h.finish()
}

struct Tracked {
    /// Entry file size on disk (payload + framing).
    len: u64,
    /// Recency stamp; larger is more recent.
    last_used: u64,
}

struct Index {
    entries: HashMap<u64, Tracked>,
    total: u64,
    tick: u64,
    /// Writes enqueued but not yet on disk (flush waits on zero).
    pending: u64,
}

struct Shared {
    dir: PathBuf,
    budget: u64,
    index: Mutex<Index>,
    flushed: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A queued write-behind entry: fingerprint and the bytes to persist.
type PendingWrite = (u64, Arc<Vec<u8>>);

/// The persistent warm cache. See the module docs for format and
/// eviction rules.
pub struct DiskCache {
    shared: Arc<Shared>,
    writer: Option<(Sender<PendingWrite>, JoinHandle<()>)>,
}

impl std::fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCache")
            .field("dir", &self.shared.dir)
            .field("budget", &self.shared.budget)
            .field("bytes", &self.bytes())
            .finish_non_exhaustive()
    }
}

impl DiskCache {
    /// Opens (creating if needed) the store for the current
    /// [`FINGERPRINT_VERSION`] under `root`, scanning existing entries
    /// and evicting the least recently used until `byte_budget` fits.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or scanning the directory.
    pub fn open(root: impl AsRef<Path>, byte_budget: u64) -> io::Result<Self> {
        Self::open_versioned(root, FINGERPRINT_VERSION, byte_budget)
    }

    /// [`open`](Self::open) under an explicit version key (tests use
    /// this to prove a version bump cold-starts cleanly).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or scanning the directory.
    pub fn open_versioned(
        root: impl AsRef<Path>,
        version: u64,
        byte_budget: u64,
    ) -> io::Result<Self> {
        let dir = root.as_ref().join(format!("v{version}"));
        fs::create_dir_all(&dir)?;

        // Scan: adopt every valid-looking entry, oldest-mtime first so
        // the recency stamps make the load-time eviction LRU. Full
        // payload validation happens lazily on `get` — the scan only
        // trusts file names and sizes, so startup stays O(entries).
        let mut found: Vec<(u64, u64, SystemTime)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".bin")) else {
                // Leftover *.tmp from a crash mid-write, or foreign
                // files: sweep them out.
                let _ = fs::remove_file(entry.path());
                continue;
            };
            let Ok(fingerprint) = u64::from_str_radix(stem, 16) else {
                let _ = fs::remove_file(entry.path());
                continue;
            };
            let meta = entry.metadata()?;
            if meta.len() < OVERHEAD as u64 {
                let _ = fs::remove_file(entry.path());
                continue;
            }
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((fingerprint, meta.len(), mtime));
        }
        found.sort_by_key(|(fingerprint, _, mtime)| (*mtime, *fingerprint));

        let mut index = Index {
            entries: HashMap::new(),
            total: 0,
            tick: 0,
            pending: 0,
        };
        for (fingerprint, len, _) in found {
            let last_used = index.tick;
            index.tick += 1;
            index.total += len;
            index
                .entries
                .insert(fingerprint, Tracked { len, last_used });
        }
        let shared = Arc::new(Shared {
            dir,
            budget: byte_budget.max(1),
            index: Mutex::new(index),
            flushed: Condvar::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        });
        shared.evict_over_budget();

        let (tx, rx) = mpsc::channel::<(u64, Arc<Vec<u8>>)>();
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("warped-serve-diskcache".to_owned())
            .spawn(move || {
                for (fingerprint, bytes) in rx {
                    writer_shared.write_entry(fingerprint, &bytes);
                    let mut index = writer_shared.lock();
                    index.pending -= 1;
                    if index.pending == 0 {
                        writer_shared.flushed.notify_all();
                    }
                }
            })?;

        Ok(DiskCache {
            shared,
            writer: Some((tx, writer)),
        })
    }

    /// The directory entries live in (version segment included).
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    /// Reads come back warm so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.shared.hits.load(Ordering::Relaxed)
    }

    /// Reads that found nothing usable on disk so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.shared.misses.load(Ordering::Relaxed)
    }

    /// Entries deleted under byte pressure so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.shared.evictions.load(Ordering::Relaxed)
    }

    /// Bytes currently accounted to entries on disk.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.shared.lock().total
    }

    /// Entries currently on disk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().entries.len()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks `fingerprint` up, validating the entry end to end. A
    /// corrupt or truncated file is deleted and reads as a miss.
    #[must_use]
    pub fn get(&self, fingerprint: u64) -> Option<Vec<u8>> {
        {
            let mut index = self.shared.lock();
            let tick = index.tick;
            match index.entries.get_mut(&fingerprint) {
                Some(tracked) => tracked.last_used = tick,
                None => {
                    drop(index);
                    self.shared.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            index.tick += 1;
        }
        match read_entry(&self.shared.entry_path(fingerprint), fingerprint) {
            Some(payload) => {
                self.shared.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                // Validation failed: drop the entry so the slot heals.
                self.shared.remove(fingerprint);
                self.shared.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Enqueues `bytes` for persistence under `fingerprint`
    /// (write-behind: returns immediately; [`flush`](Self::flush)
    /// waits for the disk).
    pub fn put(&self, fingerprint: u64, bytes: Arc<Vec<u8>>) {
        let Some((tx, _)) = &self.writer else { return };
        {
            let mut index = self.shared.lock();
            if index.entries.contains_key(&fingerprint) {
                return; // already persisted (or queued and indexed)
            }
            index.pending += 1;
        }
        if tx.send((fingerprint, bytes)).is_err() {
            let mut index = self.shared.lock();
            index.pending -= 1;
        }
    }

    /// Blocks until every enqueued write has reached the filesystem.
    pub fn flush(&self) {
        let mut index = self.shared.lock();
        while index.pending > 0 {
            index = self
                .shared
                .flushed
                .wait(index)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for DiskCache {
    fn drop(&mut self) {
        // Closing the channel lets the writer drain and exit; joining
        // guarantees every accepted write is durable before the
        // process (or test) moves on.
        if let Some((tx, handle)) = self.writer.take() {
            drop(tx);
            let _ = handle.join();
        }
    }
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Index> {
        self.index
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn entry_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.bin"))
    }

    fn remove(&self, fingerprint: u64) {
        let mut index = self.lock();
        if let Some(tracked) = index.entries.remove(&fingerprint) {
            index.total -= tracked.len;
        }
        drop(index);
        let _ = fs::remove_file(self.entry_path(fingerprint));
    }

    /// Writes one entry atomically (tmp + rename), then evicts to
    /// budget. Runs on the writer thread only.
    fn write_entry(&self, fingerprint: u64, payload: &[u8]) {
        let path = self.entry_path(fingerprint);
        let tmp = path.with_extension("tmp");
        let len = (payload.len() + OVERHEAD) as u64;
        let write = || -> io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.write_all(&fingerprint.to_le_bytes())?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(payload)?;
            f.write_all(&digest(fingerprint, payload).to_le_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, &path)
        };
        if write().is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        let mut index = self.lock();
        let last_used = index.tick;
        index.tick += 1;
        index.total += len;
        if let Some(old) = index
            .entries
            .insert(fingerprint, Tracked { len, last_used })
        {
            index.total -= old.len;
        }
        drop(index);
        self.evict_over_budget();
    }

    /// Deletes least-recently-used entries until the budget fits.
    fn evict_over_budget(&self) {
        loop {
            let victim = {
                let index = self.lock();
                if index.total <= self.budget {
                    return;
                }
                index
                    .entries
                    .iter()
                    .min_by_key(|(fingerprint, t)| (t.last_used, **fingerprint))
                    .map(|(fingerprint, _)| *fingerprint)
            };
            let Some(fingerprint) = victim else { return };
            self.remove(fingerprint);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Reads and fully validates one entry file; `None` on any mismatch.
fn read_entry(path: &Path, fingerprint: u64) -> Option<Vec<u8>> {
    let mut bytes = Vec::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .ok()?;
    if bytes.len() < OVERHEAD || &bytes[..4] != MAGIC {
        return None;
    }
    let stored_fp = u64::from_le_bytes(bytes[4..12].try_into().ok()?);
    let len = u64::from_le_bytes(bytes[12..20].try_into().ok()?) as usize;
    if stored_fp != fingerprint || bytes.len() != OVERHEAD + len {
        return None;
    }
    let payload = &bytes[20..20 + len];
    let stored_digest = u64::from_le_bytes(bytes[20 + len..].try_into().ok()?);
    if stored_digest != digest(fingerprint, payload) {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("warped_disk_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_across_a_reopen() {
        let root = scratch("roundtrip");
        let payload = Arc::new(b"{\"cycles\":123}\n".to_vec());
        {
            let cache = DiskCache::open(&root, 1 << 20).unwrap();
            assert!(cache.get(7).is_none(), "empty store misses");
            cache.put(7, Arc::clone(&payload));
            cache.flush();
            assert_eq!(cache.get(7).as_deref(), Some(payload.as_slice()));
        }
        // A new process (new DiskCache) sees the same entry.
        let cache = DiskCache::open(&root, 1 << 20).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(7).as_deref(), Some(payload.as_slice()));
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupted_and_truncated_entries_are_rejected_and_deleted() {
        let root = scratch("corrupt");
        let cache = DiskCache::open(&root, 1 << 20).unwrap();
        cache.put(1, Arc::new(b"payload one".to_vec()));
        cache.put(2, Arc::new(b"payload two".to_vec()));
        cache.flush();

        // Flip a payload byte in entry 1; truncate entry 2.
        let p1 = cache.dir().join(format!("{:016x}.bin", 1));
        let mut bytes = fs::read(&p1).unwrap();
        bytes[OVERHEAD - 10] ^= 0x40;
        fs::write(&p1, &bytes).unwrap();
        let p2 = cache.dir().join(format!("{:016x}.bin", 2));
        let bytes = fs::read(&p2).unwrap();
        fs::write(&p2, &bytes[..bytes.len() - 3]).unwrap();

        assert!(cache.get(1).is_none(), "bit flip must not serve");
        assert!(cache.get(2).is_none(), "truncation must not serve");
        assert!(!p1.exists() && !p2.exists(), "bad entries are deleted");
        assert_eq!(cache.len(), 0, "index healed");
        // The slot is writable again.
        cache.put(1, Arc::new(b"fresh".to_vec()));
        cache.flush();
        assert_eq!(cache.get(1).as_deref(), Some(b"fresh".as_slice()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn crash_restart_sweeps_torn_tmps_and_rejects_truncated_entries() {
        let root = scratch("crash");
        let survivor = Arc::new(b"{\"cycles\":42}\n".to_vec());
        let victim_path;
        {
            let cache = DiskCache::open(&root, 1 << 20).unwrap();
            cache.put(0xA, Arc::clone(&survivor));
            cache.put(0xB, Arc::new(b"about to be torn mid-write".to_vec()));
            cache.flush();
            victim_path = cache.dir().join(format!("{:016x}.bin", 0xB_u64));
        }
        // Emulate a crash mid-write-behind: a writer killed between
        // tmp-create and rename leaves an orphaned *.tmp, and a torn
        // write leaves entry B short of its framed length.
        let dir = victim_path.parent().unwrap().to_path_buf();
        let tmp = dir.join(format!("{:016x}.bin.tmp", 0xC_u64));
        fs::write(&tmp, b"WGC1 half a frame").unwrap();
        let bytes = fs::read(&victim_path).unwrap();
        fs::write(&victim_path, &bytes[..bytes.len() - 5]).unwrap();

        // The restart must serve neither artifact of the crash — and
        // still serve the intact entry.
        let cache = DiskCache::open(&root, 1 << 20).unwrap();
        assert!(!tmp.exists(), "orphaned tmp is swept on startup");
        assert!(
            cache.get(0xC).is_none(),
            "the torn tmp never became an entry"
        );
        assert!(cache.get(0xB).is_none(), "truncated entry is not served");
        assert!(!victim_path.exists(), "…and is deleted, not left to rot");
        assert_eq!(
            cache.get(0xA).as_deref(),
            Some(survivor.as_slice()),
            "intact entries survive the crash"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn version_mismatch_is_a_clean_cold_start() {
        let root = scratch("version");
        {
            let old = DiskCache::open_versioned(&root, FINGERPRINT_VERSION - 1, 1 << 20).unwrap();
            old.put(9, Arc::new(b"old encoding".to_vec()));
            old.flush();
        }
        let cache = DiskCache::open(&root, 1 << 20).unwrap();
        assert!(cache.is_empty(), "other-version entries are invisible");
        assert!(cache.get(9).is_none());
        // The old directory is untouched (a rollback still finds it).
        let old = DiskCache::open_versioned(&root, FINGERPRINT_VERSION - 1, 1 << 20).unwrap();
        assert_eq!(old.get(9).as_deref(), Some(b"old encoding".as_slice()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn eviction_caps_bytes_at_runtime_and_on_load() {
        let root = scratch("evict");
        let payload = vec![0u8; 100];
        {
            let cache = DiskCache::open(&root, 400).unwrap();
            for fingerprint in 0..6u64 {
                cache.put(fingerprint, Arc::new(payload.clone()));
                cache.flush(); // deterministic write order → LRU by key
            }
            assert!(cache.bytes() <= 400, "runtime budget: {}", cache.bytes());
            assert!(cache.evictions() >= 3);
            assert!(cache.get(0).is_none(), "oldest evicted");
            assert!(cache.get(5).is_some(), "newest survives");
        }
        // Reopen with a tighter budget: load-time eviction trims again.
        let cache = DiskCache::open(&root, 150).unwrap();
        assert!(cache.bytes() <= 150, "load budget: {}", cache.bytes());
        assert_eq!(cache.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn leftover_tmp_files_are_swept_on_open() {
        let root = scratch("tmpsweep");
        let dir = root.join(format!("v{FINGERPRINT_VERSION}"));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("0000000000000007.tmp"), b"torn").unwrap();
        fs::write(dir.join("not-an-entry"), b"junk").unwrap();
        let cache = DiskCache::open(&root, 1 << 20).unwrap();
        assert!(cache.is_empty());
        assert!(!dir.join("0000000000000007.tmp").exists());
        assert!(!dir.join("not-an-entry").exists());
        let _ = fs::remove_dir_all(&root);
    }
}
