//! Request routing and the typed endpoints.
//!
//! The [`Service`] is transport-agnostic: it takes a parsed
//! [`Request`] and a byte sink, so the same code path serves a real
//! TCP connection, the in-process [`client`](crate::client), and the
//! unit tests below (which run against plain `Vec<u8>` sinks, no
//! sockets).
//!
//! Endpoints:
//!
//! * `GET /healthz` — liveness probe, `ok\n`.
//! * `GET /metrics` — counter exposition (see [`crate::metrics`]).
//! * `POST /run` — run one benchmark × technique cell; the response is
//!   the canonical report JSON, content-addressed by
//!   [`cell_fingerprint`] and served through the single-flight cache.
//! * `GET /grid` — the committed `bench_grid.json`
//!   (`?regenerate=1&scale=<f>` re-sweeps it first).
//! * `GET /trace?cell=<i>` — replay one grid cell with telemetry and
//!   stream its Perfetto trace (`&format=rollup` for per-epoch JSONL)
//!   with chunked transfer encoding.
//! * `POST /shutdown` — graceful stop; in-flight work drains first.
//!
//! Fault isolation: `/run` simulations execute under `catch_unwind`
//! with the configured wall-clock watchdog, so a panicking or hung
//! cell answers `500` with a typed error body and the server lives on.

use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use warped_bench::grid::GridTable;
use warped_bench::sweep::{self, SweepConfig};
use warped_gates::fingerprint::cell_fingerprint;
use warped_gates::{runner, Experiment, Technique, TechniqueRun};
use warped_gating::GatingParams;
use warped_isa::UnitType;
use warped_sim::parallel::{panic_message, worker_count};
use warped_telemetry::{perfetto, rollup, Recorder, RecorderConfig};
use warped_workloads::Benchmark;

use crate::cache::ResultCache;
use crate::http::{write_response, ChunkedWriter, Request};
use crate::json::{self, JsonValue};
use crate::metrics::Metrics;

/// Everything the service needs to know, transport aside.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Where `bench_grid.json` lives (served by `/grid`).
    pub grid_path: PathBuf,
    /// Byte budget for the result cache.
    pub cache_bytes: usize,
    /// Wall-clock watchdog per `/run` simulation.
    pub job_timeout: Option<Duration>,
    /// Workload scale for `/trace` replays (full-scale traces are
    /// hundreds of MB; the default keeps a stream interactive).
    pub trace_scale: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            grid_path: PathBuf::from("results/bench_grid.json"),
            cache_bytes: 64 << 20,
            job_timeout: Some(Duration::from_secs(600)),
            trace_scale: 0.1,
        }
    }
}

/// What the connection loop should do after a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handled {
    /// Close the connection, keep serving.
    Normal,
    /// The client asked the server to stop.
    ShutdownRequested,
}

/// The routing core. Share behind an `Arc`; every method takes `&self`.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    /// The content-addressed result cache.
    pub cache: ResultCache,
    /// Service counters.
    pub metrics: Metrics,
    /// Serialises `/grid?regenerate=1` sweeps (they share an out-dir).
    regen: Mutex<()>,
}

/// A typed error body: `{"error":{"kind":...,"message":...}}`.
fn error_body(kind: &str, message: &str) -> Vec<u8> {
    format!(
        "{{\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}\n",
        json::escape(kind),
        json::escape(message)
    )
    .into_bytes()
}

/// Case/space/dash/underscore-insensitive technique lookup, so
/// `warped-gates`, `Warped Gates`, and `WARPED_GATES` all resolve.
fn technique_from_name(name: &str) -> Option<Technique> {
    let slug = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = slug(name);
    Technique::ALL
        .into_iter()
        .find(|t| slug(t.name()) == wanted || slug(&format!("{t:?}")) == wanted)
}

/// A validated `/run` request.
struct RunRequest {
    benchmark: Benchmark,
    technique: Technique,
    scale: f64,
    params: GatingParams,
}

impl RunRequest {
    /// Parses and validates a request body. Unknown keys are rejected
    /// so a typo cannot silently fall back to a default.
    fn parse(body: &[u8]) -> Result<RunRequest, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        for key in doc.keys() {
            if !matches!(
                key,
                "benchmark" | "technique" | "scale" | "idle_detect" | "bet" | "wakeup_delay"
            ) {
                return Err(format!("unknown field \"{key}\""));
            }
        }
        let str_field = |name: &str| -> Result<&str, String> {
            doc.get(name)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("missing or non-string field \"{name}\""))
        };
        let benchmark_name = str_field("benchmark")?;
        let benchmark = Benchmark::from_name(benchmark_name)
            .ok_or_else(|| format!("unknown benchmark \"{benchmark_name}\""))?;
        let technique_name = str_field("technique")?;
        let technique = technique_from_name(technique_name)
            .ok_or_else(|| format!("unknown technique \"{technique_name}\""))?;
        let scale = match doc.get("scale") {
            None => 1.0,
            Some(v) => v
                .as_f64()
                .filter(|s| *s > 0.0 && *s <= 1.0)
                .ok_or_else(|| "\"scale\" must be a number in (0,1]".to_owned())?,
        };
        let mut params = GatingParams::default();
        for (name, slot) in [
            ("idle_detect", &mut params.idle_detect as &mut u32),
            ("bet", &mut params.bet),
            ("wakeup_delay", &mut params.wakeup_delay),
        ] {
            if let Some(v) = doc.get(name) {
                *slot = v
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("\"{name}\" must be a non-negative integer"))?;
            }
        }
        // Deliberately NOT validated here: out-of-range gating
        // parameters (e.g. bet = 0) panic inside the experiment and
        // exercise the 500 fault-isolation path, like any other cell
        // crash.
        Ok(RunRequest {
            benchmark,
            technique,
            scale,
            params,
        })
    }
}

/// Renders the canonical report JSON for one completed run. Field
/// order is fixed and floats use fixed precision, so the bytes are a
/// pure function of the run — the property the content-addressed cache
/// keys on.
fn render_run(req: &RunRequest, fingerprint: u64, run: &TechniqueRun) -> Vec<u8> {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{\"benchmark\":\"{}\",\"technique\":\"{}\",\"scale\":{},\
         \"params\":{{\"idle_detect\":{},\"bet\":{},\"wakeup_delay\":{}}},\
         \"fingerprint\":\"{fingerprint:016x}\",\
         \"cycles\":{},\"ff_cycles\":{},\"timed_out\":{},\
         \"instructions\":{},\"ipc\":{:.6},\"gating\":{{",
        json::escape(req.benchmark.name()),
        json::escape(req.technique.name()),
        req.scale,
        req.params.idle_detect,
        req.params.bet,
        req.params.wakeup_delay,
        run.cycles,
        run.stats.fast_forwarded_cycles,
        run.timed_out,
        run.stats.instructions(),
        run.stats.ipc(),
    ));
    for (i, unit) in [UnitType::Int, UnitType::Fp, UnitType::Sfu, UnitType::Ldst]
        .into_iter()
        .enumerate()
    {
        let g = run.gating_of(unit);
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{unit}\":{{\"gate_events\":{},\"wakeups\":{},\"critical_wakeups\":{},\
             \"gated_cycles\":{},\"compensated_cycles\":{},\"uncompensated_cycles\":{},\
             \"wakeup_cycles\":{},\"premature_wakeups\":{},\"demand_blocked_cycles\":{}}}",
            g.gate_events,
            g.wakeups,
            g.critical_wakeups,
            g.gated_cycles,
            g.compensated_cycles,
            g.uncompensated_cycles,
            g.wakeup_cycles,
            g.premature_wakeups,
            g.demand_blocked_cycles,
        ));
    }
    out.push_str("}}\n");
    out.into_bytes()
}

impl Service {
    /// A service over the given configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        // Shard count scales with the worker pool: enough that
        // concurrent distinct cells rarely contend on one lock.
        let shards = (worker_count() * 2).next_power_of_two();
        Service {
            cache: ResultCache::new(shards, config.cache_bytes),
            metrics: Metrics::default(),
            regen: Mutex::new(()),
            config,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Routes one request and writes the complete response.
    ///
    /// # Errors
    ///
    /// Returns transport errors only; application-level trouble is
    /// answered in-band with a typed error body.
    pub fn handle(&self, req: &Request, out: &mut dyn Write) -> io::Result<Handled> {
        self.metrics
            .requests
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let handled = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                self.respond(out, 200, "text/plain; charset=utf-8", b"ok\n")?;
                Handled::Normal
            }
            ("GET", "/metrics") => {
                let page = self.metrics.render(&self.cache);
                self.respond(out, 200, "text/plain; charset=utf-8", page.as_bytes())?;
                Handled::Normal
            }
            ("POST", "/run") => {
                self.run(req, out)?;
                Handled::Normal
            }
            ("GET", "/grid") => {
                self.grid(req, out)?;
                Handled::Normal
            }
            ("GET", "/trace") => {
                self.trace(req, out)?;
                Handled::Normal
            }
            ("POST", "/shutdown") => {
                self.respond(out, 200, "application/json", b"{\"shutting_down\":true}\n")?;
                Handled::ShutdownRequested
            }
            (_, "/healthz" | "/metrics" | "/run" | "/grid" | "/trace" | "/shutdown") => {
                self.respond(
                    out,
                    405,
                    "application/json",
                    &error_body(
                        "method_not_allowed",
                        &format!("{} not allowed here", req.method),
                    ),
                )?;
                Handled::Normal
            }
            (_, path) => {
                self.respond(
                    out,
                    404,
                    "application/json",
                    &error_body("not_found", &format!("no route for {path}")),
                )?;
                Handled::Normal
            }
        };
        Ok(handled)
    }

    fn respond(
        &self,
        out: &mut dyn Write,
        status: u16,
        content_type: &str,
        body: &[u8],
    ) -> io::Result<()> {
        self.metrics.count_status(status);
        write_response(out, status, content_type, body)
    }

    /// `POST /run`: validate, fingerprint, serve through the
    /// single-flight cache, fault-isolate the simulation.
    fn run(&self, req: &Request, out: &mut dyn Write) -> io::Result<()> {
        let run_req = match RunRequest::parse(&req.body) {
            Ok(r) => r,
            Err(message) => {
                return self.respond(
                    out,
                    400,
                    "application/json",
                    &error_body("bad_request", &message),
                );
            }
        };
        // Constructing the experiment validates the gating parameters,
        // which panics on out-of-range values (e.g. bet = 0) — fault
        // isolation starts here, not at the simulation.
        let spec = run_req.benchmark.spec();
        let built = catch_unwind(AssertUnwindSafe(|| {
            let experiment = Experiment::new(run_req.params)
                .with_scale(run_req.scale)
                .with_job_timeout(self.config.job_timeout);
            let fingerprint = cell_fingerprint(&experiment, &spec, run_req.technique);
            (experiment, fingerprint)
        }));
        let (experiment, fingerprint) = match built {
            Ok(pair) => pair,
            Err(payload) => {
                self.metrics
                    .panicked_cells
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return self.respond(
                    out,
                    500,
                    "application/json",
                    &error_body("panic", &panic_message(payload.as_ref())),
                );
            }
        };

        let (result, _outcome) = self.cache.get_or_compute(fingerprint, || {
            let _guard = self.metrics.job_started();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                experiment.run(&spec, run_req.technique)
            }));
            match outcome {
                Err(payload) => {
                    self.metrics
                        .panicked_cells
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Err(format!("panic\u{1f}{}", panic_message(payload.as_ref())))
                }
                Ok(run) if run.timed_out => {
                    self.metrics
                        .timed_out_cells
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Err(format!(
                        "timeout\u{1f}cell exceeded the wall-clock budget ({:?})",
                        self.config.job_timeout
                    ))
                }
                Ok(run) => {
                    self.metrics.record_core_counters(&run.stats);
                    Ok(render_run(&run_req, fingerprint, &run))
                }
            }
        });

        match result {
            Ok(bytes) => self.respond(out, 200, "application/json", &bytes),
            Err(tagged) => {
                let (kind, message) = tagged.split_once('\u{1f}').unwrap_or(("panic", &tagged));
                self.respond(out, 500, "application/json", &error_body(kind, message))
            }
        }
    }

    /// `GET /grid`: the committed sweep table, optionally regenerated.
    fn grid(&self, req: &Request, out: &mut dyn Write) -> io::Result<()> {
        if req.query_param("regenerate") == Some("1") {
            let scale = match req.query_param("scale").map(str::parse::<f64>) {
                None => 1.0,
                Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
                _ => {
                    return self.respond(
                        out,
                        400,
                        "application/json",
                        &error_body("bad_request", "\"scale\" must be a number in (0,1]"),
                    );
                }
            };
            let out_dir = self
                .config
                .grid_path
                .parent()
                .map_or_else(|| PathBuf::from("."), PathBuf::from);
            let _serialised = self.regen.lock().expect("regen lock poisoned");
            let mut sweep_config = SweepConfig::new(out_dir, worker_count());
            sweep_config.scale = scale;
            sweep_config.quiet = true;
            match sweep::run(&sweep_config) {
                Ok(summary) if summary.ok() => {}
                Ok(summary) => {
                    return self.respond(
                        out,
                        500,
                        "application/json",
                        &error_body(
                            "sweep_failed",
                            &format!("{} grid cells failed", summary.failures.len()),
                        ),
                    );
                }
                Err(e) => {
                    return self.respond(
                        out,
                        500,
                        "application/json",
                        &error_body("io", &e.to_string()),
                    );
                }
            }
        }
        match std::fs::read(&self.config.grid_path) {
            Ok(bytes) => {
                // Validate before serving: a torn or foreign file must
                // not masquerade as a grid.
                if let Err(e) = GridTable::parse(&String::from_utf8_lossy(&bytes)) {
                    return self.respond(
                        out,
                        500,
                        "application/json",
                        &error_body("bad_grid", &e.to_string()),
                    );
                }
                self.respond(out, 200, "application/json", &bytes)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.respond(
                out,
                404,
                "application/json",
                &error_body(
                    "no_grid",
                    &format!(
                        "{} not found; POST /grid?regenerate=1 or run the sweep binary",
                        self.config.grid_path.display()
                    ),
                ),
            ),
            Err(e) => self.respond(
                out,
                500,
                "application/json",
                &error_body("io", &e.to_string()),
            ),
        }
    }

    /// `GET /trace?cell=<i>[&format=perfetto|rollup][&scale=<f>]`:
    /// replay one grid cell with telemetry and stream the export with
    /// chunked transfer encoding.
    fn trace(&self, req: &Request, out: &mut dyn Write) -> io::Result<()> {
        let jobs = runner::full_grid();
        let cell = match req.query_param("cell").map(str::parse::<usize>) {
            Some(Ok(i)) if i < jobs.len() => i,
            _ => {
                return self.respond(
                    out,
                    400,
                    "application/json",
                    &error_body(
                        "bad_request",
                        &format!("\"cell\" must be a grid index below {}", jobs.len()),
                    ),
                );
            }
        };
        let scale = match req.query_param("scale").map(str::parse::<f64>) {
            None => self.config.trace_scale,
            Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
            _ => {
                return self.respond(
                    out,
                    400,
                    "application/json",
                    &error_body("bad_request", "\"scale\" must be a number in (0,1]"),
                );
            }
        };
        let format = req.query_param("format").unwrap_or("perfetto");
        if format != "perfetto" && format != "rollup" {
            return self.respond(
                out,
                400,
                "application/json",
                &error_body("bad_request", "\"format\" must be perfetto or rollup"),
            );
        }

        let (spec, technique) = &jobs[cell];
        let label = sweep::cell_label(&jobs[cell]);
        let recorder = Recorder::new(RecorderConfig {
            capacity: 1 << 20,
            epoch_len: 1000,
        });
        let _guard = self.metrics.job_started();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let experiment = Experiment::paper_defaults()
                .with_scale(scale)
                .with_job_timeout(self.config.job_timeout)
                .with_telemetry(Some(recorder.clone()));
            experiment.run(spec, *technique)
        }));
        let run = match outcome {
            Ok(run) => run,
            Err(payload) => {
                self.metrics
                    .panicked_cells
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return self.respond(
                    out,
                    500,
                    "application/json",
                    &error_body("panic", &panic_message(payload.as_ref())),
                );
            }
        };

        self.metrics.record_core_counters(&run.stats);

        // Reassemble the log through the bounded-chunk drain (the same
        // incremental path the timeline binary uses).
        let mut events = Vec::new();
        for chunk in recorder.drain_chunks(64 * 1024) {
            events.extend(chunk);
        }
        let mut log = recorder.take();
        log.events = events;

        self.metrics.count_status(200);
        match format {
            "perfetto" => {
                let title = format!("{label} @ scale {scale}");
                let trace = perfetto::render(&log, run.stats.layout, &title);
                let mut cw = ChunkedWriter::begin(out, 200, "application/json")?;
                for piece in trace.as_bytes().chunks(64 * 1024) {
                    cw.chunk(piece)?;
                }
                cw.finish()
            }
            _ => {
                let rows = rollup::rows(&log);
                let mut cw = ChunkedWriter::begin(out, 200, "application/jsonl")?;
                for row in &rows {
                    cw.chunk(row.to_json().as_bytes())?;
                    cw.chunk(b"\n")?;
                }
                cw.finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        let (path, query_text) = path.split_once('?').unwrap_or((path, ""));
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: query_text
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| {
                    let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                    (k.to_owned(), v.to_owned())
                })
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            body: body.as_bytes().to_vec(),
            method: "POST".to_owned(),
            ..get(path)
        }
    }

    fn quick_service() -> Service {
        Service::new(ServiceConfig {
            trace_scale: 0.05,
            ..ServiceConfig::default()
        })
    }

    fn dispatch(service: &Service, req: &Request) -> (u16, String, Handled) {
        let mut wire = Vec::new();
        let handled = service.handle(req, &mut wire).unwrap();
        let text = String::from_utf8_lossy(&wire).into_owned();
        let status: u16 = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body, handled)
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let service = quick_service();
        let (status, body, _) = dispatch(&service, &get("/healthz"));
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body, _) = dispatch(&service, &get("/metrics"));
        assert_eq!(status, 200);
        assert!(body.contains("warped_serve_requests_total 2"));
    }

    #[test]
    fn unknown_route_is_404_and_wrong_method_is_405() {
        let service = quick_service();
        let (status, body, _) = dispatch(&service, &get("/nope"));
        assert_eq!(status, 404);
        assert!(body.contains("not_found"));
        let (status, body, _) = dispatch(&service, &get("/run"));
        assert_eq!(status, 405);
        assert!(body.contains("method_not_allowed"));
    }

    #[test]
    fn run_endpoint_caches_identical_requests() {
        let service = quick_service();
        let body = "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05}";
        let (status, first, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200, "{first}");
        assert!(first.contains("\"benchmark\":\"nw\""));
        assert!(first.contains("\"cycles\":"));
        assert!(first.contains("\"fingerprint\":\""));
        let (status, second, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200);
        assert_eq!(first, second, "cached bytes are identical");
        assert_eq!(service.cache.misses(), 1);
        assert_eq!(service.cache.hits(), 1);
        // The fresh simulation (and only it — the hit re-served bytes)
        // folded its event-core counters into the service totals.
        let events = service
            .metrics
            .events_dispatched
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(events > 0, "fresh run must report dispatched events");
        let (status, page, _) = dispatch(&service, &get("/metrics"));
        assert_eq!(status, 200);
        assert!(page.contains(&format!(
            "warped_serve_sim_events_dispatched_total {events}"
        )));
    }

    #[test]
    fn run_endpoint_rejects_malformed_and_unknown_inputs() {
        let service = quick_service();
        for (body, want) in [
            ("{not json", "bad_request"),
            ("{\"technique\":\"baseline\"}", "missing or non-string"),
            (
                "{\"benchmark\":\"nope\",\"technique\":\"baseline\"}",
                "unknown benchmark",
            ),
            (
                "{\"benchmark\":\"nw\",\"technique\":\"nope\"}",
                "unknown technique",
            ),
            (
                "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":7}",
                "(0,1]",
            ),
            (
                "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"typo\":1}",
                "unknown field",
            ),
        ] {
            let (status, response, _) = dispatch(&service, &post("/run", body));
            assert_eq!(status, 400, "{body} should be rejected");
            assert!(response.contains(want), "{body}: {response}");
        }
        assert_eq!(service.cache.misses(), 0, "no simulation ran");
    }

    #[test]
    fn panicking_cell_answers_500_with_a_typed_body() {
        let service = quick_service();
        // bet = 0 fails GatingParams validation inside the run.
        let body = "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05,\"bet\":0}";
        let (status, response, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 500, "{response}");
        assert!(response.contains("\"kind\":\"panic\""), "{response}");
        assert_eq!(
            service
                .metrics
                .panicked_cells
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // Parameter validation fails before the cache is consulted, so
        // nothing was cached and a retry fails identically.
        let (status, _, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 500);
        assert_eq!(service.cache.misses(), 0);
    }

    #[test]
    fn shutdown_is_signalled_to_the_caller() {
        let service = quick_service();
        let (status, body, handled) = dispatch(&service, &post("/shutdown", ""));
        assert_eq!(status, 200);
        assert!(body.contains("shutting_down"));
        assert_eq!(handled, Handled::ShutdownRequested);
    }

    #[test]
    fn trace_streams_chunked_perfetto_and_rollup() {
        let service = quick_service();
        let (status, body, _) = dispatch(&service, &get("/trace?cell=0&scale=0.05"));
        assert_eq!(status, 200);
        assert!(body.contains("traceEvents"), "{body:.200}");
        assert!(body.ends_with("0\r\n\r\n"), "chunked terminator");

        let (status, body, _) = dispatch(&service, &get("/trace?cell=0&scale=0.05&format=rollup"));
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\":0"), "{body:.200}");

        let (status, _, _) = dispatch(&service, &get("/trace?cell=999"));
        assert_eq!(status, 400);
        let (status, _, _) = dispatch(&service, &get("/trace"));
        assert_eq!(status, 400);
        let (status, _, _) = dispatch(&service, &get("/trace?cell=0&format=nope"));
        assert_eq!(status, 400);
    }

    #[test]
    fn grid_serves_the_committed_table_or_404s() {
        let missing = Service::new(ServiceConfig {
            grid_path: PathBuf::from("/nonexistent/bench_grid.json"),
            ..ServiceConfig::default()
        });
        let (status, body, _) = dispatch(&missing, &get("/grid"));
        assert_eq!(status, 404);
        assert!(body.contains("no_grid"));

        let committed =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_grid.json");
        if committed.exists() {
            let service = Service::new(ServiceConfig {
                grid_path: committed,
                ..ServiceConfig::default()
            });
            let (status, body, _) = dispatch(&service, &get("/grid"));
            assert_eq!(status, 200);
            assert!(body.contains("\"title\":\"bench grid\""));
        }
    }

    #[test]
    fn run_report_json_parses_and_matches_a_direct_run() {
        let service = quick_service();
        let body = "{\"benchmark\":\"hotspot\",\"technique\":\"warped-gates\",\"scale\":0.05}";
        let (status, response, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200);
        let doc = json::parse(response.trim_end()).unwrap();
        let direct = Experiment::paper_defaults()
            .with_scale(0.05)
            .run(&Benchmark::Hotspot.spec(), Technique::WarpedGates);
        assert_eq!(
            doc.get("cycles").unwrap().as_u64(),
            Some(direct.cycles),
            "service runs are bit-identical to direct runs"
        );
        assert_eq!(
            doc.get("ff_cycles").unwrap().as_u64(),
            Some(direct.stats.fast_forwarded_cycles)
        );
        assert_eq!(
            doc.get("gating")
                .unwrap()
                .get("INT")
                .unwrap()
                .get("gate_events")
                .unwrap()
                .as_u64(),
            Some(direct.gating_of(UnitType::Int).gate_events)
        );
    }
}
