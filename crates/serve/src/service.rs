//! Request routing and the typed endpoints.
//!
//! The [`Service`] is transport-agnostic: it takes a parsed
//! [`Request`] and a byte sink, so the same code path serves a real
//! TCP connection, the in-process [`client`](crate::client), and the
//! unit tests below (which run against plain `Vec<u8>` sinks, no
//! sockets).
//!
//! Endpoints:
//!
//! * `GET /healthz` — liveness probe, `ok\n`.
//! * `GET /metrics` — counter exposition (see [`crate::metrics`]).
//! * `POST /run` — run one benchmark × technique cell; the response is
//!   the canonical report JSON, content-addressed by
//!   [`cell_fingerprint`] and served through the single-flight cache.
//! * `POST /sweep` — a batch of cells (`{"cells":[...]}` or a bare
//!   array); every cell goes through the same single-flight cache and
//!   results stream back as chunked JSONL in **completion order**, so
//!   overlapping batches dedupe work and the client sees the first
//!   result before the last cell has even started.
//! * `GET /grid` — the committed `bench_grid.json`
//!   (`?regenerate=1&scale=<f>` re-sweeps it first).
//! * `GET /trace?cell=<i>` — replay one grid cell with telemetry and
//!   stream its Perfetto trace (`&format=rollup` for per-epoch JSONL)
//!   with chunked transfer encoding.
//! * `POST /shutdown` — graceful stop; in-flight work drains first.
//!
//! Result lookups go memory cache → disk cache → simulate: when
//! [`ServiceConfig::disk_dir`] is set, every fresh result is persisted
//! write-behind by [`crate::disk::DiskCache`], so a restart comes up
//! warm and a completed sweep serves the whole grid with zero
//! simulations.
//!
//! Fault isolation: `/run` simulations execute under `catch_unwind`
//! with the configured wall-clock watchdog, so a panicking or hung
//! cell answers `500` with a typed error body and the server lives on.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use warped_bench::grid::GridTable;
use warped_bench::sweep::{self, SweepConfig};
use warped_gates::fingerprint::{cell_fingerprint, trace_cell_fingerprint};
use warped_gates::{runner, Experiment, Technique, TechniqueRun};
use warped_gating::GatingParams;
use warped_isa::UnitType;
use warped_sim::parallel::{panic_message, worker_count};
use warped_telemetry::{perfetto, rollup, Recorder, RecorderConfig};
use warped_trace::TraceWorkload;
use warped_workloads::Benchmark;

use crate::cache::{Outcome, ResultCache};
use crate::cluster::{ChaosMode, Cluster, ClusterConfig, FORWARDED_HEADER};
use crate::disk::DiskCache;
use crate::http::{write_response, ChunkedWriter, Request};
use crate::json::{self, JsonValue};
use crate::metrics::Metrics;

/// Everything the service needs to know, transport aside.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Where `bench_grid.json` lives (served by `/grid`).
    pub grid_path: PathBuf,
    /// Byte budget for the result cache.
    pub cache_bytes: usize,
    /// Wall-clock watchdog per `/run` simulation.
    pub job_timeout: Option<Duration>,
    /// Workload scale for `/trace` replays (full-scale traces are
    /// hundreds of MB; the default keeps a stream interactive).
    pub trace_scale: f64,
    /// Root directory for the persistent warm cache; `None` keeps the
    /// cache memory-only.
    pub disk_dir: Option<PathBuf>,
    /// Byte budget for the on-disk cache.
    pub disk_cache_bytes: u64,
    /// Hard cap on cells per `/sweep` batch.
    pub max_sweep_cells: usize,
    /// Cluster membership; `None` runs a standalone node.
    pub cluster: Option<ClusterConfig>,
    /// Directory of captured `*.wgt1` workload traces served under
    /// `trace_ref` cell references; `None` disables the corpus.
    pub trace_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            grid_path: PathBuf::from("results/bench_grid.json"),
            cache_bytes: 64 << 20,
            job_timeout: Some(Duration::from_secs(600)),
            trace_scale: 0.1,
            disk_dir: None,
            disk_cache_bytes: 256 << 20,
            max_sweep_cells: 4096,
            cluster: None,
            trace_dir: None,
        }
    }
}

/// What the connection loop should do after a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Handled {
    /// Close the connection, keep serving.
    Normal,
    /// The client asked the server to stop.
    ShutdownRequested,
}

/// The routing core. Share behind an `Arc`; every method takes `&self`.
#[derive(Debug)]
pub struct Service {
    config: ServiceConfig,
    /// The content-addressed result cache.
    pub cache: ResultCache,
    /// The persistent warm cache, when [`ServiceConfig::disk_dir`] is
    /// set and the directory opened cleanly.
    pub disk: Option<DiskCache>,
    /// Service counters.
    pub metrics: Metrics,
    /// Serialises `/grid?regenerate=1` sweeps (they share an out-dir).
    regen: Mutex<()>,
    /// The cluster view when cluster mode is armed (set once, either
    /// from the config or via [`Service::arm_cluster`]).
    cluster: OnceLock<Cluster>,
    /// The injected fault mode (a [`ChaosMode`] as its wire byte).
    chaos: AtomicU8,
    /// The captured-trace corpus, keyed by each trace's *header* name
    /// (not its file name) — loaded once at startup.
    traces: BTreeMap<String, Arc<TraceWorkload>>,
}

/// A typed error body: `{"error":{"kind":...,"message":...}}`.
fn error_body(kind: &str, message: &str) -> Vec<u8> {
    format!(
        "{{\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}\n",
        json::escape(kind),
        json::escape(message)
    )
    .into_bytes()
}

/// Case/space/dash/underscore-insensitive technique lookup, so
/// `warped-gates`, `Warped Gates`, and `WARPED_GATES` all resolve.
fn technique_from_name(name: &str) -> Option<Technique> {
    let slug = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = slug(name);
    Technique::ALL
        .into_iter()
        .find(|t| slug(t.name()) == wanted || slug(&format!("{t:?}")) == wanted)
}

/// What a cell simulates: a synthetic benchmark from the catalog, or
/// a captured WGT1 trace named by its header (resolved against the
/// corpus loaded at startup *before* any work begins, so an unknown
/// name is a 400, not a mid-batch fault).
#[derive(Debug, Clone, PartialEq, Eq)]
enum WorkloadRef {
    Benchmark(Benchmark),
    Trace(String),
}

/// A validated `/run` request.
struct RunRequest {
    workload: WorkloadRef,
    technique: Technique,
    scale: f64,
    params: GatingParams,
    /// Arm the cycle-accurate L1/L2 hierarchy (default geometry)
    /// instead of the flat latency model.
    hierarchy: bool,
}

impl RunRequest {
    /// Parses and validates a request body. Unknown keys are rejected
    /// so a typo cannot silently fall back to a default.
    fn parse(body: &[u8]) -> Result<RunRequest, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        RunRequest::from_value(&doc)
    }

    /// Validates one already-parsed cell object (`/sweep` reuses this
    /// per array element).
    fn from_value(doc: &JsonValue) -> Result<RunRequest, String> {
        for key in doc.keys() {
            if !matches!(
                key,
                "benchmark"
                    | "trace_ref"
                    | "technique"
                    | "scale"
                    | "idle_detect"
                    | "bet"
                    | "wakeup_delay"
                    | "hierarchy"
            ) {
                return Err(format!("unknown field \"{key}\""));
            }
        }
        let str_field = |name: &str| -> Result<&str, String> {
            doc.get(name)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("missing or non-string field \"{name}\""))
        };
        let workload = match (doc.get("benchmark"), doc.get("trace_ref")) {
            (Some(_), Some(_)) => {
                return Err(
                    "\"benchmark\" and \"trace_ref\" are mutually exclusive — name one workload"
                        .to_owned(),
                );
            }
            (None, None) => {
                return Err("missing or non-string field \"benchmark\" or \"trace_ref\"".to_owned());
            }
            (Some(_), None) => {
                let benchmark_name = str_field("benchmark")?;
                WorkloadRef::Benchmark(
                    Benchmark::from_name(benchmark_name)
                        .ok_or_else(|| format!("unknown benchmark \"{benchmark_name}\""))?,
                )
            }
            (None, Some(_)) => WorkloadRef::Trace(str_field("trace_ref")?.to_owned()),
        };
        let technique_name = str_field("technique")?;
        let technique = technique_from_name(technique_name)
            .ok_or_else(|| format!("unknown technique \"{technique_name}\""))?;
        let scale = match doc.get("scale") {
            None => 1.0,
            Some(v) => v
                .as_f64()
                .filter(|s| *s > 0.0 && *s <= 1.0)
                .ok_or_else(|| "\"scale\" must be a number in (0,1]".to_owned())?,
        };
        let mut params = GatingParams::default();
        for (name, slot) in [
            ("idle_detect", &mut params.idle_detect as &mut u32),
            ("bet", &mut params.bet),
            ("wakeup_delay", &mut params.wakeup_delay),
        ] {
            if let Some(v) = doc.get(name) {
                *slot = v
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("\"{name}\" must be a non-negative integer"))?;
            }
        }
        let hierarchy = match doc.get("hierarchy") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| "\"hierarchy\" must be true or false".to_owned())?,
        };
        // Deliberately NOT validated here: out-of-range gating
        // parameters (e.g. bet = 0) panic inside the experiment and
        // exercise the 500 fault-isolation path, like any other cell
        // crash.
        Ok(RunRequest {
            workload,
            technique,
            scale,
            params,
            hierarchy,
        })
    }

    /// The workload half of a cell's JSON identity:
    /// `"benchmark":"nw"` or `"trace_ref":"nw"`.
    fn workload_json(&self) -> String {
        match &self.workload {
            WorkloadRef::Benchmark(b) => format!("\"benchmark\":\"{}\"", json::escape(b.name())),
            WorkloadRef::Trace(name) => format!("\"trace_ref\":\"{}\"", json::escape(name)),
        }
    }

    /// The canonical `/run` body for this cell — what a peer forward
    /// sends, so the owner parses back an identical request (and hence
    /// computes the identical fingerprint and bytes).
    fn to_body(&self) -> String {
        format!(
            "{{{},\"technique\":\"{}\",\"scale\":{},\
             \"idle_detect\":{},\"bet\":{},\"wakeup_delay\":{},\"hierarchy\":{}}}",
            self.workload_json(),
            json::escape(self.technique.name()),
            self.scale,
            self.params.idle_detect,
            self.params.bet,
            self.params.wakeup_delay,
            self.hierarchy,
        )
    }
}

/// Parses a `/sweep` body into validated cells. Accepts a bare array
/// or `{"cells":[...]}`; every element must be a valid `/run` body,
/// and the batch must be non-empty and under the configured cap.
fn parse_sweep_cells(body: &[u8], max_cells: usize) -> Result<Vec<RunRequest>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let items = match &doc {
        JsonValue::Arr(items) => items,
        JsonValue::Obj(_) => {
            if let Some(key) = doc.keys().iter().find(|k| **k != "cells") {
                return Err(format!("unknown field \"{key}\""));
            }
            match doc.get("cells") {
                Some(JsonValue::Arr(items)) => items,
                _ => return Err("missing or non-array field \"cells\"".to_owned()),
            }
        }
        _ => return Err("expected an array of cells or {\"cells\":[...]}".to_owned()),
    };
    if items.is_empty() {
        return Err("sweep needs at least one cell".to_owned());
    }
    if items.len() > max_cells {
        return Err(format!(
            "too many cells ({} > the {max_cells} cap)",
            items.len()
        ));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, v)| RunRequest::from_value(v).map_err(|e| format!("cells[{i}]: {e}")))
        .collect()
}

/// Renders the canonical report JSON for one completed run. Field
/// order is fixed and floats use fixed precision, so the bytes are a
/// pure function of the run — the property the content-addressed cache
/// keys on.
fn render_run(req: &RunRequest, fingerprint: u64, run: &TechniqueRun) -> Vec<u8> {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{{},\"technique\":\"{}\",\"scale\":{},\
         \"params\":{{\"idle_detect\":{},\"bet\":{},\"wakeup_delay\":{}}},\
         \"fingerprint\":\"{fingerprint:016x}\",\
         \"cycles\":{},\"ff_cycles\":{},\"timed_out\":{},\
         \"instructions\":{},\"ipc\":{:.6},\"gating\":{{",
        req.workload_json(),
        json::escape(req.technique.name()),
        req.scale,
        req.params.idle_detect,
        req.params.bet,
        req.params.wakeup_delay,
        run.cycles,
        run.stats.fast_forwarded_cycles,
        run.timed_out,
        run.stats.instructions(),
        run.stats.ipc(),
    ));
    for (i, unit) in [UnitType::Int, UnitType::Fp, UnitType::Sfu, UnitType::Ldst]
        .into_iter()
        .enumerate()
    {
        let g = run.gating_of(unit);
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{unit}\":{{\"gate_events\":{},\"wakeups\":{},\"critical_wakeups\":{},\
             \"gated_cycles\":{},\"compensated_cycles\":{},\"uncompensated_cycles\":{},\
             \"wakeup_cycles\":{},\"premature_wakeups\":{},\"demand_blocked_cycles\":{}}}",
            g.gate_events,
            g.wakeups,
            g.critical_wakeups,
            g.gated_cycles,
            g.compensated_cycles,
            g.uncompensated_cycles,
            g.wakeup_cycles,
            g.premature_wakeups,
            g.demand_blocked_cycles,
        ));
    }
    out.push('}');
    // The memory block appears only for hierarchy-armed runs, so flat
    // (default) reports stay byte-identical to what they always were.
    let mem = &run.stats.mem;
    if mem.hierarchy {
        out.push_str(&format!(
            ",\"memory\":{{\"accesses\":{},\"l1_hits\":{},\"l1_misses\":{},\
             \"mshr_merges\":{},\"fills\":{},\"l2_accesses\":{},\"l2_misses\":{},\
             \"mshr_peak\":{},\"stores\":{}}}",
            mem.accesses,
            mem.l1_hits,
            mem.l1_misses,
            mem.mshr_merges,
            mem.fills,
            mem.l2_accesses,
            mem.l2_misses,
            mem.mshr_peak,
            mem.stores,
        ));
    }
    out.push_str("}\n");
    out.into_bytes()
}

/// Loads every `*.wgt1` file under `dir`, keyed by each trace's
/// header name. A file that fails to read or parse is skipped (and
/// counted in `trace_parse_errors`) rather than refusing startup —
/// the same degradation policy as a broken disk-cache directory.
fn load_traces(dir: &Path, metrics: &Metrics) -> BTreeMap<String, Arc<TraceWorkload>> {
    let mut traces = BTreeMap::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!(
                "warped-serve: trace corpus at {} disabled: {e}",
                dir.display()
            );
            return traces;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wgt1"))
        .collect();
    paths.sort();
    for path in paths {
        let parsed = std::fs::read(&path)
            .map_err(|e| e.to_string())
            .and_then(|bytes| warped_trace::parse_bytes(&bytes).map_err(|e| e.to_string()));
        match parsed {
            Ok(workload) => {
                metrics.traces_loaded.fetch_add(1, Ordering::Relaxed);
                traces.insert(workload.name.clone(), Arc::new(workload));
            }
            Err(e) => {
                metrics.trace_parse_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("warped-serve: skipping trace {}: {e}", path.display());
            }
        }
    }
    traces
}

impl Service {
    /// A service over the given configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        // Shard count scales with the worker pool: enough that
        // concurrent distinct cells rarely contend on one lock.
        let shards = (worker_count() * 2).next_power_of_two();
        // A broken cache directory degrades to memory-only service
        // rather than refusing to start.
        let disk = config.disk_dir.as_ref().and_then(|root| {
            DiskCache::open(root, config.disk_cache_bytes)
                .map_err(|e| {
                    eprintln!(
                        "warped-serve: disk cache at {} disabled: {e}",
                        root.display()
                    );
                })
                .ok()
        });
        let metrics = Metrics::default();
        let traces = config
            .trace_dir
            .as_deref()
            .map_or_else(BTreeMap::new, |dir| load_traces(dir, &metrics));
        let service = Service {
            cache: ResultCache::new(shards, config.cache_bytes),
            disk,
            metrics,
            regen: Mutex::new(()),
            cluster: OnceLock::new(),
            chaos: AtomicU8::new(0),
            traces,
            config,
        };
        // Like the disk cache: a broken cluster config degrades to a
        // standalone node rather than refusing to start.
        if let Some(cluster_config) = &service.config.cluster {
            match Cluster::new(cluster_config) {
                Ok(cluster) => service.arm_cluster(cluster),
                Err(e) => eprintln!("warped-serve: cluster mode disabled: {e}"),
            }
        }
        service
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Arms cluster mode after construction (tests bind ephemeral
    /// ports, so membership is only known post-spawn). A second call
    /// is ignored — the first cluster view wins.
    pub fn arm_cluster(&self, cluster: Cluster) {
        let _ = self.cluster.set(cluster);
    }

    /// The cluster view, when armed.
    #[must_use]
    pub fn cluster(&self) -> Option<&Cluster> {
        self.cluster.get()
    }

    /// Sets the injected fault mode (`POST /chaos` calls this; tests
    /// may call it directly).
    pub fn set_chaos(&self, mode: ChaosMode) {
        self.chaos.store(mode.as_u8(), Ordering::SeqCst);
    }

    /// The fault mode currently injected.
    #[must_use]
    pub fn chaos_mode(&self) -> ChaosMode {
        ChaosMode::from_u8(self.chaos.load(Ordering::SeqCst))
    }

    /// Routes one request and writes the complete response.
    ///
    /// `keep_alive` is what the response promises the client in its
    /// `Connection` header — the transport decides it (client wish ∧
    /// server policy) and must honor the same verdict after writing.
    ///
    /// # Errors
    ///
    /// Returns transport errors only; application-level trouble is
    /// answered in-band with a typed error body.
    pub fn handle(
        &self,
        req: &Request,
        out: &mut dyn Write,
        keep_alive: bool,
    ) -> io::Result<Handled> {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // The chaos gate: every endpoint except /chaos itself honors
        // the injected fault, so the harness can always clear it.
        if req.path != "/chaos" {
            match self.chaos_mode() {
                ChaosMode::None => {}
                ChaosMode::Error => {
                    self.respond(
                        out,
                        500,
                        "application/json",
                        &error_body("chaos", "injected fault"),
                        keep_alive,
                    )?;
                    return Ok(Handled::Normal);
                }
                ChaosMode::Abort => {
                    // An in-process `kill -9`: the connection drops
                    // with no response bytes at all.
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "chaos: aborted",
                    ));
                }
                ChaosMode::Stall => {
                    // Freeze (bounded) until the harness clears the
                    // mode, then serve normally — a stalled node that
                    // recovers answers its backlog.
                    let deadline = Instant::now() + Duration::from_secs(30);
                    while self.chaos_mode() == ChaosMode::Stall && Instant::now() < deadline {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
        }
        let handled = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                self.respond(out, 200, "text/plain; charset=utf-8", b"ok\n", keep_alive)?;
                Handled::Normal
            }
            ("GET", "/metrics") => {
                let page = self
                    .metrics
                    .render(&self.cache, self.disk.as_ref(), self.cluster.get());
                self.respond(
                    out,
                    200,
                    "text/plain; charset=utf-8",
                    page.as_bytes(),
                    keep_alive,
                )?;
                Handled::Normal
            }
            ("POST", "/run") => {
                self.run(req, out, keep_alive)?;
                Handled::Normal
            }
            ("POST", "/sweep") => {
                self.sweep(req, out, keep_alive)?;
                Handled::Normal
            }
            ("POST", "/chaos") => {
                self.chaos(req, out, keep_alive)?;
                Handled::Normal
            }
            ("GET", "/grid") => {
                self.grid(req, out, keep_alive)?;
                Handled::Normal
            }
            ("GET", "/trace") => {
                self.trace(req, out, keep_alive)?;
                Handled::Normal
            }
            ("POST", "/shutdown") => {
                // The server is about to stop; never promise reuse.
                self.respond(
                    out,
                    200,
                    "application/json",
                    b"{\"shutting_down\":true}\n",
                    false,
                )?;
                Handled::ShutdownRequested
            }
            (
                _,
                "/healthz" | "/metrics" | "/run" | "/sweep" | "/chaos" | "/grid" | "/trace"
                | "/shutdown",
            ) => {
                self.respond(
                    out,
                    405,
                    "application/json",
                    &error_body(
                        "method_not_allowed",
                        &format!("{} not allowed here", req.method),
                    ),
                    keep_alive,
                )?;
                Handled::Normal
            }
            (_, path) => {
                self.respond(
                    out,
                    404,
                    "application/json",
                    &error_body("not_found", &format!("no route for {path}")),
                    keep_alive,
                )?;
                Handled::Normal
            }
        };
        Ok(handled)
    }

    fn respond(
        &self,
        out: &mut dyn Write,
        status: u16,
        content_type: &str,
        body: &[u8],
        keep_alive: bool,
    ) -> io::Result<()> {
        self.metrics.count_status(status);
        write_response(out, status, content_type, body, keep_alive)
    }

    /// Computes (or fetches) one cell's canonical report bytes,
    /// looking up memory cache → disk cache → peer forward → simulate.
    /// A fresh *local* result is persisted write-behind when
    /// persistence is on; forwarded bytes stay memory-only (the owner
    /// holds the disk shard). `local_only` skips the forward hop —
    /// set for requests that already arrived forwarded, so a cell can
    /// never bounce between peers. Errors carry a `kind\u{1f}message`
    /// tag; the returned flag is true when this call ran a fresh
    /// simulation (false: a cache layer or a peer answered).
    fn run_cell(
        &self,
        run_req: &RunRequest,
        local_only: bool,
    ) -> (Result<Arc<Vec<u8>>, String>, bool) {
        // Trace refs resolve against the corpus loaded at startup.
        // `/run` and `/sweep` validate refs before any work, so this
        // branch only fires on an internal caller bug — it still
        // degrades to a typed error rather than a panic.
        let (spec, trace) = match &run_req.workload {
            WorkloadRef::Benchmark(b) => (Some(b.spec()), None),
            WorkloadRef::Trace(name) => match self.traces.get(name) {
                Some(t) => (None, Some(Arc::clone(t))),
                None => {
                    return (
                        Err(format!(
                            "unknown_trace\u{1f}no trace named \"{name}\" is loaded"
                        )),
                        false,
                    );
                }
            },
        };
        // Constructing the experiment validates the gating parameters,
        // which panics on out-of-range values (e.g. bet = 0) — fault
        // isolation starts here, not at the simulation.
        let built = catch_unwind(AssertUnwindSafe(|| {
            let experiment = Experiment::new(run_req.params)
                .with_scale(run_req.scale)
                .with_job_timeout(self.config.job_timeout)
                .with_memory_hierarchy(
                    run_req.hierarchy.then(warped_sim::HierarchyConfig::default),
                );
            // The trace fingerprint folds the capture's content digest,
            // so two corpora serving the same name with different bytes
            // can never alias in any cache layer.
            let fingerprint = match (&spec, &trace) {
                (Some(spec), _) => cell_fingerprint(&experiment, spec, run_req.technique),
                (None, Some(t)) => trace_cell_fingerprint(&experiment, t, run_req.technique),
                (None, None) => unreachable!("workload resolved above"),
            };
            (experiment, fingerprint)
        }));
        let (experiment, fingerprint) = match built {
            Ok(pair) => pair,
            Err(payload) => {
                self.metrics.panicked_cells.fetch_add(1, Ordering::Relaxed);
                return (
                    Err(format!("panic\u{1f}{}", panic_message(payload.as_ref()))),
                    false,
                );
            }
        };

        let mut simulated = false;
        let mut forwarded = false;
        let (result, outcome) = self.cache.get_or_compute(fingerprint, || {
            if let Some(disk) = &self.disk {
                if let Some(bytes) = disk.get(fingerprint) {
                    return Ok(bytes);
                }
            }
            // Not ours? One forwarding hop to the ring owner; a failed
            // forward (or an open breaker) degrades to simulating here
            // — availability beats placement. Trace cells never hop:
            // the corpus is node-local configuration, so a peer may
            // not hold the referenced trace at all.
            if !local_only && trace.is_none() {
                if let Some(cluster) = self.cluster.get() {
                    if let Some(owner) = cluster.forward_target(fingerprint) {
                        if let Ok(bytes) = cluster.forward_run(owner, &run_req.to_body()) {
                            forwarded = true;
                            return Ok(bytes);
                        }
                    }
                }
            }
            let _guard = self.metrics.job_started();
            let outcome = catch_unwind(AssertUnwindSafe(|| match (&spec, &trace) {
                (Some(spec), _) => experiment.run(spec, run_req.technique),
                (None, Some(t)) => experiment.run_trace(t, run_req.technique),
                (None, None) => unreachable!("workload resolved above"),
            }));
            match outcome {
                Err(payload) => {
                    self.metrics.panicked_cells.fetch_add(1, Ordering::Relaxed);
                    Err(format!("panic\u{1f}{}", panic_message(payload.as_ref())))
                }
                Ok(run) if run.timed_out => {
                    self.metrics.timed_out_cells.fetch_add(1, Ordering::Relaxed);
                    Err(format!(
                        "timeout\u{1f}cell exceeded the wall-clock budget ({:?})",
                        self.config.job_timeout
                    ))
                }
                Ok(run) => {
                    simulated = true;
                    self.metrics.simulations.fetch_add(1, Ordering::Relaxed);
                    self.metrics.record_core_counters(&run.stats);
                    Ok(render_run(run_req, fingerprint, &run))
                }
            }
        });
        // Persist only what this call materialised *locally*: hits
        // already live on disk (or deliberately don't), forwarded
        // bytes belong to the owner's shard, and `put` is cheap but
        // not free. A disk hit re-entering `put` is deduped by the
        // index.
        if outcome == Outcome::Miss && !forwarded {
            if let (Some(disk), Ok(bytes)) = (&self.disk, &result) {
                disk.put(fingerprint, Arc::clone(bytes));
            }
        }
        if trace.is_some() && result.is_ok() {
            self.metrics
                .trace_cells_served
                .fetch_add(1, Ordering::Relaxed);
        }
        (result, simulated)
    }

    /// Rejects any cell naming a trace this server has not loaded.
    /// Runs during request validation, before any simulation starts,
    /// so the client gets a 400 naming the cell — never a mid-batch
    /// fault.
    fn check_trace_refs(&self, cells: &[RunRequest]) -> Result<(), String> {
        for (i, cell) in cells.iter().enumerate() {
            if let WorkloadRef::Trace(name) = &cell.workload {
                if !self.traces.contains_key(name) {
                    let hint = if self.traces.is_empty() {
                        "; no trace corpus is loaded (start with --trace-dir)".to_owned()
                    } else {
                        format!(
                            "; loaded traces: {}",
                            self.traces
                                .keys()
                                .map(String::as_str)
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    };
                    return Err(if cells.len() == 1 {
                        format!("unknown trace_ref \"{name}\"{hint}")
                    } else {
                        format!("cells[{i}]: unknown trace_ref \"{name}\"{hint}")
                    });
                }
            }
        }
        Ok(())
    }

    /// `POST /run`: validate, fingerprint, serve through the
    /// single-flight cache, fault-isolate the simulation.
    fn run(&self, req: &Request, out: &mut dyn Write, keep_alive: bool) -> io::Result<()> {
        let run_req = match RunRequest::parse(&req.body) {
            Ok(r) => r,
            Err(message) => {
                return self.respond(
                    out,
                    400,
                    "application/json",
                    &error_body("bad_request", &message),
                    keep_alive,
                );
            }
        };
        if let Err(message) = self.check_trace_refs(std::slice::from_ref(&run_req)) {
            return self.respond(
                out,
                400,
                "application/json",
                &error_body("bad_request", &message),
                keep_alive,
            );
        }
        let local_only = req.header(FORWARDED_HEADER).is_some();
        let (result, _) = self.run_cell(&run_req, local_only);
        match result {
            Ok(bytes) => self.respond(out, 200, "application/json", &bytes, keep_alive),
            Err(tagged) => {
                let (kind, message) = tagged.split_once('\u{1f}').unwrap_or(("panic", &tagged));
                self.respond(
                    out,
                    500,
                    "application/json",
                    &error_body(kind, message),
                    keep_alive,
                )
            }
        }
    }

    /// `POST /sweep`: a batch of cells (`[{...},...]` or
    /// `{"cells":[...]}`), streamed back as chunked JSONL in
    /// completion order. Each line is `{"index":i,"report":{...}}` or
    /// `{"index":i,"error":{"kind":...,"message":...}}`, where `index`
    /// is the cell's position in the request array — the report bytes
    /// are exactly what `/run` answers for that cell.
    ///
    /// Validation is all-or-nothing *before* any work starts: one bad
    /// cell fails the whole batch with a `400` naming it, so a client
    /// can't burn a long sweep only to find a typo'd tail.
    fn sweep(&self, req: &Request, out: &mut dyn Write, keep_alive: bool) -> io::Result<()> {
        let cells = match parse_sweep_cells(&req.body, self.config.max_sweep_cells)
            .and_then(|cells| self.check_trace_refs(&cells).map(|()| cells))
        {
            Ok(cells) => cells,
            Err(message) => {
                return self.respond(
                    out,
                    400,
                    "application/json",
                    &error_body("bad_request", &message),
                    keep_alive,
                );
            }
        };
        self.metrics
            .sweep_cells
            .fetch_add(cells.len() as u64, Ordering::Relaxed);

        self.metrics.count_status(200);
        let local_only = req.header(FORWARDED_HEADER).is_some();
        let mut cw = ChunkedWriter::begin(out, 200, "application/jsonl", keep_alive)?;
        let next = AtomicUsize::new(0);
        let threads = cells.len().min(worker_count()).max(1);
        let (tx, rx) = mpsc::channel::<(usize, Result<Arc<Vec<u8>>, String>, bool)>();
        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..threads {
                let tx = tx.clone();
                let (next, cells) = (&next, &cells);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let (result, simulated) = self.run_cell(cell, local_only);
                    // A send error means the client hung up and the
                    // streaming loop bailed: stop pulling cells.
                    if tx.send((i, result, simulated)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, result, simulated) in rx {
                // Abort chaos arriving mid-sweep drops the stream cold
                // — the in-process equivalent of a node dying with
                // cells still outstanding.
                if self.chaos_mode() == ChaosMode::Abort {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "chaos: aborted mid-sweep",
                    ));
                }
                if !simulated {
                    self.metrics
                        .sweep_cells_deduped
                        .fetch_add(1, Ordering::Relaxed);
                }
                let line = match result {
                    Ok(bytes) => {
                        let report = String::from_utf8_lossy(&bytes);
                        format!("{{\"index\":{i},\"report\":{}}}\n", report.trim_end())
                    }
                    Err(tagged) => {
                        let (kind, message) =
                            tagged.split_once('\u{1f}').unwrap_or(("panic", &tagged));
                        format!(
                            "{{\"index\":{i},\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}\n",
                            json::escape(kind),
                            json::escape(message)
                        )
                    }
                };
                // Flush per line so the client sees each result the
                // moment it lands, not when the OS buffer fills.
                cw.chunk(line.as_bytes())?;
                cw.flush()?;
            }
            Ok(())
        })?;
        cw.finish()
    }

    /// `POST /chaos`: the fault-injection control, `{"mode":"none" |
    /// "error" | "stall" | "abort"}`. The endpoint itself is exempt
    /// from the injected fault, so a harness can always clear it.
    fn chaos(&self, req: &Request, out: &mut dyn Write, keep_alive: bool) -> io::Result<()> {
        let mode = std::str::from_utf8(&req.body)
            .ok()
            .and_then(|text| json::parse(text).ok())
            .and_then(|doc| {
                if doc.keys().iter().any(|k| *k != "mode") {
                    return None;
                }
                doc.get("mode")
                    .and_then(JsonValue::as_str)
                    .and_then(ChaosMode::from_name)
            });
        let Some(mode) = mode else {
            return self.respond(
                out,
                400,
                "application/json",
                &error_body(
                    "bad_request",
                    "body must be {\"mode\":\"none\"|\"error\"|\"stall\"|\"abort\"}",
                ),
                keep_alive,
            );
        };
        self.set_chaos(mode);
        self.respond(
            out,
            200,
            "application/json",
            format!("{{\"chaos\":\"{}\"}}\n", mode.name()).as_bytes(),
            keep_alive,
        )
    }

    /// `GET /grid`: the committed sweep table, optionally regenerated.
    fn grid(&self, req: &Request, out: &mut dyn Write, keep_alive: bool) -> io::Result<()> {
        if req.query_param("regenerate") == Some("1") {
            let scale = match req.query_param("scale").map(str::parse::<f64>) {
                None => 1.0,
                Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
                _ => {
                    return self.respond(
                        out,
                        400,
                        "application/json",
                        &error_body("bad_request", "\"scale\" must be a number in (0,1]"),
                        keep_alive,
                    );
                }
            };
            let out_dir = self
                .config
                .grid_path
                .parent()
                .map_or_else(|| PathBuf::from("."), PathBuf::from);
            let _serialised = self.regen.lock().expect("regen lock poisoned");
            let mut sweep_config = SweepConfig::new(out_dir, worker_count());
            sweep_config.scale = scale;
            sweep_config.quiet = true;
            match sweep::run(&sweep_config) {
                Ok(summary) if summary.ok() => {}
                Ok(summary) => {
                    return self.respond(
                        out,
                        500,
                        "application/json",
                        &error_body(
                            "sweep_failed",
                            &format!("{} grid cells failed", summary.failures.len()),
                        ),
                        keep_alive,
                    );
                }
                Err(e) => {
                    return self.respond(
                        out,
                        500,
                        "application/json",
                        &error_body("io", &e.to_string()),
                        keep_alive,
                    );
                }
            }
        }
        match std::fs::read(&self.config.grid_path) {
            Ok(bytes) => {
                // Validate before serving: a torn or foreign file must
                // not masquerade as a grid.
                if let Err(e) = GridTable::parse(&String::from_utf8_lossy(&bytes)) {
                    return self.respond(
                        out,
                        500,
                        "application/json",
                        &error_body("bad_grid", &e.to_string()),
                        keep_alive,
                    );
                }
                self.respond(out, 200, "application/json", &bytes, keep_alive)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => self.respond(
                out,
                404,
                "application/json",
                &error_body(
                    "no_grid",
                    &format!(
                        "{} not found; POST /grid?regenerate=1 or run the sweep binary",
                        self.config.grid_path.display()
                    ),
                ),
                keep_alive,
            ),
            Err(e) => self.respond(
                out,
                500,
                "application/json",
                &error_body("io", &e.to_string()),
                keep_alive,
            ),
        }
    }

    /// `GET /trace?cell=<i>[&format=perfetto|rollup][&scale=<f>]`:
    /// replay one grid cell with telemetry and stream the export with
    /// chunked transfer encoding.
    fn trace(&self, req: &Request, out: &mut dyn Write, keep_alive: bool) -> io::Result<()> {
        let jobs = runner::full_grid();
        let cell = match req.query_param("cell").map(str::parse::<usize>) {
            Some(Ok(i)) if i < jobs.len() => i,
            _ => {
                return self.respond(
                    out,
                    400,
                    "application/json",
                    &error_body(
                        "bad_request",
                        &format!("\"cell\" must be a grid index below {}", jobs.len()),
                    ),
                    keep_alive,
                );
            }
        };
        let scale = match req.query_param("scale").map(str::parse::<f64>) {
            None => self.config.trace_scale,
            Some(Ok(s)) if s > 0.0 && s <= 1.0 => s,
            _ => {
                return self.respond(
                    out,
                    400,
                    "application/json",
                    &error_body("bad_request", "\"scale\" must be a number in (0,1]"),
                    keep_alive,
                );
            }
        };
        let format = req.query_param("format").unwrap_or("perfetto");
        if format != "perfetto" && format != "rollup" {
            return self.respond(
                out,
                400,
                "application/json",
                &error_body("bad_request", "\"format\" must be perfetto or rollup"),
                keep_alive,
            );
        }

        let (spec, technique) = &jobs[cell];
        let label = sweep::cell_label(&jobs[cell]);
        let recorder = Recorder::new(RecorderConfig {
            capacity: 1 << 20,
            epoch_len: 1000,
        });
        let _guard = self.metrics.job_started();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let experiment = Experiment::paper_defaults()
                .with_scale(scale)
                .with_job_timeout(self.config.job_timeout)
                .with_telemetry(Some(recorder.clone()));
            experiment.run(spec, *technique)
        }));
        let run = match outcome {
            Ok(run) => run,
            Err(payload) => {
                self.metrics.panicked_cells.fetch_add(1, Ordering::Relaxed);
                return self.respond(
                    out,
                    500,
                    "application/json",
                    &error_body("panic", &panic_message(payload.as_ref())),
                    keep_alive,
                );
            }
        };

        self.metrics.record_core_counters(&run.stats);

        // Reassemble the log through the bounded-chunk drain (the same
        // incremental path the timeline binary uses).
        let mut events = Vec::new();
        for chunk in recorder.drain_chunks(64 * 1024) {
            events.extend(chunk);
        }
        let mut log = recorder.take();
        log.events = events;

        self.metrics.count_status(200);
        match format {
            "perfetto" => {
                let title = format!("{label} @ scale {scale}");
                let trace = perfetto::render(&log, run.stats.layout, &title);
                let mut cw = ChunkedWriter::begin(out, 200, "application/json", keep_alive)?;
                for piece in trace.as_bytes().chunks(64 * 1024) {
                    cw.chunk(piece)?;
                }
                cw.finish()
            }
            _ => {
                let rows = rollup::rows(&log);
                let mut cw = ChunkedWriter::begin(out, 200, "application/jsonl", keep_alive)?;
                for row in &rows {
                    cw.chunk(row.to_json().as_bytes())?;
                    cw.chunk(b"\n")?;
                }
                cw.finish()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str) -> Request {
        let (path, query_text) = path.split_once('?').unwrap_or((path, ""));
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: query_text
                .split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| {
                    let (k, v) = kv.split_once('=').unwrap_or((kv, ""));
                    (k.to_owned(), v.to_owned())
                })
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            body: body.as_bytes().to_vec(),
            method: "POST".to_owned(),
            ..get(path)
        }
    }

    fn quick_service() -> Service {
        Service::new(ServiceConfig {
            trace_scale: 0.05,
            ..ServiceConfig::default()
        })
    }

    fn dispatch(service: &Service, req: &Request) -> (u16, String, Handled) {
        let mut wire = Vec::new();
        let handled = service.handle(req, &mut wire, true).unwrap();
        let text = String::from_utf8_lossy(&wire).into_owned();
        let status: u16 = text
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body, handled)
    }

    #[test]
    fn healthz_and_metrics_respond() {
        let service = quick_service();
        let (status, body, _) = dispatch(&service, &get("/healthz"));
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, body, _) = dispatch(&service, &get("/metrics"));
        assert_eq!(status, 200);
        assert!(body.contains("warped_serve_requests_total 2"));
    }

    #[test]
    fn unknown_route_is_404_and_wrong_method_is_405() {
        let service = quick_service();
        let (status, body, _) = dispatch(&service, &get("/nope"));
        assert_eq!(status, 404);
        assert!(body.contains("not_found"));
        let (status, body, _) = dispatch(&service, &get("/run"));
        assert_eq!(status, 405);
        assert!(body.contains("method_not_allowed"));
    }

    #[test]
    fn run_endpoint_caches_identical_requests() {
        let service = quick_service();
        let body = "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05}";
        let (status, first, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200, "{first}");
        assert!(first.contains("\"benchmark\":\"nw\""));
        assert!(first.contains("\"cycles\":"));
        assert!(first.contains("\"fingerprint\":\""));
        let (status, second, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200);
        assert_eq!(first, second, "cached bytes are identical");
        assert_eq!(service.cache.misses(), 1);
        assert_eq!(service.cache.hits(), 1);
        // The fresh simulation (and only it — the hit re-served bytes)
        // folded its event-core counters into the service totals.
        let events = service
            .metrics
            .events_dispatched
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(events > 0, "fresh run must report dispatched events");
        let (status, page, _) = dispatch(&service, &get("/metrics"));
        assert_eq!(status, 200);
        assert!(page.contains(&format!(
            "warped_serve_sim_events_dispatched_total {events}"
        )));
    }

    #[test]
    fn run_endpoint_rejects_malformed_and_unknown_inputs() {
        let service = quick_service();
        for (body, want) in [
            ("{not json", "bad_request"),
            ("{\"technique\":\"baseline\"}", "missing or non-string"),
            (
                "{\"benchmark\":\"nope\",\"technique\":\"baseline\"}",
                "unknown benchmark",
            ),
            (
                "{\"benchmark\":\"nw\",\"technique\":\"nope\"}",
                "unknown technique",
            ),
            (
                "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":7}",
                "(0,1]",
            ),
            (
                "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"typo\":1}",
                "unknown field",
            ),
        ] {
            let (status, response, _) = dispatch(&service, &post("/run", body));
            assert_eq!(status, 400, "{body} should be rejected");
            assert!(response.contains(want), "{body}: {response}");
        }
        assert_eq!(service.cache.misses(), 0, "no simulation ran");
    }

    #[test]
    fn panicking_cell_answers_500_with_a_typed_body() {
        let service = quick_service();
        // bet = 0 fails GatingParams validation inside the run.
        let body = "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05,\"bet\":0}";
        let (status, response, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 500, "{response}");
        assert!(response.contains("\"kind\":\"panic\""), "{response}");
        assert_eq!(
            service
                .metrics
                .panicked_cells
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // Parameter validation fails before the cache is consulted, so
        // nothing was cached and a retry fails identically.
        let (status, _, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 500);
        assert_eq!(service.cache.misses(), 0);
    }

    /// De-chunks a chunked body and splits it into JSONL lines.
    fn jsonl_lines(body: &str) -> Vec<String> {
        let mut data = String::new();
        let mut rest = body;
        loop {
            let (size, tail) = rest.split_once("\r\n").expect("chunk size line");
            let size = usize::from_str_radix(size, 16).expect("hex chunk size");
            if size == 0 {
                break;
            }
            data.push_str(&tail[..size]);
            rest = &tail[size + 2..]; // skip payload + CRLF
        }
        data.lines().map(str::to_owned).collect()
    }

    #[test]
    fn sweep_streams_every_cell_and_dedupes_against_run() {
        let service = quick_service();
        // Warm one of the two cells through /run first.
        let (status, single, _) = dispatch(
            &service,
            &post(
                "/run",
                "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05}",
            ),
        );
        assert_eq!(status, 200);

        let body = "{\"cells\":[\
             {\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05},\
             {\"benchmark\":\"nw\",\"technique\":\"warped-gates\",\"scale\":0.05}]}";
        let (status, raw, _) = dispatch(&service, &post("/sweep", body));
        assert_eq!(status, 200);
        let mut lines = jsonl_lines(&raw);
        assert_eq!(lines.len(), 2, "{raw:.300}");
        // Completion order is nondeterministic; sort by index.
        lines.sort_by_key(|l| !l.contains("\"index\":0"));
        let first = json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("index").unwrap().as_u64(), Some(0));
        // The streamed report is byte-identical to the /run body.
        assert_eq!(
            format!("{{\"index\":0,\"report\":{}}}", single.trim_end()),
            lines[0]
        );
        assert!(
            lines[1].contains("\"technique\":\"Warped Gates\""),
            "{}",
            lines[1]
        );

        let deduped = service.metrics.sweep_cells_deduped.load(Ordering::Relaxed);
        assert_eq!(deduped, 1, "the /run-warmed cell cost no simulation");
        assert_eq!(service.metrics.sweep_cells.load(Ordering::Relaxed), 2);
        assert_eq!(service.metrics.simulations.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn sweep_rejects_bad_batches_before_any_work() {
        let service = quick_service();
        for (body, want) in [
            ("", "expected a JSON value"),
            ("{\"cells\":[]}", "at least one cell"),
            ("{\"cells\":7}", "non-array"),
            ("{\"cellz\":[]}", "unknown field"),
            ("7", "expected an array"),
            (
                "[{\"benchmark\":\"nw\",\"technique\":\"baseline\"},{\"benchmark\":\"nope\",\"technique\":\"baseline\"}]",
                "cells[1]: unknown benchmark",
            ),
        ] {
            let (status, response, _) = dispatch(&service, &post("/sweep", body));
            assert_eq!(status, 400, "{body} should be rejected: {response}");
            assert!(response.contains(want), "{body}: {response}");
        }
        assert_eq!(service.cache.misses(), 0, "no simulation ran");
    }

    #[test]
    fn sweep_cap_is_enforced() {
        let service = Service::new(ServiceConfig {
            max_sweep_cells: 1,
            ..ServiceConfig::default()
        });
        let body = "[{\"benchmark\":\"nw\",\"technique\":\"baseline\"},\
                     {\"benchmark\":\"nw\",\"technique\":\"blackout\"}]";
        let (status, response, _) = dispatch(&service, &post("/sweep", body));
        assert_eq!(status, 400);
        assert!(response.contains("too many cells"), "{response}");
    }

    #[test]
    fn disk_cache_survives_a_service_restart_with_zero_simulations() {
        let root = std::env::temp_dir().join(format!("warped_service_disk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let config = ServiceConfig {
            trace_scale: 0.05,
            disk_dir: Some(root.clone()),
            ..ServiceConfig::default()
        };
        let body = "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05}";
        let first = {
            let service = Service::new(config.clone());
            let (status, body_text, _) = dispatch(&service, &post("/run", body));
            assert_eq!(status, 200);
            assert_eq!(service.metrics.simulations.load(Ordering::Relaxed), 1);
            service.disk.as_ref().unwrap().flush();
            body_text
        };
        // A fresh Service (fresh memory cache) must answer from disk.
        let service = Service::new(config);
        let (status, second, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200);
        assert_eq!(first, second, "disk round-trip is byte-identical");
        assert_eq!(
            service.metrics.simulations.load(Ordering::Relaxed),
            0,
            "restart answers warm"
        );
        assert_eq!(service.disk.as_ref().unwrap().hits(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn chaos_endpoint_injects_and_clears_faults() {
        let service = quick_service();
        // Bad bodies are rejected without touching the mode.
        for body in ["", "{\"mode\":\"nope\"}", "{\"mood\":\"error\"}", "7"] {
            let (status, _, _) = dispatch(&service, &post("/chaos", body));
            assert_eq!(status, 400, "{body:?} must be rejected");
        }
        assert_eq!(service.chaos_mode(), crate::cluster::ChaosMode::None);

        let (status, body, _) = dispatch(&service, &post("/chaos", "{\"mode\":\"error\"}"));
        assert_eq!((status, body.as_str()), (200, "{\"chaos\":\"error\"}\n"));
        let (status, body, _) = dispatch(&service, &get("/healthz"));
        assert_eq!(status, 500);
        assert!(body.contains("\"kind\":\"chaos\""), "{body}");

        // /chaos itself is exempt, so the fault can always be cleared.
        let (status, _, _) = dispatch(&service, &post("/chaos", "{\"mode\":\"none\"}"));
        assert_eq!(status, 200);
        let (status, _, _) = dispatch(&service, &get("/healthz"));
        assert_eq!(status, 200);
    }

    #[test]
    fn abort_chaos_drops_the_connection_with_no_bytes() {
        let service = quick_service();
        service.set_chaos(crate::cluster::ChaosMode::Abort);
        let mut wire = Vec::new();
        let result = service.handle(&get("/healthz"), &mut wire, true);
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::ConnectionAborted);
        assert!(wire.is_empty(), "an aborted request answers nothing");
    }

    #[test]
    fn forwarded_requests_are_served_locally_not_re_forwarded() {
        use crate::cluster::{cell_for, Cluster, ClusterConfig};
        // Self plus one unreachable peer; pick a cell the peer owns.
        let peers = vec!["127.0.0.1:19931".to_owned(), "127.0.0.1:19932".to_owned()];
        let service = quick_service();
        service.arm_cluster(
            Cluster::new(&ClusterConfig {
                peers: peers.clone(),
                self_addr: Some(peers[0].clone()),
                probe_interval: None,
                ..ClusterConfig::default()
            })
            .unwrap(),
        );
        let cluster = service.cluster().unwrap();
        let not_ours = Benchmark::ALL
            .into_iter()
            .find(|b| {
                let cell = cell_for(*b, Technique::Baseline, 0.05);
                cluster.ring().owner(cell.fingerprint) != 0
            })
            .expect("some benchmark hashes to the peer");
        let body = format!(
            "{{\"benchmark\":\"{}\",\"technique\":\"baseline\",\"scale\":0.05}}",
            not_ours.name()
        );

        // A forwarded request must not hop again: it simulates locally
        // without ever dialing the (unreachable) owner.
        let mut req = post("/run", &body);
        req.headers
            .push((FORWARDED_HEADER.to_owned(), "1".to_owned()));
        let mut wire = Vec::new();
        let handled = service.handle(&req, &mut wire, true).unwrap();
        assert_eq!(handled, Handled::Normal);
        let counters = cluster.counters();
        assert_eq!(counters.forward_failures.load(Ordering::Relaxed), 0);
        assert_eq!(service.metrics.simulations.load(Ordering::Relaxed), 1);

        // The same cell un-forwarded tries the owner first, fails
        // (nothing listens there), and falls back to local — which the
        // memory cache now answers.
        let (status, _, _) = dispatch(&service, &post("/run", &body));
        assert_eq!(status, 200);
        assert_eq!(
            counters.forward_failures.load(Ordering::Relaxed),
            0,
            "a cache hit never reaches the forward layer"
        );

        // An uncached peer-owned cell does attempt (and fail) the hop.
        let body2 = format!(
            "{{\"benchmark\":\"{}\",\"technique\":\"gates\",\"scale\":0.05}}",
            Benchmark::ALL
                .into_iter()
                .find(|b| {
                    let cell = cell_for(*b, Technique::Gates, 0.05);
                    cluster.ring().owner(cell.fingerprint) != 0
                })
                .expect("some benchmark hashes to the peer")
                .name()
        );
        let (status, _, _) = dispatch(&service, &post("/run", &body2));
        assert_eq!(status, 200, "failed forward degrades to local");
        assert_eq!(counters.forward_failures.load(Ordering::Relaxed), 1);
        assert!(counters.peer_unhealthy.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn hierarchy_requests_run_the_cache_model_and_report_memory_stats() {
        let service = quick_service();
        let flat = "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05}";
        let armed =
            "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05,\"hierarchy\":true}";
        let (status, flat_body, _) = dispatch(&service, &post("/run", flat));
        assert_eq!(status, 200, "{flat_body}");
        assert!(!flat_body.contains("\"memory\""), "{flat_body}");
        let (status, armed_body, _) = dispatch(&service, &post("/run", armed));
        assert_eq!(status, 200, "{armed_body}");
        assert!(
            armed_body.contains("\"memory\":{\"accesses\":"),
            "{armed_body}"
        );
        assert_ne!(
            flat_body, armed_body,
            "the two memory models are distinct cells"
        );
        assert_eq!(
            service.cache.misses(),
            2,
            "hierarchy folds into the fingerprint, so the cells cache separately"
        );
        // An explicit false is the default model: same fingerprint,
        // same bytes, served from cache.
        let explicit =
            "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05,\"hierarchy\":false}";
        let (status, third, _) = dispatch(&service, &post("/run", explicit));
        assert_eq!(status, 200);
        assert_eq!(flat_body, third);
        assert_eq!(service.cache.misses(), 2);
        // The mem metrics counted only the hierarchy-armed simulation.
        assert!(service.metrics.mem_accesses.load(Ordering::Relaxed) > 0);
        let (_, page, _) = dispatch(&service, &get("/metrics"));
        assert!(page.contains("warped_serve_sim_mem_accesses_total"));
        // A non-boolean value is rejected before any work.
        let bad = "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"hierarchy\":1}";
        let (status, body, _) = dispatch(&service, &post("/run", bad));
        assert_eq!(status, 400);
        assert!(body.contains("true or false"), "{body}");
    }

    #[test]
    fn run_request_to_body_round_trips() {
        let body = "{\"benchmark\":\"bfs\",\"technique\":\"warped-gates\",\
                     \"scale\":0.25,\"idle_detect\":5,\"bet\":14,\"wakeup_delay\":9,\
                     \"hierarchy\":true}";
        let parsed = RunRequest::parse(body.as_bytes()).unwrap();
        let rendered = parsed.to_body();
        let reparsed = RunRequest::parse(rendered.as_bytes()).unwrap();
        assert_eq!(parsed.workload, reparsed.workload);
        assert_eq!(parsed.technique, reparsed.technique);
        assert_eq!(parsed.scale, reparsed.scale);
        assert_eq!(parsed.params, reparsed.params);
        assert_eq!(parsed.hierarchy, reparsed.hierarchy);

        // The trace flavour round-trips the same way.
        let trace = RunRequest::parse(
            b"{\"trace_ref\":\"hotspot\",\"technique\":\"baseline\",\"scale\":0.5}",
        )
        .unwrap();
        let re = RunRequest::parse(trace.to_body().as_bytes()).unwrap();
        assert_eq!(trace.workload, re.workload);
        assert_eq!(re.workload, WorkloadRef::Trace("hotspot".to_owned()));
    }

    #[test]
    fn shutdown_is_signalled_to_the_caller() {
        let service = quick_service();
        let (status, body, handled) = dispatch(&service, &post("/shutdown", ""));
        assert_eq!(status, 200);
        assert!(body.contains("shutting_down"));
        assert_eq!(handled, Handled::ShutdownRequested);
    }

    #[test]
    fn trace_streams_chunked_perfetto_and_rollup() {
        let service = quick_service();
        let (status, body, _) = dispatch(&service, &get("/trace?cell=0&scale=0.05"));
        assert_eq!(status, 200);
        assert!(body.contains("traceEvents"), "{body:.200}");
        assert!(body.ends_with("0\r\n\r\n"), "chunked terminator");

        let (status, body, _) = dispatch(&service, &get("/trace?cell=0&scale=0.05&format=rollup"));
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\":0"), "{body:.200}");

        let (status, _, _) = dispatch(&service, &get("/trace?cell=999"));
        assert_eq!(status, 400);
        let (status, _, _) = dispatch(&service, &get("/trace"));
        assert_eq!(status, 400);
        let (status, _, _) = dispatch(&service, &get("/trace?cell=0&format=nope"));
        assert_eq!(status, 400);
    }

    #[test]
    fn grid_serves_the_committed_table_or_404s() {
        let missing = Service::new(ServiceConfig {
            grid_path: PathBuf::from("/nonexistent/bench_grid.json"),
            ..ServiceConfig::default()
        });
        let (status, body, _) = dispatch(&missing, &get("/grid"));
        assert_eq!(status, 404);
        assert!(body.contains("no_grid"));

        let committed =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_grid.json");
        if committed.exists() {
            let service = Service::new(ServiceConfig {
                grid_path: committed,
                ..ServiceConfig::default()
            });
            let (status, body, _) = dispatch(&service, &get("/grid"));
            assert_eq!(status, 200);
            assert!(body.contains("\"title\":\"bench grid\""));
        }
    }

    /// Writes a small captured corpus (one pre-scaled nw trace plus
    /// one corrupt file) into a fresh temp dir and returns its path.
    fn write_test_corpus(tag: &str) -> PathBuf {
        use warped_trace::{capture, CaptureSpec};
        let dir =
            std::env::temp_dir().join(format!("warped_serve_traces_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Pre-scaled capture, replayed at scale 1.0 — spec scaling
        // happens before barrier-round splitting, so this is the only
        // geometry the native run can be compared against bit-for-bit.
        let spec = Benchmark::Nw.spec().scaled(0.05);
        let kernel = spec.kernel();
        let text = capture(&CaptureSpec {
            name: spec.name,
            kernel: &kernel,
            total_warps: spec.total_warps,
            block_warps: spec.block_warps,
            stagger: spec.body_len as u32,
            waves: spec.launches,
            l1_hit_rate: spec.l1_hit_rate,
            mem_seed: spec.seed ^ 0xdead_beef,
        });
        std::fs::write(dir.join("nw.wgt1"), text).unwrap();
        std::fs::write(dir.join("broken.wgt1"), b"WGT1 broken\nnot a header\n").unwrap();
        dir
    }

    #[test]
    fn trace_cells_serve_from_the_corpus_bit_identically() {
        let dir = write_test_corpus("run");
        let service = Service::new(ServiceConfig {
            trace_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        // One good trace loaded, one corrupt file counted and skipped.
        assert_eq!(service.metrics.traces_loaded.load(Ordering::Relaxed), 1);
        assert_eq!(
            service.metrics.trace_parse_errors.load(Ordering::Relaxed),
            1
        );

        let body = "{\"trace_ref\":\"nw\",\"technique\":\"warped-gates\"}";
        let (status, first, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200, "{first}");
        assert!(first.contains("\"trace_ref\":\"nw\""), "{first}");
        let doc = json::parse(first.trim_end()).unwrap();
        let direct = Experiment::paper_defaults().run_trace(
            &warped_trace::parse_bytes(&std::fs::read(dir.join("nw.wgt1")).unwrap()).unwrap(),
            Technique::WarpedGates,
        );
        assert_eq!(
            doc.get("cycles").unwrap().as_u64(),
            Some(direct.cycles),
            "served trace cells are bit-identical to direct replays"
        );

        // A repeat serves from cache but still counts as a trace cell.
        let (status, second, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200);
        assert_eq!(first, second);
        assert_eq!(
            service.metrics.trace_cells_served.load(Ordering::Relaxed),
            2
        );
        assert_eq!(service.cache.misses(), 1);

        // Trace and benchmark cells mix in one sweep batch.
        let sweep_body = "{\"cells\":[\
             {\"trace_ref\":\"nw\",\"technique\":\"warped-gates\"},\
             {\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":0.05}]}";
        let (status, raw, _) = dispatch(&service, &post("/sweep", sweep_body));
        assert_eq!(status, 200);
        assert_eq!(jsonl_lines(&raw).len(), 2, "{raw:.300}");
        assert_eq!(
            service.metrics.trace_cells_served.load(Ordering::Relaxed),
            3
        );

        // The metrics page exposes all three trace series live.
        let (_, page, _) = dispatch(&service, &get("/metrics"));
        assert!(
            page.contains("warped_serve_trace_workloads_loaded 1"),
            "{page:.500}"
        );
        assert!(page.contains("warped_serve_trace_parse_errors_total 1"));
        assert!(page.contains("warped_serve_trace_cells_served_total 3"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_refs_are_validated_before_any_work() {
        // Without a corpus, every trace_ref is a 400 with a hint.
        let service = quick_service();
        let (status, body, _) = dispatch(
            &service,
            &post("/run", "{\"trace_ref\":\"nw\",\"technique\":\"baseline\"}"),
        );
        assert_eq!(status, 400);
        assert!(body.contains("unknown trace_ref"), "{body}");
        assert!(body.contains("--trace-dir"), "{body}");

        // Naming both workload kinds is rejected, as is naming none.
        let (status, body, _) = dispatch(
            &service,
            &post(
                "/run",
                "{\"benchmark\":\"nw\",\"trace_ref\":\"nw\",\"technique\":\"baseline\"}",
            ),
        );
        assert_eq!(status, 400);
        assert!(body.contains("mutually exclusive"), "{body}");
        let (status, body, _) = dispatch(&service, &post("/run", "{\"technique\":\"baseline\"}"));
        assert_eq!(status, 400);
        assert!(body.contains("missing or non-string"), "{body}");

        // A sweep with one bad trace ref fails whole, naming the cell,
        // before any simulation starts.
        let dir = write_test_corpus("validate");
        let service = Service::new(ServiceConfig {
            trace_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        let body = "[{\"trace_ref\":\"nw\",\"technique\":\"baseline\"},\
                     {\"trace_ref\":\"nope\",\"technique\":\"baseline\"}]";
        let (status, response, _) = dispatch(&service, &post("/sweep", body));
        assert_eq!(status, 400);
        assert!(
            response.contains("cells[1]: unknown trace_ref \\\"nope\\\""),
            "{response}"
        );
        assert!(response.contains("loaded traces: nw"), "{response}");
        assert_eq!(service.cache.misses(), 0, "no simulation ran");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_report_json_parses_and_matches_a_direct_run() {
        let service = quick_service();
        let body = "{\"benchmark\":\"hotspot\",\"technique\":\"warped-gates\",\"scale\":0.05}";
        let (status, response, _) = dispatch(&service, &post("/run", body));
        assert_eq!(status, 200);
        let doc = json::parse(response.trim_end()).unwrap();
        let direct = Experiment::paper_defaults()
            .with_scale(0.05)
            .run(&Benchmark::Hotspot.spec(), Technique::WarpedGates);
        assert_eq!(
            doc.get("cycles").unwrap().as_u64(),
            Some(direct.cycles),
            "service runs are bit-identical to direct runs"
        );
        assert_eq!(
            doc.get("ff_cycles").unwrap().as_u64(),
            Some(direct.stats.fast_forwarded_cycles)
        );
        assert_eq!(
            doc.get("gating")
                .unwrap()
                .get("INT")
                .unwrap()
                .get("gate_events")
                .unwrap()
                .as_u64(),
            Some(direct.gating_of(UnitType::Int).gate_events)
        );
    }
}
