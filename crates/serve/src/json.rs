//! A minimal JSON value parser for request bodies.
//!
//! The workspace is std-only by design, so the service parses its
//! (small, trusted-size-capped) request bodies with a recursive-descent
//! parser over a plain [`JsonValue`] tree. This is deliberately *not* a
//! general-purpose JSON library: numbers collapse to `f64` (plenty for
//! gating parameters and scale factors), object keys keep file order,
//! and the nesting depth is capped so a hostile body cannot overflow
//! the stack.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match); `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that
    /// round-trips exactly (so `3.5` or `-1` return `None`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The object's keys in source order (empty for non-objects).
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            JsonValue::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

/// Why a body failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What the parser expected.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 32;

/// Parses one JSON document (and nothing else: trailing non-whitespace
/// bytes are an error).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        b: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.ws();
    if p.pos != p.b.len() {
        return Err(p.err("trailing bytes after the document"));
    }
    Ok(v)
}

/// Escapes a string for embedding in emitted JSON.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn lit(&mut self, t: &str) -> bool {
        if self.b[self.pos..].starts_with(t.as_bytes()) {
            self.pos += t.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.ws();
        match self.b.get(self.pos) {
            Some(b'n') if self.lit("null") => Ok(JsonValue::Null),
            Some(b't') if self.lit("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.lit("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.lit("]") {
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    if self.lit(",") {
                        continue;
                    }
                    if self.lit("]") {
                        return Ok(JsonValue::Arr(items));
                    }
                    return Err(self.err("expected ',' or ']'"));
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.ws();
                if self.lit("}") {
                    return Ok(JsonValue::Obj(members));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    if !self.lit(":") {
                        return Err(self.err("expected ':'"));
                    }
                    members.push((key, self.value(depth + 1)?));
                    self.ws();
                    if self.lit(",") {
                        continue;
                    }
                    if self.lit("}") {
                        return Ok(JsonValue::Obj(members));
                    }
                    return Err(self.err("expected ',' or '}'"));
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|n: &f64| n.is_finite())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if !self.lit("\"") {
            return Err(self.err("expected '\"'"));
        }
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.b.len() && (self.b[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_run_request_shape() {
        let v = parse(
            "{\"benchmark\":\"nw\",\"technique\":\"baseline\",\"scale\":1.0,\
             \"bet\":14,\"nested\":{\"a\":[1,2,null,true]}}",
        )
        .unwrap();
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("nw"));
        assert_eq!(v.get("scale").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("bet").unwrap().as_u64(), Some(14));
        assert_eq!(
            v.get("nested").unwrap().get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0),
                JsonValue::Null,
                JsonValue::Bool(true),
            ]))
        );
        assert_eq!(v.keys()[0], "benchmark");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("14").unwrap().as_u64(), Some(14));
    }

    #[test]
    fn rejects_malformed_bodies() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":}",
            "[1,]",
            "{} trailing",
            "\"unterminated",
            "nul",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "a\"b\\c\nd\te";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }
}
