//! The TCP front end: accept loop, bounded worker pool, keep-alive
//! connection reuse, and graceful stop.
//!
//! Requests are served by a [`warped_sim::parallel::Pool`] — the same
//! bounded pool the sweep engine uses — so the service inherits the
//! workspace-wide `WARPED_JOBS` sizing convention and its
//! backpressure: when every worker is busy and the queue is full,
//! `accept` blocks instead of piling up unbounded work.
//!
//! Persistent connections must not pin workers, so the transport is
//! three threads plus the pool:
//!
//! * the **acceptor** owns the listener and feeds fresh connections to
//!   the dispatcher over a bounded channel (that bound is the
//!   backpressure above);
//! * the **dispatcher** owns the pool and submits every incoming
//!   connection — fresh or revived — as one pool job;
//! * the **reaper** holds idle keep-alive sockets in non-blocking
//!   mode, polling them on a short tick: a socket with bytes waiting
//!   is promoted back to the dispatcher, one idle past
//!   [`ServerConfig::keep_alive_timeout`] is closed and counted.
//!
//! A worker serves requests back-to-back off one socket: pipelined
//! requests (bytes already buffered behind the previous request) are
//! answered immediately, and after a quiet response the worker lingers
//! a few milliseconds before parking the socket with the reaper — a
//! hot client keeps its worker at full speed and never pays the poll
//! tick, while an idle one costs no worker at all.
//!
//! Shutdown is cooperative and needs no platform signal plumbing: a
//! shared flag is raised (by [`ServerHandle::shutdown`] or by a
//! `POST /shutdown` request), a throwaway self-connection wakes the
//! blocking `accept`, the acceptor and reaper drop their dispatcher
//! channels, and the dispatcher joins the pool — which drains every
//! in-flight request before the threads exit.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use warped_sim::parallel::{worker_count, Pool};

use crate::http::{read_request, write_response, write_response_with, HttpError};
use crate::service::{Handled, Service, ServiceConfig};

/// How long a worker waits for the next request before parking the
/// socket with the reaper. Long enough that a client turning requests
/// around back-to-back stays on its worker; short enough that a think
/// pause frees the worker almost immediately.
const LINGER: Duration = Duration::from_millis(5);

/// The reaper's poll tick. A parked connection waits at most this long
/// between sending its next request and being promoted to a worker.
const REAP_TICK: Duration = Duration::from_millis(2);

/// Requests one worker serves off a single connection before parking
/// it (buffer permitting), so one fast client cannot monopolise a
/// worker while others queue.
const BURST: u64 = 64;

/// Transport configuration for [`spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker-pool size (requests served concurrently).
    pub workers: usize,
    /// Per-request read timeout (a stalled client cannot pin a worker
    /// forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout.
    pub write_timeout: Option<Duration>,
    /// How long an idle keep-alive socket may park before the reaper
    /// closes it.
    pub keep_alive_timeout: Duration,
    /// Accepted-connection queue depth before the acceptor sheds with
    /// a `503`; `None` sizes it `max(workers * 4, 64)` — the floor
    /// keeps normal connection churn on a small box from reading as
    /// overload.
    pub dispatch_queue: Option<usize>,
    /// The service behind the transport.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: worker_count(),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            keep_alive_timeout: Duration::from_secs(5),
            dispatch_queue: None,
            service: ServiceConfig::default(),
        }
    }
}

/// One live connection, carried between the worker pool and the
/// reaper. `served` survives parking so reuse is counted per
/// connection, not per visit to a worker.
struct Conn {
    stream: TcpStream,
    /// Requests answered on this socket so far.
    served: u64,
}

/// What every worker job needs; shared behind an `Arc` so a job is one
/// allocation. The `park` sender doubles as the reaper's lifetime: the
/// reaper exits when the dispatcher and every outstanding job have
/// dropped theirs.
struct Ctx {
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    addr: SocketAddr,
    park: Sender<Conn>,
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`shutdown`](ServerHandle::shutdown) or [`join`](ServerHandle::join).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    service: Arc<Service>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the transport (for in-process inspection).
    #[must_use]
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Raises the shutdown flag, wakes the accept loop, and blocks
    /// until every in-flight request has drained.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; if the
        // listener is already gone, there is nothing to wake.
        let _ = TcpStream::connect(self.addr);
        self.join();
    }

    /// Blocks until the server stops (e.g. via `POST /shutdown`).
    pub fn join(&mut self) {
        // Exit order matters: the acceptor drops its dispatcher sender
        // first, the reaper follows on its next tick, and only then
        // can the dispatcher's `recv` disconnect so it joins the pool.
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Binds the listener and spawns the accept/dispatch/reap threads.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(Service::new(config.service.clone()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = config.workers.max(1);

    // Acceptor → dispatcher (bounded: this is the accept backpressure)
    // and reaper → dispatcher share one channel; workers → reaper is
    // unbounded so parking never blocks a worker.
    let queue = config.dispatch_queue.unwrap_or((workers * 4).max(64));
    let (dispatch_tx, dispatch_rx) = mpsc::sync_channel::<Conn>(queue);
    let (park_tx, park_rx) = mpsc::channel::<Conn>();

    let ctx = Arc::new(Ctx {
        service: Arc::clone(&service),
        shutdown: Arc::clone(&shutdown),
        read_timeout: config.read_timeout,
        write_timeout: config.write_timeout,
        addr,
        park: park_tx,
    });

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let dispatch_tx = dispatch_tx.clone();
        let service = Arc::clone(&service);
        std::thread::Builder::new()
            .name("warped-serve-accept".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Load shedding: a full dispatch queue answers a
                    // typed 503 immediately instead of blocking the
                    // acceptor (which would stall every later client,
                    // including /healthz probes).
                    match dispatch_tx.try_send(Conn { stream, served: 0 }) {
                        Ok(()) => {}
                        Err(mpsc::TrySendError::Full(conn)) => shed(&service, conn.stream),
                        Err(mpsc::TrySendError::Disconnected(_)) => break,
                    }
                }
            })?
    };

    let dispatcher = {
        let ctx = Arc::clone(&ctx);
        std::thread::Builder::new()
            .name("warped-serve-dispatch".to_owned())
            .spawn(move || {
                let mut pool = Pool::new(workers, workers * 4);
                // Disconnects once the acceptor and the reaper have
                // both dropped their senders — i.e. on shutdown.
                while let Ok(conn) = dispatch_rx.recv() {
                    let ctx = Arc::clone(&ctx);
                    if pool
                        .submit(move || {
                            let _ = serve_connection(&ctx, conn);
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                // Joins the workers: every accepted request finishes
                // before the dispatcher exits.
                pool.shutdown();
            })?
    };

    let reaper = {
        let shutdown = Arc::clone(&shutdown);
        let service = Arc::clone(&service);
        let keep_alive_timeout = config.keep_alive_timeout;
        std::thread::Builder::new()
            .name("warped-serve-reap".to_owned())
            .spawn(move || {
                reap_loop(
                    &park_rx,
                    dispatch_tx,
                    &shutdown,
                    &service,
                    keep_alive_timeout,
                );
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        threads: vec![acceptor, dispatcher, reaper],
        service,
    })
}

/// Sheds one connection the dispatch queue has no room for: a typed
/// `503` with `Retry-After` on a best-effort write, then close. The
/// client learns to back off instead of hanging in the backlog.
fn shed(service: &Service, stream: TcpStream) {
    service
        .metrics
        .shed_requests
        .fetch_add(1, Ordering::Relaxed);
    service.metrics.count_status(503);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut writer = BufWriter::new(stream);
    let _ = write_response_with(
        &mut writer,
        503,
        "application/json",
        &[("Retry-After", "1")],
        b"{\"error\":{\"kind\":\"overloaded\",\"message\":\"dispatch queue is full; retry shortly\"}}\n",
        false,
    );
}

/// The reaper: parks idle keep-alive sockets in non-blocking mode,
/// promotes the readable ones back to the dispatcher, and closes the
/// ones idle past the timeout (or everything, once shutdown starts).
fn reap_loop(
    park_rx: &Receiver<Conn>,
    dispatch_tx: SyncSender<Conn>,
    shutdown: &AtomicBool,
    service: &Service,
    keep_alive_timeout: Duration,
) {
    let mut dispatch_tx = Some(dispatch_tx);
    let mut parked: Vec<(Conn, Instant)> = Vec::new();
    loop {
        // Tick fast while watching sockets, slow when idle. The idle
        // tick still has to be bounded: the shutdown flag is only
        // observed here, and the dispatcher exit waits on this thread
        // dropping its sender.
        match park_rx.recv_timeout(if parked.is_empty() {
            Duration::from_millis(50)
        } else {
            REAP_TICK
        }) {
            Ok(conn) => parked.push((conn, Instant::now())),
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Dispatcher and all workers are gone; nothing can
                // park or be promoted anymore.
                break;
            }
        }
        // Drain whatever else queued behind the first one.
        while let Ok(conn) = park_rx.try_recv() {
            parked.push((conn, Instant::now()));
        }

        if shutdown.load(Ordering::SeqCst) {
            // Close every parked socket and release the dispatcher
            // (it exits when all its senders are gone). Keep looping
            // to drain late parkers until the channel disconnects.
            parked.clear();
            dispatch_tx = None;
            continue;
        }

        let mut i = 0;
        while i < parked.len() {
            let (conn, since) = &parked[i];
            let mut probe = [0u8; 1];
            let verdict = match conn.stream.peek(&mut probe) {
                Ok(0) => Verdict::Close, // peer hung up
                Ok(_) => Verdict::Promote,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if since.elapsed() >= keep_alive_timeout {
                        Verdict::Reap
                    } else {
                        Verdict::Keep
                    }
                }
                Err(_) => Verdict::Close,
            };
            match verdict {
                Verdict::Keep => i += 1,
                Verdict::Close => {
                    parked.swap_remove(i);
                }
                Verdict::Reap => {
                    service
                        .metrics
                        .reaped_idle_sockets
                        .fetch_add(1, Ordering::Relaxed);
                    parked.swap_remove(i);
                }
                Verdict::Promote => {
                    let (conn, _) = parked.swap_remove(i);
                    if conn.stream.set_nonblocking(false).is_err() {
                        continue;
                    }
                    // A full dispatcher queue blocks here — the same
                    // backpressure the acceptor feels. A `None` sender
                    // means we are shutting down: drop the socket.
                    if let Some(tx) = &dispatch_tx {
                        let _ = tx.send(conn);
                    }
                }
            }
        }
    }
}

enum Verdict {
    Keep,
    Close,
    Reap,
    Promote,
}

/// What to do with the connection after a lingering read.
enum Linger {
    /// The next request's bytes arrived.
    Data,
    /// The peer closed (or errored); drop the connection.
    Closed,
    /// Nothing yet: hand the socket to the reaper.
    Idle,
}

/// Waits [`LINGER`] for more bytes without consuming anything.
fn linger(reader: &mut BufReader<TcpStream>) -> Linger {
    let stream = reader.get_ref();
    if stream.set_read_timeout(Some(LINGER)).is_err() {
        return Linger::Closed;
    }
    match reader.fill_buf() {
        Ok([]) => Linger::Closed,
        Ok(_) => Linger::Data,
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Linger::Idle
        }
        Err(_) => Linger::Closed,
    }
}

/// Serves requests off one connection until it goes quiet (→ parked),
/// closes, or asks for shutdown.
fn serve_connection(ctx: &Ctx, mut conn: Conn) -> io::Result<()> {
    conn.stream.set_read_timeout(ctx.read_timeout)?;
    conn.stream.set_write_timeout(ctx.write_timeout)?;
    let mut reader = BufReader::new(conn.stream.try_clone()?);
    let mut writer = BufWriter::new(conn.stream.try_clone()?);
    let metrics = &ctx.service.metrics;
    let mut burst = 0u64;
    loop {
        match read_request(&mut reader) {
            // Clean close between requests — e.g. the shutdown probe.
            Ok(None) => return Ok(()),
            Ok(Some(request)) => {
                conn.served += 1;
                burst += 1;
                if conn.served == 2 {
                    metrics.connections_reused.fetch_add(1, Ordering::Relaxed);
                }
                // Promise reuse only if the client wants it and the
                // server is not stopping.
                let keep_alive = request.keep_alive && !ctx.shutdown.load(Ordering::SeqCst);
                let handled = ctx.service.handle(&request, &mut writer, keep_alive)?;
                writer.flush()?;
                if handled == Handled::ShutdownRequested {
                    ctx.shutdown.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it observes the flag.
                    let _ = TcpStream::connect(ctx.addr);
                    return Ok(());
                }
                if !keep_alive {
                    return Ok(());
                }
                // The next request may already sit in the buffer
                // (pipelining): serve it without touching the socket.
                if !reader.buffer().is_empty() {
                    metrics.pipelined_requests.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if burst >= BURST {
                    // Fairness: this client had a full turn; requeue
                    // through the reaper so waiting connections get a
                    // worker. (Only possible buffer-empty, which holds
                    // here — parking forgets BufReader contents.)
                    return park(ctx, conn);
                }
                match linger(&mut reader) {
                    Linger::Data => {
                        // Restore the real timeout for the next parse.
                        conn.stream.set_read_timeout(ctx.read_timeout)?;
                        continue;
                    }
                    Linger::Closed => return Ok(()),
                    Linger::Idle => return park(ctx, conn),
                }
            }
            Err(HttpError::Bad(status, reason)) => {
                // Framing is broken; answer and close (no way to know
                // where the next request starts).
                ctx.service.metrics.count_status(status);
                let body = format!(
                    "{{\"error\":{{\"kind\":\"bad_request\",\"message\":\"{}\"}}}}\n",
                    crate::json::escape(&reason)
                );
                return write_response(
                    &mut writer,
                    status,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
            }
            // The peer vanished mid-request; nothing to answer.
            Err(HttpError::Io(e)) => return Err(e),
        }
    }
}

/// Hands the connection to the reaper (closing it if the reaper is
/// gone, which only happens during shutdown).
fn park(ctx: &Ctx, conn: Conn) -> io::Result<()> {
    conn.stream.set_nonblocking(true)?;
    let _ = ctx.park.send(conn);
    Ok(())
}
