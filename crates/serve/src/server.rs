//! The TCP front end: accept loop, bounded worker pool, graceful stop.
//!
//! Connections are handed to a [`warped_sim::parallel::Pool`] — the
//! same bounded pool the sweep engine uses — so the service inherits
//! the workspace-wide `WARPED_JOBS` sizing convention and its
//! backpressure: when every worker is busy and the queue is full,
//! `accept` blocks instead of piling up unbounded work.
//!
//! Shutdown is cooperative and needs no platform signal plumbing: a
//! shared flag is raised (by [`ServerHandle::shutdown`] or by a
//! `POST /shutdown` request), then a throwaway self-connection wakes
//! the blocking `accept` so the loop observes the flag, stops
//! accepting, and joins the pool — which drains every in-flight
//! request before the listener thread exits.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use warped_sim::parallel::{worker_count, Pool};

use crate::http::{read_request, write_response, HttpError};
use crate::service::{Handled, Service, ServiceConfig};

/// Transport configuration for [`spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker-pool size (connections served concurrently).
    pub workers: usize,
    /// Per-connection read timeout (a stalled client cannot pin a
    /// worker forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout.
    pub write_timeout: Option<Duration>,
    /// The service behind the transport.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_owned(),
            workers: worker_count(),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            service: ServiceConfig::default(),
        }
    }
}

/// A running server. Dropping the handle does *not* stop it; call
/// [`shutdown`](ServerHandle::shutdown) or [`join`](ServerHandle::join).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    service: Arc<Service>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the transport (for in-process inspection).
    #[must_use]
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Raises the shutdown flag, wakes the accept loop, and blocks
    /// until every in-flight request has drained.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; if the
        // listener is already gone, there is nothing to wake.
        let _ = TcpStream::connect(self.addr);
        self.join();
    }

    /// Blocks until the server stops (e.g. via `POST /shutdown`).
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Binds the listener and spawns the accept loop.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn spawn(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(Service::new(config.service.clone()));
    let shutdown = Arc::new(AtomicBool::new(false));

    let accept_thread = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let workers = config.workers.max(1);
        let (read_timeout, write_timeout) = (config.read_timeout, config.write_timeout);
        std::thread::Builder::new()
            .name("warped-serve-accept".to_owned())
            .spawn(move || {
                let mut pool = Pool::new(workers, workers * 4);
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let service = Arc::clone(&service);
                    let shutdown = Arc::clone(&shutdown);
                    let submitted = pool.submit(move || {
                        let _ = serve_connection(
                            &service,
                            stream,
                            read_timeout,
                            write_timeout,
                            &shutdown,
                            addr,
                        );
                    });
                    if submitted.is_err() {
                        break;
                    }
                }
                // Joins the workers: every accepted request finishes
                // before the listener thread exits.
                pool.shutdown();
            })?
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        service,
    })
}

/// One connection, one exchange (every response closes).
fn serve_connection(
    service: &Service,
    stream: TcpStream,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) -> io::Result<()> {
    stream.set_read_timeout(read_timeout)?;
    stream.set_write_timeout(write_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    match read_request(&mut reader) {
        // Clean immediate close — e.g. the shutdown wake-up probe.
        Ok(None) => Ok(()),
        Ok(Some(request)) => {
            let handled = service.handle(&request, &mut writer)?;
            writer.flush()?;
            if handled == Handled::ShutdownRequested {
                shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
            }
            Ok(())
        }
        Err(HttpError::Bad(status, reason)) => {
            service.metrics.count_status(status);
            let body = format!(
                "{{\"error\":{{\"kind\":\"bad_request\",\"message\":\"{}\"}}}}\n",
                crate::json::escape(&reason)
            );
            write_response(&mut writer, status, "application/json", body.as_bytes())
        }
        // The peer vanished mid-request; nothing to answer.
        Err(HttpError::Io(e)) => Err(e),
    }
}
