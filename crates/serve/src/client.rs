//! A minimal blocking HTTP/1.1 client.
//!
//! Enough to exercise the server in-process (the integration suite,
//! `verify.sh`'s smoke step) without external tooling: one request per
//! connection, `Content-Length` and chunked response bodies.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{read_chunked_body, HttpError};

/// A parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn to_io(e: HttpError) -> io::Error {
    match e {
        HttpError::Io(e) => e,
        HttpError::Bad(_, reason) => io::Error::new(io::ErrorKind::InvalidData, reason),
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// Returns transport errors and malformed-response errors.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n"
    )?;
    match body {
        Some(bytes) => {
            write!(
                stream,
                "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                bytes.len()
            )?;
            stream.write_all(bytes)?;
        }
        None => write!(stream, "\r\n")?,
    }
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }

    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        read_chunked_body(&mut reader).map_err(to_io)?
    } else if let Some(len) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        let mut body = vec![0u8; len];
        io::Read::read_exact(&mut reader, &mut body)?;
        body
    } else {
        let mut body = Vec::new();
        io::Read::read_to_end(&mut reader, &mut body)?;
        body
    };

    Ok(Response {
        status,
        headers,
        body,
    })
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, None)
}

/// `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> io::Result<Response> {
    request(addr, "POST", path, Some(body.as_bytes()))
}
