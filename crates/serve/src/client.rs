//! A minimal blocking HTTP/1.1 client with connection reuse.
//!
//! [`Client`] keeps one socket open across sequential requests
//! (keep-alive aware: it drops the connection when either side said
//! `Connection: close`), retries exactly once on a stale pooled
//! connection (the server may have reaped it between requests), and
//! decodes both fixed-length and chunked response bodies — including
//! incremental JSONL streaming for `/sweep`. The free functions
//! ([`get`], [`post_json`]) remain for one-shot exchanges.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::http::{read_chunked_stream, HttpError};

/// A parsed response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Headers with lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The (de-chunked) body.
    pub body: Vec<u8>,
}

impl Response {
    /// First header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn to_io(e: HttpError) -> io::Error {
    match e {
        HttpError::Io(e) => e,
        HttpError::Bad(_, reason) => io::Error::new(io::ErrorKind::InvalidData, reason),
    }
}

/// A blocking HTTP/1.1 client bound to one server address, reusing a
/// single keep-alive connection across sequential requests.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    keep_alive: bool,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    connect_timeout: Option<Duration>,
    /// Extra request headers sent with every request (e.g. the
    /// cluster's forwarding loop guard).
    headers: Vec<(String, String)>,
    conn: Option<BufReader<TcpStream>>,
    reused: u64,
    connected: u64,
}

impl Client {
    /// A keep-alive client for `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            keep_alive: true,
            read_timeout: Some(Duration::from_secs(600)),
            write_timeout: Some(Duration::from_secs(30)),
            connect_timeout: None,
            headers: Vec::new(),
            conn: None,
            reused: 0,
            connected: 0,
        }
    }

    /// Disables connection reuse: every request opens a fresh socket
    /// and asks the server to close it (the loadgen's `--no-keepalive`
    /// A/B mode).
    #[must_use]
    pub fn with_keep_alive(mut self, keep_alive: bool) -> Self {
        self.keep_alive = keep_alive;
        self
    }

    /// Overrides the per-request read timeout.
    #[must_use]
    pub fn with_read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Bounds how long opening a fresh socket may take (`None` uses
    /// the OS default, which can be minutes against a dead host).
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Adds a header sent with every request on this client.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// Requests that reused an already-open connection so far.
    #[must_use]
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Sockets opened so far.
    #[must_use]
    pub fn connected(&self) -> u64 {
        self.connected
    }

    fn connect(&mut self) -> io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = match self.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(&self.addr, timeout)?,
                None => TcpStream::connect(self.addr)?,
            };
            stream.set_read_timeout(self.read_timeout)?;
            stream.set_write_timeout(self.write_timeout)?;
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
            self.connected += 1;
        } else {
            self.reused += 1;
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    fn send(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<()> {
        let addr = self.addr;
        let connection = if self.keep_alive {
            "keep-alive"
        } else {
            "close"
        };
        let mut head =
            format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: {connection}\r\n");
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        let reader = self.connect()?;
        let stream = reader.get_mut();
        match body {
            Some(bytes) => {
                head.push_str(&format!(
                    "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                    bytes.len()
                ));
                stream.write_all(head.as_bytes())?;
                stream.write_all(bytes)?;
            }
            None => {
                head.push_str("\r\n");
                stream.write_all(head.as_bytes())?;
            }
        }
        stream.flush()
    }

    /// Sends one request and reads the full response, transparently
    /// reconnecting once if a pooled connection turned out stale.
    ///
    /// # Errors
    ///
    /// Returns transport errors and malformed-response errors.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<Response> {
        let mut response = None;
        self.exchange(method, path, body, |status, headers, r| {
            let body = read_body(headers, r)?;
            response = Some(Response {
                status,
                headers: headers.to_vec(),
                body,
            });
            Ok(())
        })?;
        Ok(response.expect("exchange succeeded"))
    }

    /// Sends one request and hands each chunk of a streaming (chunked)
    /// response to `sink` as it arrives; fixed-length bodies arrive as
    /// one piece. Returns the status code.
    ///
    /// # Errors
    ///
    /// Returns transport errors and malformed-response errors.
    pub fn request_stream(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        mut sink: impl FnMut(&[u8]),
    ) -> io::Result<u16> {
        let mut code = 0;
        self.exchange(method, path, body, |status, headers, r| {
            code = status;
            if is_chunked(headers) {
                read_chunked_stream(r, &mut sink).map_err(to_io)
            } else {
                let bytes = read_body(headers, r)?;
                sink(&bytes);
                Ok(())
            }
        })?;
        Ok(code)
    }

    /// One full exchange with stale-connection retry: sending on (or
    /// reading the status line of) a *reused* connection that the
    /// server already closed reconnects and retries once. Once any
    /// response byte has been consumed the error is real and
    /// propagates.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        mut consume: impl FnMut(u16, &[(String, String)], &mut BufReader<TcpStream>) -> io::Result<()>,
    ) -> io::Result<()> {
        for attempt in 0..2 {
            let was_pooled = self.conn.is_some();
            let head = self.send(method, path, body).and_then(|()| {
                let reader = self.conn.as_mut().expect("connected in send");
                read_head(reader)
            });
            let (status, headers) = match head {
                Ok(head) => head,
                Err(e) => {
                    self.conn = None;
                    // Only a pooled connection can be stale; a fresh
                    // socket failing is a real error.
                    if was_pooled && attempt == 0 {
                        continue;
                    }
                    return Err(e);
                }
            };
            let reader = self.conn.as_mut().expect("connected in send");
            let result = consume(status, &headers, reader);
            let server_closes = headers
                .iter()
                .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("close"));
            if result.is_err() || server_closes || !self.keep_alive {
                self.conn = None;
            }
            return result;
        }
        unreachable!("retry loop always returns");
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get(&mut self, path: &str) -> io::Result<Response> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post_json(&mut self, path: &str, body: &str) -> io::Result<Response> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// `POST path` streaming a chunked JSONL response: `on_line` is
    /// called once per complete line, as soon as it arrives. Returns
    /// the status code.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn post_stream_lines(
        &mut self,
        path: &str,
        body: &str,
        mut on_line: impl FnMut(&str),
    ) -> io::Result<u16> {
        let mut pending = Vec::new();
        let status = self.request_stream("POST", path, Some(body.as_bytes()), |chunk| {
            pending.extend_from_slice(chunk);
            while let Some(nl) = pending.iter().position(|b| *b == b'\n') {
                let line: Vec<u8> = pending.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line);
                let text = text.trim_end_matches('\n');
                if !text.is_empty() {
                    on_line(text);
                }
            }
        })?;
        if !pending.is_empty() {
            on_line(String::from_utf8_lossy(&pending).trim_end_matches('\n'));
        }
        Ok(status)
    }
}

/// Reads the status line and headers of one response.
fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, Vec<(String, String)>)> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    let status: u16 = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    Ok((status, headers))
}

fn is_chunked(headers: &[(String, String)]) -> bool {
    headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"))
}

/// Reads a response body delimited per its headers. A body with
/// neither `Transfer-Encoding: chunked` nor `Content-Length` reads to
/// EOF — only valid on a closing connection.
fn read_body(
    headers: &[(String, String)],
    reader: &mut BufReader<TcpStream>,
) -> io::Result<Vec<u8>> {
    if is_chunked(headers) {
        let mut body = Vec::new();
        read_chunked_stream(reader, |c| body.extend_from_slice(c)).map_err(to_io)?;
        Ok(body)
    } else if let Some(len) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        let mut body = vec![0u8; len];
        io::Read::read_exact(reader, &mut body)?;
        Ok(body)
    } else {
        let mut body = Vec::new();
        io::Read::read_to_end(reader, &mut body)?;
        Ok(body)
    }
}

/// One-shot `GET path` over a fresh closing connection.
///
/// # Errors
///
/// See [`Client::request`].
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    Client::new(addr).with_keep_alive(false).get(path)
}

/// One-shot `POST path` with a JSON body over a fresh closing
/// connection.
///
/// # Errors
///
/// See [`Client::request`].
pub fn post_json(addr: SocketAddr, path: &str, body: &str) -> io::Result<Response> {
    Client::new(addr)
        .with_keep_alive(false)
        .post_json(path, body)
}
