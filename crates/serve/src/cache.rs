//! Sharded, content-addressed result cache with single-flight
//! deduplication and an LRU byte budget.
//!
//! The experiment engine is deterministic, so a response body is a pure
//! function of its request's canonical fingerprint
//! ([`warped_gates::fingerprint::cell_fingerprint`]). The cache maps
//! `fingerprint → response bytes` and guarantees **single-flight**: when
//! N identical requests arrive concurrently, exactly one computes and
//! the other N−1 block on the in-flight entry and reuse its bytes
//! (counted as hits — they cost no simulation). Failed computations are
//! *not* cached; every waiter sees the error and the next request
//! retries fresh, so a transient fault cannot poison a cache line.
//!
//! Keys shard by their low bits so concurrent requests for different
//! cells rarely contend on a lock, and each shard evicts its
//! least-recently-used *ready* entries once its share of the byte
//! budget is exceeded (in-flight entries are never evicted).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The entry was ready; no work ran.
    Hit,
    /// Another request was already computing it; this one waited.
    /// Counts as a hit — it cost no simulation.
    Coalesced,
    /// This request computed the entry.
    Miss,
}

struct Flight {
    done: Mutex<Option<Result<Arc<Vec<u8>>, String>>>,
    cv: Condvar,
}

enum Entry {
    Ready { bytes: Arc<Vec<u8>>, last_used: u64 },
    InFlight(Arc<Flight>),
}

struct Shard {
    entries: HashMap<u64, Entry>,
    bytes: usize,
}

/// The cache. Cheap to share behind an `Arc`.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    budget_per_shard: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("shards", &self.shards.len())
            .field("budget_per_shard", &self.budget_per_shard)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish_non_exhaustive()
    }
}

impl ResultCache {
    /// A cache of `shards` shards splitting `byte_budget` evenly.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize, byte_budget: usize) -> Self {
        assert!(shards > 0, "cache needs at least one shard");
        ResultCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        bytes: 0,
                    })
                })
                .collect(),
            budget_per_shard: byte_budget.div_ceil(shards).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        &self.shards[(key as usize) % self.shards.len()]
    }

    fn lock(&self, key: u64) -> std::sync::MutexGuard<'_, Shard> {
        self.shard(key).lock().expect("cache shard poisoned")
    }

    /// Total hits so far (ready hits plus coalesced waiters).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses so far (lookups that ran the computation).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Ready entries evicted under byte pressure so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes currently held by ready entries.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// Looks `key` up, computing it with `compute` on a miss.
    ///
    /// `compute` runs *without* the shard lock held, so long
    /// simulations never block unrelated lookups. Concurrent callers
    /// with the same key coalesce onto one computation.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error to the computing caller and every
    /// coalesced waiter; the error is not cached.
    pub fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<Vec<u8>, String>,
    ) -> (Result<Arc<Vec<u8>>, String>, Outcome) {
        let flight = {
            let mut shard = self.lock(key);
            match shard.entries.get_mut(&key) {
                Some(Entry::Ready { bytes, last_used }) => {
                    *last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (Ok(Arc::clone(bytes)), Outcome::Hit);
                }
                Some(Entry::InFlight(flight)) => Some(Arc::clone(flight)),
                None => {
                    let flight = Arc::new(Flight {
                        done: Mutex::new(None),
                        cv: Condvar::new(),
                    });
                    shard
                        .entries
                        .insert(key, Entry::InFlight(Arc::clone(&flight)));
                    None
                }
            }
        };

        if let Some(flight) = flight {
            // Someone else is computing: wait for their verdict.
            let mut done = flight.done.lock().expect("flight poisoned");
            while done.is_none() {
                done = flight.cv.wait(done).expect("flight poisoned");
            }
            let result = done.clone().expect("checked above");
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (result, Outcome::Coalesced);
        }

        // This caller owns the flight.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let result = compute().map(Arc::new);
        {
            let mut shard = self.lock(key);
            let Some(Entry::InFlight(flight)) = shard.entries.remove(&key) else {
                unreachable!("flight entry vanished while computing");
            };
            if let Ok(bytes) = &result {
                shard.bytes += bytes.len();
                shard.entries.insert(
                    key,
                    Entry::Ready {
                        bytes: Arc::clone(bytes),
                        last_used: self.tick.fetch_add(1, Ordering::Relaxed),
                    },
                );
                self.evict_locked(&mut shard);
            }
            let mut done = flight.done.lock().expect("flight poisoned");
            *done = Some(result.clone());
            flight.cv.notify_all();
        }
        (result, Outcome::Miss)
    }

    /// Evicts least-recently-used ready entries until the shard fits
    /// its budget (must hold the shard lock).
    fn evict_locked(&self, shard: &mut Shard) {
        while shard.bytes > self.budget_per_shard {
            let victim = shard
                .entries
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { last_used, .. } => Some((*last_used, *k)),
                    Entry::InFlight(_) => None,
                })
                .min();
            let Some((_, key)) = victim else {
                break; // only in-flight entries left
            };
            if let Some(Entry::Ready { bytes, .. }) = shard.entries.remove(&key) {
                shard.bytes -= bytes.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn hit_after_miss_returns_the_same_bytes() {
        let cache = ResultCache::new(4, 1 << 20);
        let (a, o1) = cache.get_or_compute(7, || Ok(b"abc".to_vec()));
        let (b, o2) = cache.get_or_compute(7, || panic!("must not recompute"));
        assert_eq!(o1, Outcome::Miss);
        assert_eq!(o2, Outcome::Hit);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn concurrent_identical_lookups_single_flight() {
        let cache = Arc::new(ResultCache::new(4, 1 << 20));
        let computed = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(16));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (cache, computed, barrier) = (
                    Arc::clone(&cache),
                    Arc::clone(&computed),
                    Arc::clone(&barrier),
                );
                std::thread::spawn(move || {
                    barrier.wait();
                    let (result, _) = cache.get_or_compute(42, || {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window so waiters really wait.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        Ok(b"payload".to_vec())
                    });
                    result.unwrap()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            computed.load(Ordering::SeqCst),
            1,
            "exactly one computation"
        );
        assert!(results.iter().all(|r| **r == b"payload".to_vec()));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 15, "waiters count as hits");
    }

    #[test]
    fn errors_are_not_cached_and_propagate_to_waiters() {
        let cache = ResultCache::new(2, 1 << 20);
        let (r, o) = cache.get_or_compute(9, || Err("boom".to_owned()));
        assert_eq!(o, Outcome::Miss);
        assert_eq!(r.unwrap_err(), "boom");
        // The next lookup recomputes (and can succeed).
        let (r2, o2) = cache.get_or_compute(9, || Ok(b"ok".to_vec()));
        assert_eq!(o2, Outcome::Miss);
        assert_eq!(*r2.unwrap(), b"ok".to_vec());
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let cache = ResultCache::new(1, 100);
        for key in 0..10u64 {
            let (r, _) = cache.get_or_compute(key, || Ok(vec![0u8; 30]));
            r.unwrap();
        }
        assert!(cache.bytes() <= 100, "budget respected: {}", cache.bytes());
        assert!(cache.evictions() >= 6);
        // Recently used keys survive; the oldest were evicted.
        let (_, outcome) = cache.get_or_compute(9, || Ok(vec![1u8; 30]));
        assert_eq!(outcome, Outcome::Hit);
        let (_, outcome) = cache.get_or_compute(0, || Ok(vec![1u8; 30]));
        assert_eq!(outcome, Outcome::Miss, "oldest entry was evicted");
    }

    #[test]
    fn different_keys_do_not_coalesce() {
        let cache = ResultCache::new(8, 1 << 20);
        let (a, _) = cache.get_or_compute(1, || Ok(b"a".to_vec()));
        let (b, _) = cache.get_or_compute(2, || Ok(b"b".to_vec()));
        assert_ne!(*a.unwrap(), *b.unwrap());
        assert_eq!(cache.misses(), 2);
    }
}
