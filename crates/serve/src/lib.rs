//! `warped-serve`: the experiment engine as a std-only HTTP service.
//!
//! The simulator is deterministic — a grid cell's report is a pure
//! function of its configuration — so serving it is mostly a caching
//! problem. This crate wraps the engine in a hand-rolled HTTP/1.1
//! server (no external dependencies, like the rest of the workspace)
//! with a sharded content-addressed result cache and single-flight
//! deduplication: N identical concurrent `POST /run` requests cost
//! exactly one simulation, and everyone gets byte-identical JSON.
//! Connections are persistent (HTTP/1.1 keep-alive with pipelining),
//! `POST /sweep` streams a whole batch of cells back as JSONL in
//! completion order, and an optional on-disk cache makes restarts
//! come up warm.
//!
//! Layering, transport-independent at the core:
//!
//! * [`json`] — a bounded JSON value parser for request bodies.
//! * [`http`] — HTTP/1.1 framing (requests, responses, keep-alive
//!   rules, chunked bodies).
//! * [`cache`] — the sharded single-flight LRU result cache.
//! * [`cluster`] — consistent-hash sharding across peer nodes with
//!   health-checked failover, peer forwarding, circuit breakers, and
//!   a retrying/hedging cluster client plus the chaos harness.
//! * [`disk`] — the persistent `fingerprint → bytes` warm cache.
//! * [`metrics`] — wait-free counters and their `/metrics` exposition.
//! * [`service`] — routing and endpoint logic over `Request` + `Write`
//!   (no sockets; unit-testable against byte buffers).
//! * [`server`] — the TCP transport: accept loop on the sim crate's
//!   bounded worker pool, an idle-socket reaper so parked keep-alive
//!   connections cost no worker, and cooperative graceful shutdown.
//! * [`client`] — a blocking keep-alive client for tests, scripts,
//!   and the `loadgen` benchmark binary.
//!
//! See `DESIGN.md` §13 and §15 for the architecture discussion and
//! `README.md` for a quickstart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod cluster;
pub mod disk;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod service;

pub use server::{spawn, ServerConfig, ServerHandle};
pub use service::{Handled, Service, ServiceConfig};
