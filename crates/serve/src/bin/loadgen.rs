//! `loadgen` — a closed-loop load generator for `warped-serve`.
//!
//! ```text
//! loadgen [--addr <host:port>] [--connections <n>] [--requests <n>]
//!         [--scale <f>] [--cells <n>] [--no-keepalive]
//!         [--out <dir>] [--check-grid <path>] [--trace-dir <dir>]
//! ```
//!
//! Drives N concurrent connections over the benchmark × technique cell
//! mix against a running server (`--addr`), or against an in-process
//! server on an ephemeral port when no address is given. The cache is
//! warmed first with one `POST /sweep` over the whole mix, so the
//! measured phase exercises the serving path, not the simulator.
//!
//! By default both connection modes run — persistent keep-alive
//! sockets and one-connection-per-request — and the A/B lands as two
//! rows (sustained req/s, p50/p99 latency, sockets opened) in
//! `<out>/bench_serve.json` via the same `write_json` format as every
//! other benchmark artifact. `--no-keepalive` restricts the run to the
//! per-request mode.
//!
//! `--check-grid <path>` additionally verifies the warm-up sweep
//! against a committed grid table: every cell's `cycles` must match
//! the table's row bit-for-bit (only meaningful with `--scale 1`,
//! the scale the grid was generated at).
//!
//! `--trace-dir <dir>` appends one captured-trace cell to the mix
//! (the first `*.wgt1` in the directory, referenced via `trace_ref`),
//! so the serving path for the WGT1 corpus is exercised under load
//! alongside the synthetic cells. The in-process server loads the
//! same directory; against `--addr`, the remote server must have been
//! started with a matching `--trace-dir`. Trace cells are skipped by
//! `--check-grid` (they live in `bench_trace_grid.json`, not the
//! synthetic grid) and are not part of cluster mode (trace corpora
//! are node-local, so trace cells never route between peers).
//!
//! `--cluster <a,b,c>` switches to cluster mode: the mix is swept
//! through the resilient [`ClusterClient`] (consistent-hash routing,
//! replica retries, straggler hedging) against the named peers
//! instead of the closed-loop A/B, and the cluster counters are
//! printed at the end. `--chaos <seed>` additionally injects one
//! seeded fault (kill/stall/error on a deterministic victim and
//! schedule, via `POST /chaos`) while the sweep runs — equal seeds
//! reproduce the exact same fault.

use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use warped_bench::grid::GridTable;
use warped_bench::timing::percentile;
use warped_bench::{exit_usage, write_json, ArgError};
use warped_gates::Technique;
use warped_serve::client::Client;
use warped_serve::cluster::{cell_for, chaos_plan, Cluster, ClusterClient, ClusterConfig};
use warped_serve::{json, spawn, ServerConfig};
use warped_workloads::Benchmark;

const USAGE: &str = "usage: loadgen [--addr <host:port>] [--connections <n>] \
                     [--requests <n>] [--scale <f>] [--cells <n>] \
                     [--no-keepalive] [--out <dir>] [--check-grid <path>] \
                     [--cluster <addr,addr,...>] [--chaos <seed>] \
                     [--trace-dir <dir>]";

struct Args {
    addr: Option<String>,
    connections: usize,
    requests: usize,
    scale: f64,
    cells: Option<usize>,
    no_keepalive: bool,
    out: PathBuf,
    check_grid: Option<PathBuf>,
    cluster: Option<Vec<String>>,
    chaos: Option<u64>,
    trace_dir: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Args, ArgError> {
    let mut parsed = Args {
        addr: None,
        connections: 8,
        requests: 2000,
        scale: 0.05,
        cells: None,
        no_keepalive: false,
        out: PathBuf::from("results"),
        check_grid: None,
        cluster: None,
        chaos: None,
        trace_dir: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, ArgError> {
            it.next()
                .ok_or_else(|| ArgError::MissingValue(flag.to_owned()))
        };
        let positive = |flag: &str, raw: &String| -> Result<usize, ArgError> {
            raw.parse::<usize>()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| ArgError::BadValue {
                    flag: flag.to_owned(),
                    value: raw.clone(),
                    expected: "a positive integer",
                })
        };
        match arg.as_str() {
            "--addr" => parsed.addr = Some(value_of("--addr")?.clone()),
            "--connections" => {
                parsed.connections = positive("--connections", value_of("--connections")?)?;
            }
            "--requests" => parsed.requests = positive("--requests", value_of("--requests")?)?,
            "--cells" => parsed.cells = Some(positive("--cells", value_of("--cells")?)?),
            "--scale" => {
                let raw = value_of("--scale")?;
                parsed.scale = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s > 0.0 && *s <= 1.0)
                    .ok_or_else(|| ArgError::BadValue {
                        flag: "--scale".to_owned(),
                        value: raw.clone(),
                        expected: "a number in (0,1]",
                    })?;
            }
            "--no-keepalive" => parsed.no_keepalive = true,
            "--out" => parsed.out = PathBuf::from(value_of("--out")?),
            "--check-grid" => parsed.check_grid = Some(PathBuf::from(value_of("--check-grid")?)),
            "--trace-dir" => parsed.trace_dir = Some(PathBuf::from(value_of("--trace-dir")?)),
            "--cluster" => {
                let raw = value_of("--cluster")?;
                let peers: Vec<String> = raw
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_owned)
                    .collect();
                if peers.is_empty() {
                    return Err(ArgError::BadValue {
                        flag: "--cluster".to_owned(),
                        value: raw.clone(),
                        expected: "a comma-separated list of host:port addresses",
                    });
                }
                parsed.cluster = Some(peers);
            }
            "--chaos" => {
                let raw = value_of("--chaos")?;
                parsed.chaos = Some(raw.parse::<u64>().ok().ok_or_else(|| ArgError::BadValue {
                    flag: "--chaos".to_owned(),
                    value: raw.clone(),
                    expected: "a seed (non-negative integer)",
                })?);
            }
            other => return Err(ArgError::Unknown(other.to_owned())),
        }
    }
    Ok(parsed)
}

/// One cell of the request mix: the grid row label and the `/run` body.
struct Cell {
    label: String,
    body: String,
}

fn cell_mix(scale: f64, cap: Option<usize>) -> Vec<Cell> {
    let mut mix: Vec<Cell> = Benchmark::ALL
        .iter()
        .flat_map(|b| {
            Technique::ALL.into_iter().map(move |t| Cell {
                label: format!("{}/{}", b.name(), t.name()),
                body: format!(
                    "{{\"benchmark\":\"{}\",\"technique\":\"{}\",\"scale\":{scale}}}",
                    b.name(),
                    t.name()
                ),
            })
        })
        .collect();
    if let Some(cap) = cap {
        mix.truncate(cap.max(1));
    }
    mix
}

/// One captured-trace cell for the mix: the first `*.wgt1` under
/// `dir` (sorted by path), referenced by its header name. The label
/// uses the `trace:` prefix so `check_grid` can skip it.
fn trace_cell(dir: &std::path::Path, scale: f64) -> Option<Cell> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wgt1"))
        .collect();
    paths.sort();
    for path in paths {
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        let Ok(workload) = warped_trace::parse_bytes(&bytes) else {
            eprintln!("loadgen: skipping unparseable trace {}", path.display());
            continue;
        };
        let technique = Technique::WarpedGates;
        return Some(Cell {
            label: format!("trace:{}/{}", workload.name, technique.name()),
            body: format!(
                "{{\"trace_ref\":\"{}\",\"technique\":\"{}\",\"scale\":{scale}}}",
                workload.name,
                technique.name()
            ),
        });
    }
    None
}

/// Warm every cell through one streaming `/sweep`, returning each
/// cell's `cycles` by mix index (for `--check-grid`).
fn warm(addr: SocketAddr, mix: &[Cell]) -> Result<Vec<Option<u64>>, String> {
    let bodies: Vec<&str> = mix.iter().map(|c| c.body.as_str()).collect();
    let sweep = format!("{{\"cells\":[{}]}}", bodies.join(","));
    let mut cycles: Vec<Option<u64>> = vec![None; mix.len()];
    let mut bad = Vec::new();
    let mut client = Client::new(addr);
    let started = Instant::now();
    let status = client
        .post_stream_lines("/sweep", &sweep, |line| {
            let Ok(doc) = json::parse(line) else {
                bad.push(format!("unparseable sweep line: {line:.120}"));
                return;
            };
            let index = doc.get("index").and_then(json::JsonValue::as_u64);
            match (index, doc.get("report")) {
                (Some(i), Some(report)) if (i as usize) < mix.len() => {
                    cycles[i as usize] = report.get("cycles").and_then(json::JsonValue::as_u64);
                }
                _ => bad.push(format!("sweep cell failed: {line:.200}")),
            }
        })
        .map_err(|e| format!("sweep request failed: {e}"))?;
    if status != 200 {
        return Err(format!("sweep answered {status}"));
    }
    if let Some(first) = bad.first() {
        return Err(format!("{} bad sweep lines; first: {first}", bad.len()));
    }
    if let Some(missing) = cycles.iter().position(Option::is_none) {
        return Err(format!("sweep never answered cell {missing}"));
    }
    println!(
        "warm: {} cells swept in {:.2?}",
        mix.len(),
        started.elapsed()
    );
    Ok(cycles)
}

struct ModeStats {
    req_per_s: f64,
    p50: Duration,
    p99: Duration,
    connections: u64,
    reused: u64,
}

/// The measured phase: `connections` closed-loop clients splitting
/// `requests` over the mix. Returns `None` if any request failed.
fn run_mode(
    addr: SocketAddr,
    mix: &[Cell],
    connections: usize,
    requests: usize,
    keep_alive: bool,
) -> Option<ModeStats> {
    let per_thread = requests.div_ceil(connections);
    let barrier = Barrier::new(connections + 1);
    let results: Vec<Option<(Vec<Duration>, u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|t| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::new(addr).with_keep_alive(keep_alive);
                    let mut latencies = Vec::with_capacity(per_thread);
                    barrier.wait();
                    for i in 0..per_thread {
                        let cell = &mix[(t + i * connections) % mix.len()];
                        let started = Instant::now();
                        match client.post_json("/run", &cell.body) {
                            Ok(r) if r.status == 200 => latencies.push(started.elapsed()),
                            Ok(r) => {
                                eprintln!("loadgen: {} answered {}", cell.label, r.status);
                                return None;
                            }
                            Err(e) => {
                                eprintln!("loadgen: {} failed: {e}", cell.label);
                                return None;
                            }
                        }
                    }
                    Some((latencies, client.connected(), client.reused()))
                })
            })
            .collect();
        barrier.wait();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Closed-loop throughput: a connection's wall time is the sum of
    // its request latencies, so the run is paced by its slowest
    // thread. Deriving req/s from that (rather than timing around the
    // scope) keeps thread spawn/join cost off the server's bill.
    let mut latencies = Vec::new();
    let (mut connections_opened, mut reused) = (0u64, 0u64);
    let mut slowest_thread = Duration::ZERO;
    for result in results {
        let (thread_latencies, opened, reuse) = result?;
        slowest_thread = slowest_thread.max(thread_latencies.iter().sum());
        connections_opened += opened;
        reused += reuse;
        latencies.extend(thread_latencies);
    }
    let total = latencies.len();
    let wall = slowest_thread.max(Duration::from_nanos(1));
    Some(ModeStats {
        req_per_s: total as f64 / wall.as_secs_f64(),
        p50: percentile(&mut latencies, 0.50),
        p99: percentile(&mut latencies, 0.99),
        connections: connections_opened,
        reused,
    })
}

fn check_grid(path: &PathBuf, mix: &[Cell], cycles: &[Option<u64>]) -> Result<(), String> {
    let table = GridTable::load(path).map_err(|e| e.to_string())?;
    let mut mismatches = 0;
    for (cell, got) in mix.iter().zip(cycles) {
        // Trace cells live in bench_trace_grid.json, not the
        // synthetic grid — skip them here.
        if cell.label.starts_with("trace:") {
            continue;
        }
        let want = table.value(&cell.label, "cycles");
        let got = got.expect("warm() guarantees every cell answered");
        match want {
            Some(want) if want == got as f64 => {}
            Some(want) => {
                eprintln!(
                    "loadgen: {} cycles mismatch: grid {want}, served {got}",
                    cell.label
                );
                mismatches += 1;
            }
            None => {
                eprintln!("loadgen: {} not in {}", cell.label, path.display());
                mismatches += 1;
            }
        }
    }
    if mismatches > 0 {
        return Err(format!("{mismatches} cells disagree with the grid"));
    }
    println!(
        "check-grid: {} cells bit-identical to {}",
        mix.len(),
        path.display()
    );
    Ok(())
}

/// Cluster mode: sweep the mix through the resilient client (with an
/// optional seeded fault injection racing it), verify against the grid
/// when asked, and print the resilience counters.
fn run_cluster(args: &Args, peers: &[String], mix: &[Cell]) -> Result<(), String> {
    let cluster = Cluster::new(&ClusterConfig {
        peers: peers.to_vec(),
        self_addr: None,
        probe_interval: Some(Duration::from_millis(250)),
        ..ClusterConfig::default()
    })?;
    let node_count = cluster.nodes().len();
    let victims: Vec<SocketAddr> = (0..node_count).map(|i| cluster.addr(i)).collect();
    let client = ClusterClient::new(cluster, args.chaos.unwrap_or(0x10AD_BEEF));

    // The same mix, as routable cells (body + routing fingerprint).
    let cells: Vec<_> = Benchmark::ALL
        .iter()
        .flat_map(|b| {
            Technique::ALL
                .into_iter()
                .map(move |t| cell_for(*b, t, args.scale))
        })
        .take(mix.len())
        .collect();

    // Race the seeded fault against the sweep. The injector is its own
    // thread so the fault lands mid-sweep, like a real node death.
    let injector = args.chaos.map(|seed| {
        let plan = chaos_plan(seed, node_count);
        let victim = victims[plan.victim];
        println!(
            "chaos: seed {seed} -> {} on node {} after {:?}",
            plan.mode.name(),
            plan.victim,
            plan.after
        );
        std::thread::spawn(move || {
            std::thread::sleep(plan.after);
            let body = format!("{{\"mode\":\"{}\"}}", plan.mode.name());
            match warped_serve::client::post_json(victim, "/chaos", &body) {
                Ok(r) if r.status == 200 => println!("chaos: fault injected"),
                Ok(r) => eprintln!("chaos: victim answered {}", r.status),
                Err(e) => eprintln!("chaos: injection failed: {e}"),
            }
            victim
        })
    });

    let started = Instant::now();
    let sweep = client.sweep(&cells);
    // Clear the fault before judging the sweep, so a failure still
    // leaves the fleet healthy for shutdown.
    if let Some(handle) = injector {
        if let Ok(victim) = handle.join() {
            let _ = warped_serve::client::post_json(victim, "/chaos", "{\"mode\":\"none\"}");
        }
    }
    let results = sweep?;
    println!(
        "cluster sweep: {} cells in {:.2?} across {node_count} nodes",
        results.len(),
        started.elapsed()
    );

    if let Some(path) = &args.check_grid {
        let cycles: Vec<Option<u64>> = results
            .iter()
            .map(|bytes| {
                json::parse(String::from_utf8_lossy(bytes).trim_end())
                    .ok()
                    .and_then(|doc| doc.get("cycles").and_then(json::JsonValue::as_u64))
            })
            .collect();
        if let Some(missing) = cycles.iter().position(Option::is_none) {
            return Err(format!("cell {missing} returned an unparseable report"));
        }
        check_grid(path, mix, &cycles)?;
    }

    let counters = client.cluster().counters();
    let load = |c: &std::sync::atomic::AtomicU64| c.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "cluster counters: retries={} hedged={} breaker_open={} peer_unhealthy={} \
         forwarded={} forward_failures={}",
        load(&counters.retries),
        load(&counters.hedged_cells),
        load(&counters.breaker_open),
        load(&counters.peer_unhealthy),
        load(&counters.forwarded_requests),
        load(&counters.forward_failures),
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(e) => exit_usage(&e, USAGE),
    };
    if args.check_grid.is_some() && args.scale != 1.0 {
        eprintln!("loadgen: --check-grid needs --scale 1 (the grid's scale)");
        return ExitCode::FAILURE;
    }
    if args.chaos.is_some() && args.cluster.is_none() {
        eprintln!("loadgen: --chaos needs --cluster (the fleet to inject into)");
        return ExitCode::FAILURE;
    }
    if args.trace_dir.is_some() && args.cluster.is_some() {
        eprintln!("loadgen: --trace-dir is standalone-only (trace corpora are node-local)");
        return ExitCode::FAILURE;
    }
    if let Some(peers) = &args.cluster {
        let mix = cell_mix(args.scale, args.cells);
        println!(
            "loadgen: cluster mode, {} cells @ scale {} over {} peers",
            mix.len(),
            args.scale,
            peers.len()
        );
        return match run_cluster(&args, peers, &mix) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("loadgen: {message}");
                ExitCode::FAILURE
            }
        };
    }

    // A server to aim at: the given address, or an in-process one.
    let mut local = None;
    let addr = match &args.addr {
        Some(addr) => match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
            Some(addr) => addr,
            None => {
                eprintln!("loadgen: cannot resolve {addr}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut server_config = ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                ..ServerConfig::default()
            };
            // The in-process server loads the same corpus the mix
            // references; against --addr the remote server must have
            // been started with its own --trace-dir.
            server_config.service.trace_dir = args.trace_dir.clone();
            let handle = match spawn(server_config) {
                Ok(handle) => handle,
                Err(e) => {
                    eprintln!("loadgen: bind failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = handle.addr();
            local = Some(handle);
            addr
        }
    };

    let mut mix = cell_mix(args.scale, args.cells);
    if let Some(dir) = &args.trace_dir {
        match trace_cell(dir, args.scale) {
            Some(cell) => mix.push(cell),
            None => {
                eprintln!("loadgen: no usable *.wgt1 trace under {}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "loadgen: {} cells @ scale {} against {addr} ({} connections, {} requests)",
        mix.len(),
        args.scale,
        args.connections,
        args.requests
    );

    let outcome = (|| -> Result<(), String> {
        let cycles = warm(addr, &mix)?;
        if let Some(path) = &args.check_grid {
            check_grid(path, &mix, &cycles)?;
        }

        let modes: &[(&str, bool)] = if args.no_keepalive {
            &[("per-request", false)]
        } else {
            &[("keep-alive", true), ("per-request", false)]
        };
        let mut rows = Vec::new();
        for (label, keep_alive) in modes {
            let stats = run_mode(addr, &mix, args.connections, args.requests, *keep_alive)
                .ok_or_else(|| format!("{label} run had failing requests"))?;
            println!(
                "{label:<12} {:>10.0} req/s   p50 {:>10.2?}   p99 {:>10.2?}   \
                 {} sockets, {} reused requests",
                stats.req_per_s, stats.p50, stats.p99, stats.connections, stats.reused
            );
            rows.push((
                (*label).to_owned(),
                vec![
                    stats.req_per_s,
                    stats.p50.as_secs_f64() * 1e3,
                    stats.p99.as_secs_f64() * 1e3,
                    stats.connections as f64,
                    stats.reused as f64,
                ],
            ));
        }
        write_json(
            &args.out,
            "bench serve",
            &[
                "req_per_s",
                "p50_ms",
                "p99_ms",
                "connections",
                "reused_requests",
            ],
            &rows,
        )
        .map_err(|e| format!("cannot write {}: {e}", args.out.display()))?;
        println!("wrote {}", args.out.join("bench_serve.json").display());
        Ok(())
    })();

    if let Some(mut handle) = local {
        handle.shutdown();
    }
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}
