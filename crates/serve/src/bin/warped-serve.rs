//! `warped-serve` — the experiment engine behind an HTTP socket.
//!
//! ```text
//! warped-serve [--addr <host:port>] [--workers <n>] [--cache-mb <n>]
//!              [--grid <path>] [--timeout-secs <n>]
//!              [--cache-dir <path>] [--disk-cache-mb <n>]
//!              [--keep-alive-secs <n>] [--peers <a,b,c>]
//!              [--trace-dir <path>]
//! ```
//!
//! Endpoints: `GET /healthz`, `GET /metrics`, `POST /run`,
//! `POST /sweep`, `POST /chaos`, `GET /grid`, `GET /trace?cell=<i>`,
//! `POST /shutdown`. With `--cache-dir`, results persist across
//! restarts (the warm cache). With `--peers` (a comma-separated list
//! that must include this node's own `--addr`), the node joins a
//! cluster: the content-addressed cache is partitioned over the peers
//! by consistent hashing, mis-routed cells are forwarded one hop to
//! their owner, and peer health is tracked by `/healthz` probes
//! feeding per-peer circuit breakers. With `--trace-dir`, the node
//! loads every `*.wgt1` capture in the directory at startup and
//! serves them under `trace_ref` cell references on `/run` and
//! `/sweep` (see `warped-trace` and DESIGN.md §18).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use warped_bench::{exit_usage, ArgError};
use warped_serve::cluster::ClusterConfig;
use warped_serve::{spawn, ServerConfig};

const USAGE: &str = "usage: warped-serve [--addr <host:port>] [--workers <n>] \
                     [--cache-mb <n>] [--grid <path>] [--timeout-secs <n>] \
                     [--cache-dir <path>] [--disk-cache-mb <n>] \
                     [--keep-alive-secs <n>] [--peers <addr,addr,...>] \
                     [--trace-dir <path>]";

fn parse_args(args: &[String]) -> Result<ServerConfig, ArgError> {
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, ArgError> {
            it.next()
                .ok_or_else(|| ArgError::MissingValue(flag.to_owned()))
        };
        match arg.as_str() {
            "--addr" => {
                config.addr = value_of("--addr")?.clone();
            }
            "--workers" => {
                let raw = value_of("--workers")?;
                config.workers =
                    raw.parse::<usize>()
                        .ok()
                        .filter(|w| *w >= 1)
                        .ok_or_else(|| ArgError::BadValue {
                            flag: "--workers".to_owned(),
                            value: raw.clone(),
                            expected: "a positive integer",
                        })?;
            }
            "--cache-mb" => {
                let raw = value_of("--cache-mb")?;
                let mb = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|m| *m >= 1)
                    .ok_or_else(|| ArgError::BadValue {
                        flag: "--cache-mb".to_owned(),
                        value: raw.clone(),
                        expected: "a positive integer (MiB)",
                    })?;
                config.service.cache_bytes = mb << 20;
            }
            "--grid" => {
                config.service.grid_path = PathBuf::from(value_of("--grid")?);
            }
            "--cache-dir" => {
                config.service.disk_dir = Some(PathBuf::from(value_of("--cache-dir")?));
            }
            "--trace-dir" => {
                config.service.trace_dir = Some(PathBuf::from(value_of("--trace-dir")?));
            }
            "--disk-cache-mb" => {
                let raw = value_of("--disk-cache-mb")?;
                let mb = raw.parse::<u64>().ok().filter(|m| *m >= 1).ok_or_else(|| {
                    ArgError::BadValue {
                        flag: "--disk-cache-mb".to_owned(),
                        value: raw.clone(),
                        expected: "a positive integer (MiB)",
                    }
                })?;
                config.service.disk_cache_bytes = mb << 20;
            }
            "--keep-alive-secs" => {
                let raw = value_of("--keep-alive-secs")?;
                let secs = raw.parse::<u64>().ok().filter(|s| *s >= 1).ok_or_else(|| {
                    ArgError::BadValue {
                        flag: "--keep-alive-secs".to_owned(),
                        value: raw.clone(),
                        expected: "a positive integer (seconds)",
                    }
                })?;
                config.keep_alive_timeout = Duration::from_secs(secs);
            }
            "--peers" => {
                let raw = value_of("--peers")?;
                let peers: Vec<String> = raw
                    .split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(str::to_owned)
                    .collect();
                if peers.is_empty() {
                    return Err(ArgError::BadValue {
                        flag: "--peers".to_owned(),
                        value: raw.clone(),
                        expected: "a comma-separated list of host:port addresses",
                    });
                }
                config.service.cluster = Some(ClusterConfig {
                    peers,
                    ..ClusterConfig::default()
                });
            }
            "--timeout-secs" => {
                let raw = value_of("--timeout-secs")?;
                let secs = raw.parse::<u64>().ok().ok_or_else(|| ArgError::BadValue {
                    flag: "--timeout-secs".to_owned(),
                    value: raw.clone(),
                    expected: "a non-negative integer (0 disables the watchdog)",
                })?;
                config.service.job_timeout = if secs == 0 {
                    None
                } else {
                    Some(Duration::from_secs(secs))
                };
            }
            other => return Err(ArgError::Unknown(other.to_owned())),
        }
    }
    // Cluster membership includes this node: the peer list must name
    // our own --addr so every member builds the identical ring.
    if let Some(cluster) = &mut config.service.cluster {
        if !cluster.peers.contains(&config.addr) {
            return Err(ArgError::BadValue {
                flag: "--peers".to_owned(),
                value: cluster.peers.join(","),
                expected: "a list that includes this node's own --addr",
            });
        }
        cluster.self_addr = Some(config.addr.clone());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(e) => exit_usage(&e, USAGE),
    };
    let workers = config.workers;
    let mut handle = match spawn(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("warped-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "warped-serve: listening on http://{} ({} workers); POST /shutdown to stop",
        handle.addr(),
        workers
    );
    handle.join();
    println!("warped-serve: drained and stopped");
    ExitCode::SUCCESS
}
