//! Service counters, rendered as a plain-text exposition page.
//!
//! The format is the Prometheus text convention (`name value`, one per
//! line, `#`-prefixed help lines) without any client library — every
//! counter is a relaxed atomic, so `/metrics` is wait-free and safe to
//! poll from a watchdog at any frequency.

use std::sync::atomic::{AtomicU64, Ordering};

/// All service counters. Cheap to share behind an `Arc`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted, any endpoint (including malformed ones).
    pub requests: AtomicU64,
    /// Requests answered 4xx.
    pub client_errors: AtomicU64,
    /// Requests answered 5xx.
    pub server_errors: AtomicU64,
    /// `/run` jobs currently simulating.
    pub in_flight: AtomicU64,
    /// `/run` cells that panicked inside the simulator.
    pub panicked_cells: AtomicU64,
    /// `/run` cells cut off by the wall-clock watchdog.
    pub timed_out_cells: AtomicU64,
    /// Simulations actually executed (cache layers bypassed nothing).
    pub simulations: AtomicU64,
    /// Connections that served a second request over the same socket
    /// (counted once per connection, at its first reuse).
    pub connections_reused: AtomicU64,
    /// Requests whose bytes were already buffered behind the previous
    /// request on the same connection (true pipelining).
    pub pipelined_requests: AtomicU64,
    /// Idle keep-alive sockets closed by the reaper's timeout.
    pub reaped_idle_sockets: AtomicU64,
    /// `/sweep` cells answered without a fresh simulation (memory
    /// cache hit or coalesced onto an in-flight computation).
    pub sweep_cells_deduped: AtomicU64,
    /// Cells submitted across all `/sweep` batches.
    pub sweep_cells: AtomicU64,
    /// Events dispatched by the simulator clock across all fresh
    /// simulations (cache hits re-serve bytes and add nothing).
    pub events_dispatched: AtomicU64,
    /// High-water mark of the event-queue population over all fresh
    /// simulations.
    pub heap_peak: AtomicU64,
    /// Idle cycles the event-queue core jumped over instead of
    /// stepping, across all fresh simulations.
    pub idle_cycles_skipped: AtomicU64,
    /// Connections refused with a `503` because the dispatch queue
    /// was full (load shedding instead of blocking the acceptor).
    pub shed_requests: AtomicU64,
    /// Memory accesses issued by hierarchy-armed simulations (zero
    /// while every request uses the flat latency model).
    pub mem_accesses: AtomicU64,
    /// L1 hits across hierarchy-armed simulations.
    pub mem_l1_hits: AtomicU64,
    /// L1 misses (MSHR allocations + merges) across hierarchy-armed
    /// simulations.
    pub mem_l1_misses: AtomicU64,
    /// Loads coalesced onto an in-flight MSHR line.
    pub mem_mshr_merges: AtomicU64,
    /// Cache-line fills delivered by the hierarchy.
    pub mem_fills: AtomicU64,
    /// L2 misses that went to the DRAM interval queue.
    pub mem_l2_misses: AtomicU64,
    /// High-water mark of live L1 MSHR entries over all
    /// hierarchy-armed simulations.
    pub mem_mshr_peak: AtomicU64,
    /// WGT1 trace workloads loaded from the corpus directory at
    /// startup (zero while the server runs without `--trace-dir`).
    pub traces_loaded: AtomicU64,
    /// Corpus files skipped at startup because they failed to parse.
    pub trace_parse_errors: AtomicU64,
    /// `/run` and `/sweep` cells answered from a captured trace
    /// workload (through any cache layer or a fresh simulation).
    pub trace_cells_served: AtomicU64,
}

/// RAII guard bumping `in_flight` for the duration of a job.
pub struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Metrics {
    /// Marks one simulation job as running until the guard drops.
    #[must_use]
    pub fn job_started(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard(&self.in_flight)
    }

    /// Folds one fresh simulation's event-core counters into the
    /// service totals (sums, except the queue peak which is a
    /// high-water mark).
    pub fn record_core_counters(&self, stats: &warped_sim::SimStats) {
        self.events_dispatched
            .fetch_add(stats.events_dispatched, Ordering::Relaxed);
        self.heap_peak.fetch_max(stats.heap_peak, Ordering::Relaxed);
        self.idle_cycles_skipped
            .fetch_add(stats.idle_cycles_skipped, Ordering::Relaxed);
        // Memory-hierarchy counters stay zero while every request uses
        // the flat latency model, so scrapers see a stable series set.
        let mem = &stats.mem;
        if mem.hierarchy {
            self.mem_accesses.fetch_add(mem.accesses, Ordering::Relaxed);
            self.mem_l1_hits.fetch_add(mem.l1_hits, Ordering::Relaxed);
            self.mem_l1_misses
                .fetch_add(mem.l1_misses, Ordering::Relaxed);
            self.mem_mshr_merges
                .fetch_add(mem.mshr_merges, Ordering::Relaxed);
            self.mem_fills.fetch_add(mem.fills, Ordering::Relaxed);
            self.mem_l2_misses
                .fetch_add(mem.l2_misses, Ordering::Relaxed);
            self.mem_mshr_peak
                .fetch_max(u64::from(mem.mshr_peak), Ordering::Relaxed);
        }
    }

    /// Records the response status of one request.
    pub fn count_status(&self, status: u16) {
        match status {
            400..=499 => {
                self.client_errors.fetch_add(1, Ordering::Relaxed);
            }
            500..=599 => {
                self.server_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Renders the exposition page, merging in the counters of the
    /// memory cache, (when persistence is on) the disk cache, and
    /// (when cluster mode is armed) the cluster layer.
    #[must_use]
    pub fn render(
        &self,
        cache: &crate::cache::ResultCache,
        disk: Option<&crate::disk::DiskCache>,
        cluster: Option<&crate::cluster::Cluster>,
    ) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!("# HELP {name} {help}\n{name} {value}\n"));
        };
        counter(
            "warped_serve_requests_total",
            "Requests accepted on any endpoint.",
            self.requests.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_client_errors_total",
            "Requests answered with a 4xx status.",
            self.client_errors.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_server_errors_total",
            "Requests answered with a 5xx status.",
            self.server_errors.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_cache_hits_total",
            "Run results served from the cache (coalesced waiters included).",
            cache.hits(),
        );
        counter(
            "warped_serve_cache_misses_total",
            "Run results that required a fresh simulation.",
            cache.misses(),
        );
        counter(
            "warped_serve_cache_evictions_total",
            "Cached results evicted under byte pressure.",
            cache.evictions(),
        );
        counter(
            "warped_serve_cache_bytes",
            "Bytes currently held by cached results.",
            cache.bytes() as u64,
        );
        counter(
            "warped_serve_jobs_in_flight",
            "Simulations running right now.",
            self.in_flight.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_panicked_cells_total",
            "Run cells that panicked inside the simulator.",
            self.panicked_cells.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_timed_out_cells_total",
            "Run cells cut off by the wall-clock watchdog.",
            self.timed_out_cells.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_simulations_total",
            "Simulations actually executed (not served by any cache layer).",
            self.simulations.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_connections_reused_total",
            "Connections that served more than one request.",
            self.connections_reused.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_pipelined_requests_total",
            "Requests already buffered behind the previous one on the same socket.",
            self.pipelined_requests.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_reaped_idle_sockets_total",
            "Idle keep-alive sockets closed by the reaper timeout.",
            self.reaped_idle_sockets.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sweep_cells_total",
            "Cells submitted across all /sweep batches.",
            self.sweep_cells.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sweep_cells_deduped_total",
            "/sweep cells served without a fresh simulation.",
            self.sweep_cells_deduped.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_disk_cache_hits_total",
            "Results served from the on-disk warm cache.",
            disk.map_or(0, crate::disk::DiskCache::hits),
        );
        counter(
            "warped_serve_disk_cache_misses_total",
            "Disk-cache lookups that found no usable entry.",
            disk.map_or(0, crate::disk::DiskCache::misses),
        );
        counter(
            "warped_serve_disk_cache_evictions_total",
            "Disk-cache entries deleted under byte pressure.",
            disk.map_or(0, crate::disk::DiskCache::evictions),
        );
        counter(
            "warped_serve_disk_cache_bytes",
            "Bytes currently held by on-disk cache entries.",
            disk.map_or(0, crate::disk::DiskCache::bytes),
        );
        counter(
            "warped_serve_sim_events_dispatched_total",
            "Clock events dispatched across all fresh simulations.",
            self.events_dispatched.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_heap_peak",
            "High-water event-queue population over all fresh simulations.",
            self.heap_peak.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_idle_cycles_skipped_total",
            "Idle cycles jumped by the event-queue core instead of stepped.",
            self.idle_cycles_skipped.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_shed_requests_total",
            "Connections answered 503 because the dispatch queue was full.",
            self.shed_requests.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_mem_accesses_total",
            "Memory accesses issued by hierarchy-armed simulations.",
            self.mem_accesses.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_mem_l1_hits_total",
            "L1 hits across hierarchy-armed simulations.",
            self.mem_l1_hits.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_mem_l1_misses_total",
            "L1 misses across hierarchy-armed simulations.",
            self.mem_l1_misses.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_mem_mshr_merges_total",
            "Loads coalesced onto an in-flight MSHR line.",
            self.mem_mshr_merges.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_mem_fills_total",
            "Cache-line fills delivered by the hierarchy.",
            self.mem_fills.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_mem_l2_misses_total",
            "L2 misses that queued on the DRAM interval model.",
            self.mem_l2_misses.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_sim_mem_mshr_peak",
            "High-water live L1 MSHR entries over hierarchy-armed simulations.",
            self.mem_mshr_peak.load(Ordering::Relaxed),
        );
        // Trace-corpus counters render unconditionally — a stable set
        // of series whether or not a corpus is loaded, like the disk
        // and cluster blocks.
        counter(
            "warped_serve_trace_workloads_loaded",
            "WGT1 trace workloads loaded from the corpus directory.",
            self.traces_loaded.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_trace_parse_errors_total",
            "Corpus trace files skipped because they failed to parse.",
            self.trace_parse_errors.load(Ordering::Relaxed),
        );
        counter(
            "warped_serve_trace_cells_served_total",
            "Run/sweep cells answered from a captured trace workload.",
            self.trace_cells_served.load(Ordering::Relaxed),
        );
        // Cluster counters render as a stable set of series whether or
        // not cluster mode is armed, like the disk-cache block above.
        let cc = cluster.map(crate::cluster::Cluster::counters);
        let cluster_counter =
            |name: &'static str, help, f: fn(&crate::cluster::ClusterCounters) -> &AtomicU64| {
                (name, help, cc.map_or(0, |c| f(c).load(Ordering::Relaxed)))
            };
        for (name, help, value) in [
            cluster_counter(
                "warped_serve_cluster_forwarded_requests_total",
                "Mis-routed cells successfully forwarded to their ring owner.",
                |c| &c.forwarded_requests,
            ),
            cluster_counter(
                "warped_serve_cluster_forward_failures_total",
                "Peer forwards that failed and fell back to local simulation.",
                |c| &c.forward_failures,
            ),
            cluster_counter(
                "warped_serve_cluster_retries_total",
                "Cell dispatches retried on another replica.",
                |c| &c.retries,
            ),
            cluster_counter(
                "warped_serve_cluster_hedged_cells_total",
                "Straggler sweep cells hedged to the next ring replica.",
                |c| &c.hedged_cells,
            ),
            cluster_counter(
                "warped_serve_cluster_breaker_open_total",
                "Circuit-breaker trips (transitions to the open state).",
                |c| &c.breaker_open,
            ),
            cluster_counter(
                "warped_serve_cluster_peer_unhealthy_total",
                "Failed peer health observations (probes and passive).",
                |c| &c.peer_unhealthy,
            ),
        ] {
            counter(name, help, value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;

    #[test]
    fn renders_every_counter_with_current_values() {
        let m = Metrics::default();
        let cache = ResultCache::new(2, 1024);
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.count_status(404);
        m.count_status(500);
        m.count_status(200);
        let (r, _) = cache.get_or_compute(1, || Ok(b"x".to_vec()));
        r.unwrap();
        let (r, _) = cache.get_or_compute(1, || unreachable!());
        r.unwrap();

        let mut stats = warped_sim::SimStats {
            events_dispatched: 40,
            heap_peak: 7,
            idle_cycles_skipped: 9,
            ..Default::default()
        };
        // Flat-model runs leave every mem series untouched even with
        // nonzero legacy load counters.
        stats.mem.accesses = 11;
        m.record_core_counters(&stats);
        stats.heap_peak = 5; // lower peak must not regress the high-water
        m.record_core_counters(&stats);
        assert_eq!(m.mem_accesses.load(Ordering::Relaxed), 0);
        stats.mem = warped_sim::MemoryStats {
            hierarchy: true,
            accesses: 10,
            l1_hits: 6,
            l1_misses: 4,
            mshr_merges: 1,
            fills: 3,
            l2_misses: 2,
            mshr_peak: 3,
            ..Default::default()
        };
        stats.events_dispatched = 0;
        stats.idle_cycles_skipped = 0;
        stats.heap_peak = 0;
        m.record_core_counters(&stats);
        stats.mem.mshr_peak = 2; // lower MSHR peak must not regress either
        m.record_core_counters(&stats);

        m.shed_requests.fetch_add(2, Ordering::Relaxed);

        let page = m.render(&cache, None, None);
        assert!(page.contains("warped_serve_requests_total 3"));
        assert!(page.contains("warped_serve_sim_events_dispatched_total 80"));
        assert!(page.contains("warped_serve_sim_heap_peak 7"));
        assert!(page.contains("warped_serve_sim_idle_cycles_skipped_total 18"));
        assert!(page.contains("warped_serve_client_errors_total 1"));
        assert!(page.contains("warped_serve_server_errors_total 1"));
        assert!(page.contains("warped_serve_cache_hits_total 1"));
        assert!(page.contains("warped_serve_cache_misses_total 1"));
        assert!(page.contains("warped_serve_cache_bytes 1"));
        assert!(page.contains("warped_serve_jobs_in_flight 0"));
        // Without persistence the disk counters render as zeros, so
        // scrapers see a stable set of series either way.
        assert!(page.contains("warped_serve_disk_cache_hits_total 0"));
        assert!(page.contains("warped_serve_connections_reused_total 0"));
        assert!(page.contains("warped_serve_pipelined_requests_total 0"));
        assert!(page.contains("warped_serve_reaped_idle_sockets_total 0"));
        assert!(page.contains("warped_serve_sweep_cells_deduped_total 0"));
        assert!(page.contains("warped_serve_simulations_total 0"));
        assert!(page.contains("warped_serve_shed_requests_total 2"));
        assert!(page.contains("warped_serve_sim_mem_accesses_total 20"));
        assert!(page.contains("warped_serve_sim_mem_l1_hits_total 12"));
        assert!(page.contains("warped_serve_sim_mem_l1_misses_total 8"));
        assert!(page.contains("warped_serve_sim_mem_mshr_merges_total 2"));
        assert!(page.contains("warped_serve_sim_mem_fills_total 6"));
        assert!(page.contains("warped_serve_sim_mem_l2_misses_total 4"));
        assert!(page.contains("warped_serve_sim_mem_mshr_peak 3"));
        // Trace counters are a stable series set: zeros while no
        // corpus is loaded.
        assert!(page.contains("warped_serve_trace_workloads_loaded 0"));
        assert!(page.contains("warped_serve_trace_parse_errors_total 0"));
        assert!(page.contains("warped_serve_trace_cells_served_total 0"));
        // Cluster counters are present (as zeros) even off-cluster.
        assert!(page.contains("warped_serve_cluster_forwarded_requests_total 0"));
        assert!(page.contains("warped_serve_cluster_retries_total 0"));
        assert!(page.contains("warped_serve_cluster_hedged_cells_total 0"));
        assert!(page.contains("warped_serve_cluster_breaker_open_total 0"));
        assert!(page.contains("warped_serve_cluster_peer_unhealthy_total 0"));
        assert!(page.contains("warped_serve_cluster_forward_failures_total 0"));
    }

    #[test]
    fn renders_live_cluster_counters_when_armed() {
        use crate::cluster::{Cluster, ClusterConfig};
        let m = Metrics::default();
        let cache = ResultCache::new(2, 1024);
        let cluster = Cluster::new(&ClusterConfig {
            peers: vec!["127.0.0.1:19901".to_owned(), "127.0.0.1:19902".to_owned()],
            probe_interval: None,
            ..ClusterConfig::default()
        })
        .unwrap();
        cluster
            .counters()
            .hedged_cells
            .fetch_add(4, Ordering::Relaxed);
        let page = m.render(&cache, None, Some(&cluster));
        assert!(page.contains("warped_serve_cluster_hedged_cells_total 4"));
    }

    #[test]
    fn in_flight_guard_is_raii() {
        let m = Metrics::default();
        {
            let _g = m.job_started();
            assert_eq!(m.in_flight.load(Ordering::Relaxed), 1);
            let _g2 = m.job_started();
            assert_eq!(m.in_flight.load(Ordering::Relaxed), 2);
        }
        assert_eq!(m.in_flight.load(Ordering::Relaxed), 0);
    }
}
