//! Cluster-mode tests over real sockets: consistent-hash forwarding,
//! dead-owner fallback, chaos-killed nodes mid-sweep, straggler
//! hedging, and the health prober tripping breakers.

use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use warped_gates::Technique;
use warped_serve::cluster::{
    cell_for, ChaosMode, Cluster, ClusterCell, ClusterClient, ClusterConfig, RetryPolicy,
};
use warped_serve::{client, spawn, ServerConfig, ServerHandle, ServiceConfig};
use warped_workloads::Benchmark;

const SCALE: f64 = 0.05;

fn spawn_node() -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        service: ServiceConfig {
            trace_scale: SCALE,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port")
}

/// Arms every node with the same peer list (their real ephemeral
/// addresses, unknowable before spawn) and returns that list.
fn arm(nodes: &[&ServerHandle], forward_timeout: Duration) -> Vec<String> {
    let peers: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
    for node in nodes {
        let cluster = Cluster::new(&ClusterConfig {
            peers: peers.clone(),
            self_addr: Some(node.addr().to_string()),
            probe_interval: None,
            forward_timeout,
            ..ClusterConfig::default()
        })
        .expect("a valid cluster");
        node.service().arm_cluster(cluster);
    }
    peers
}

/// A pure-client cluster view over `peers` (no self, no prober).
fn client_cluster(peers: &[String]) -> Cluster {
    Cluster::new(&ClusterConfig {
        peers: peers.to_vec(),
        probe_interval: None,
        ..ClusterConfig::default()
    })
    .expect("a valid cluster")
}

/// Every default-parameter cell at the test scale, in grid order.
fn all_cells() -> Vec<ClusterCell> {
    Benchmark::ALL
        .iter()
        .flat_map(|b| Technique::ALL.iter().map(|t| cell_for(*b, *t, SCALE)))
        .collect()
}

/// An address that refuses connections: bind an ephemeral port, then
/// drop the listener so nothing is behind it.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    listener.local_addr().expect("addr").to_string()
}

#[test]
fn misrouted_cells_forward_one_hop_to_their_owner() {
    let mut a = spawn_node();
    let mut b = spawn_node();
    let _peers = arm(&[&a, &b], Duration::from_secs(10));

    // A cell whose ring owner is node B, posted to node A.
    let cluster_a = a.service().cluster().expect("armed");
    let addr_b = b.addr().to_string();
    let cell = all_cells()
        .into_iter()
        .find(|c| cluster_a.nodes()[cluster_a.ring().owner(c.fingerprint)] == addr_b)
        .expect("some cell is owned by the other node");

    let via_a = client::post_json(a.addr(), "/run", &cell.body).expect("request");
    assert_eq!(via_a.status, 200, "{}", via_a.text());

    // A forwarded; B simulated; the bytes are B's.
    let counters = cluster_a.counters();
    assert_eq!(counters.forwarded_requests.load(Ordering::Relaxed), 1);
    assert_eq!(counters.forward_failures.load(Ordering::Relaxed), 0);
    assert_eq!(a.service().metrics.simulations.load(Ordering::Relaxed), 0);
    assert_eq!(b.service().metrics.simulations.load(Ordering::Relaxed), 1);
    let direct = client::post_json(b.addr(), "/run", &cell.body).expect("request");
    assert_eq!(
        via_a.body, direct.body,
        "forwarded bytes must equal the owner's own answer"
    );

    // The forward landed in A's memory cache: a repeat is local.
    let again = client::post_json(a.addr(), "/run", &cell.body).expect("request");
    assert_eq!(again.body, via_a.body);
    assert_eq!(
        counters.forwarded_requests.load(Ordering::Relaxed),
        1,
        "cached repeats must not re-forward"
    );

    a.shutdown();
    b.shutdown();
}

#[test]
fn dead_owner_falls_back_to_local_simulation() {
    let mut node = spawn_node();
    let dead = dead_addr();
    let peers = vec![node.addr().to_string(), dead.clone()];
    let cluster = Cluster::new(&ClusterConfig {
        peers: peers.clone(),
        self_addr: Some(node.addr().to_string()),
        probe_interval: None,
        forward_timeout: Duration::from_millis(500),
        ..ClusterConfig::default()
    })
    .expect("a valid cluster");
    node.service().arm_cluster(cluster);

    let cluster = node.service().cluster().expect("armed");
    let cell = all_cells()
        .into_iter()
        .find(|c| cluster.nodes()[cluster.ring().owner(c.fingerprint)] == dead)
        .expect("some cell is owned by the dead peer");

    // The forward fails fast (connection refused) and the node
    // answers from its own simulator anyway.
    let response = client::post_json(node.addr(), "/run", &cell.body).expect("request");
    assert_eq!(response.status, 200, "{}", response.text());
    assert!(response.text().contains("\"cycles\":"));
    let counters = cluster.counters();
    assert_eq!(counters.forward_failures.load(Ordering::Relaxed), 1);
    assert!(counters.peer_unhealthy.load(Ordering::Relaxed) >= 1);
    assert_eq!(
        node.service().metrics.simulations.load(Ordering::Relaxed),
        1
    );

    node.shutdown();
}

#[test]
fn killed_node_mid_sweep_still_returns_every_cell_bit_identical() {
    let mut nodes = [spawn_node(), spawn_node(), spawn_node()];
    let peers = arm(&[&nodes[0], &nodes[1], &nodes[2]], Duration::from_secs(10));
    let mut reference = spawn_node();

    let cells = all_cells();
    let cluster = client_cluster(&peers);
    // The victim owns cells[0]'s group, so at least one stream dies.
    let victim_addr = cluster.nodes()[cluster.route(cells[0].fingerprint, 0)].clone();
    let victim = nodes
        .iter()
        .find(|n| n.addr().to_string() == victim_addr)
        .expect("the victim is one of ours");
    victim.service().set_chaos(ChaosMode::Abort);

    let client = ClusterClient::new(cluster, 0xC1A0)
        .with_retry(RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
        })
        .with_attempt_timeout(Duration::from_secs(30))
        .with_hedge_after(Duration::from_secs(5));
    let results = client.sweep(&cells).expect("the sweep survives the kill");
    assert_eq!(results.len(), cells.len());

    // Every cell answered, bit-for-bit what an unclustered server says.
    for (cell, result) in cells.iter().zip(&results) {
        let direct = client::post_json(reference.addr(), "/run", &cell.body).expect("reference");
        assert_eq!(direct.status, 200, "{}", direct.text());
        assert_eq!(
            result, &direct.body,
            "cluster result for {} diverges from the reference",
            cell.body
        );
    }

    // The failover is visible: the dead streams were re-dispatched.
    let counters = client.cluster().counters();
    assert!(
        counters.retries.load(Ordering::Relaxed) >= 1,
        "killed streams must requeue their cells as retries"
    );

    victim.service().set_chaos(ChaosMode::None);
    for node in &mut nodes {
        node.shutdown();
    }
    reference.shutdown();
}

#[test]
fn stalled_node_is_hedged_to_a_replica() {
    let mut nodes = [spawn_node(), spawn_node(), spawn_node()];
    // Short forward timeout: replicas forwarding a hedged cell to the
    // stalled owner must give up quickly and simulate locally.
    let peers = arm(
        &[&nodes[0], &nodes[1], &nodes[2]],
        Duration::from_millis(300),
    );

    let cells = all_cells();
    let cluster = client_cluster(&peers);
    let victim_addr = cluster.nodes()[cluster.route(cells[0].fingerprint, 0)].clone();
    let victim = nodes
        .iter()
        .find(|n| n.addr().to_string() == victim_addr)
        .expect("the victim is one of ours");
    victim.service().set_chaos(ChaosMode::Stall);

    // Hedge after 400ms of sweep-wide silence; the stalled stream's
    // own read timeout (2s) bounds how long sweep() waits to join it.
    let client = ClusterClient::new(cluster, 0x57A11)
        .with_attempt_timeout(Duration::from_secs(2))
        .with_hedge_after(Duration::from_millis(400));
    let results = client
        .sweep(&cells)
        .expect("the sweep routes around the stall");
    assert_eq!(results.len(), cells.len());
    for result in &results {
        assert!(
            String::from_utf8_lossy(result).contains("\"cycles\":"),
            "every cell carries a report"
        );
    }
    let counters = client.cluster().counters();
    assert!(
        counters.hedged_cells.load(Ordering::Relaxed) >= 1,
        "stragglers behind the stall must be hedged"
    );

    // Release the stalled workers before asking the victim to drain.
    victim.service().set_chaos(ChaosMode::None);
    for node in &mut nodes {
        node.shutdown();
    }
}

#[test]
fn prober_trips_the_breaker_on_a_dead_peer() {
    let mut live = spawn_node();
    let dead = dead_addr();
    let cluster = Cluster::new(&ClusterConfig {
        peers: vec![live.addr().to_string(), dead.clone()],
        probe_interval: Some(Duration::from_millis(50)),
        ..ClusterConfig::default()
    })
    .expect("a valid cluster");
    let dead_index = cluster
        .nodes()
        .iter()
        .position(|n| *n == dead)
        .expect("the dead peer is a member");

    // Failed probes accumulate until the breaker trips open.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let counters = cluster.counters();
        if counters.peer_unhealthy.load(Ordering::Relaxed) >= 3
            && counters.breaker_open.load(Ordering::Relaxed) >= 1
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the prober never tripped the breaker: unhealthy={} open={}",
            counters.peer_unhealthy.load(Ordering::Relaxed),
            counters.breaker_open.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        !cluster.breaker(dead_index).allow()
            || cluster.counters().breaker_open.load(Ordering::Relaxed) >= 1,
        "the dead peer's breaker is open (modulo a half-open trial)"
    );
    // The live peer stays closed: routing never detours around it.
    let live_index = 1 - dead_index;
    assert!(cluster.breaker(live_index).allow());

    drop(cluster);
    live.shutdown();
}
