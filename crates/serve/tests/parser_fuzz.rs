//! Seeded property tests hardening the hand-rolled parsers.
//!
//! The HTTP request reader, the chunked-transfer decoder, and the JSON
//! body parser all face the network directly, so the invariant under
//! test is blunt: *no input may panic them*, and anything malformed
//! must come back as a typed error (a `400`-family [`HttpError::Bad`]
//! or a [`json::JsonError`]) the service can answer in-band. Every
//! case is driven by `SplitMix64`, so a failure reproduces from its
//! printed seed.

use std::io::{BufReader, Read};

use warped_serve::http::{
    read_chunked_stream, read_request, HttpError, MAX_BODY, MAX_HEADERS, MAX_LINE,
};
use warped_serve::json;
use warped_serve::{Service, ServiceConfig};
use warped_workloads::rng::SplitMix64;

/// The typed statuses `read_request` may reject with: `400` malformed,
/// `413` oversized, `501` unimplemented (chunked request bodies,
/// non-1.x versions).
fn assert_typed(result: &Result<Option<warped_serve::http::Request>, HttpError>, seed: u64) {
    if let Err(HttpError::Bad(status, reason)) = result {
        assert!(
            matches!(status, 400 | 413 | 501),
            "seed {seed}: untyped reject {status} ({reason})"
        );
    }
}

#[test]
fn random_bytes_never_panic_the_request_parser() {
    for seed in 0..2000u64 {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
        let len = rng.below(600) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        let mut reader = bytes.as_slice();
        assert_typed(&read_request(&mut reader), seed);
    }
}

#[test]
fn mutated_valid_requests_answer_typed_errors() {
    let valid = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 24\r\n\r\n\
                  {\"benchmark\":\"nw\",\"a\":1}";
    for seed in 0..2000u64 {
        let mut rng = SplitMix64::new(seed ^ 0x6d75_7461_7465);
        let mut bytes = valid.to_vec();
        // One to four point mutations: flip, overwrite, or truncate.
        for _ in 0..=rng.below(3) {
            let at = rng.index(bytes.len());
            match rng.below(3) {
                0 => bytes[at] ^= 1 << rng.below(8),
                1 => bytes[at] = (rng.next_u64() & 0xff) as u8,
                _ => bytes.truncate(at),
            }
            if bytes.is_empty() {
                break;
            }
        }
        let mut reader = bytes.as_slice();
        assert_typed(&read_request(&mut reader), seed);
    }
}

#[test]
fn oversized_lines_headers_and_bodies_are_rejected() {
    // Request line past MAX_LINE.
    let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE + 10));
    let mut reader = long_target.as_bytes();
    match read_request(&mut reader) {
        Err(HttpError::Bad(status, _)) => assert!(matches!(status, 400 | 413)),
        other => panic!("oversized request line must be rejected: {other:?}"),
    }

    // More headers than MAX_HEADERS.
    let mut many = String::from("GET / HTTP/1.1\r\n");
    for i in 0..=MAX_HEADERS {
        many.push_str(&format!("X-H{i}: v\r\n"));
    }
    many.push_str("\r\n");
    let mut reader = many.as_bytes();
    match read_request(&mut reader) {
        Err(HttpError::Bad(status, _)) => assert!(matches!(status, 400 | 413)),
        other => panic!("header flood must be rejected: {other:?}"),
    }

    // A declared body past MAX_BODY.
    let big = format!(
        "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY + 1
    );
    let mut reader = big.as_bytes();
    match read_request(&mut reader) {
        Err(HttpError::Bad(status, _)) => assert_eq!(status, 413),
        other => panic!("oversized body must 413: {other:?}"),
    }
}

/// A reader that hands out at most `step` bytes per `read`, modelling
/// a trickling socket that splits every token across reads.
struct Dribble<'a> {
    bytes: &'a [u8],
    step: usize,
}

impl Read for Dribble<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.step.min(self.bytes.len()).min(buf.len());
        buf[..n].copy_from_slice(&self.bytes[..n]);
        self.bytes = &self.bytes[n..];
        Ok(n)
    }
}

#[test]
fn split_reads_parse_identically_to_whole_reads() {
    let wire = b"POST /run?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 11\r\n\r\nhello world";
    let mut whole = wire.as_slice();
    let want = read_request(&mut whole).unwrap().unwrap();
    for step in [1usize, 2, 3, 7, 13] {
        let mut reader = BufReader::with_capacity(16, Dribble { bytes: wire, step });
        let got = read_request(&mut reader)
            .unwrap_or_else(|e| panic!("step {step}: {e:?}"))
            .expect("a request");
        assert_eq!(got.method, want.method, "step {step}");
        assert_eq!(got.path, want.path, "step {step}");
        assert_eq!(got.query, want.query, "step {step}");
        assert_eq!(got.headers, want.headers, "step {step}");
        assert_eq!(got.body, want.body, "step {step}");
    }
}

#[test]
fn malformed_chunked_framing_is_rejected_without_panic() {
    let cases: &[&[u8]] = &[
        b"zz\r\nhello\r\n0\r\n\r\n", // non-hex size
        b"5\r\nhello\r\n",           // missing terminator
        b"5\r\nhello??0\r\n\r\n",    // payload not CRLF-delimited
        b"ffffffffffffffff\r\n",     // absurd size (overflows the cap)
        b"5\r\nhel",                 // truncated payload
        b"",                         // empty stream
    ];
    for (i, case) in cases.iter().enumerate() {
        let mut reader = *case;
        let mut sink = Vec::new();
        let result = read_chunked_stream(&mut reader, |chunk| sink.extend_from_slice(chunk));
        assert!(result.is_err(), "case {i} must be rejected");
    }

    // Seeded garbage after a valid-looking size line.
    for seed in 0..500u64 {
        let mut rng = SplitMix64::new(seed ^ 0x0063_6875_6e6b);
        let mut bytes = format!("{:x}\r\n", rng.below(32)).into_bytes();
        let tail = rng.below(40) as usize;
        bytes.extend((0..tail).map(|_| (rng.next_u64() & 0xff) as u8));
        let mut reader = bytes.as_slice();
        // Any outcome but a panic is acceptable; a short valid prefix
        // may legitimately decode.
        let _ = read_chunked_stream(&mut reader, |_| {});
    }
}

#[test]
fn hostile_json_never_panics_and_depth_is_capped() {
    // Deep nesting is a typed error, not a stack overflow.
    for depth in [33usize, 100, 1000] {
        let deep = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(json::parse(&deep).is_err(), "depth {depth} must be capped");
        let deep_obj = format!("{}\"k\":1{}", "{\"k\":".repeat(depth), "}".repeat(depth));
        assert!(json::parse(&deep_obj).is_err());
    }

    // Random byte soup (lossily decoded) and random ASCII soup.
    for seed in 0..2000u64 {
        let mut rng = SplitMix64::new(seed ^ 0x6a73_6f6e);
        let len = rng.below(200) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
        let _ = json::parse(&String::from_utf8_lossy(&bytes));
        let ascii: String = (0..len)
            .map(|_| char::from(b" {}[]\":,0123456789.eE+-truefalsnu"[rng.index(33)]))
            .collect();
        let _ = json::parse(&ascii);
    }
}

#[test]
fn fuzzed_run_bodies_answer_typed_400s() {
    let service = Service::new(ServiceConfig {
        trace_scale: 0.05,
        ..ServiceConfig::default()
    });
    for seed in 0..300u64 {
        let mut rng = SplitMix64::new(seed ^ 0x626f_6479);
        let len = rng.below(120) as usize;
        // Force non-JSON garbage: no crafted body here can accidentally
        // name a real benchmark, so every answer must be a typed 400.
        let body: Vec<u8> = std::iter::once(b'@')
            .chain((0..len).map(|_| (rng.next_u64() & 0xff) as u8))
            .collect();
        let req = warped_serve::http::Request {
            method: "POST".to_owned(),
            path: "/run".to_owned(),
            query: Vec::new(),
            headers: Vec::new(),
            body,
            keep_alive: false,
        };
        let mut wire = Vec::new();
        service
            .handle(&req, &mut wire, false)
            .unwrap_or_else(|e| panic!("seed {seed}: transport error {e}"));
        let text = String::from_utf8_lossy(&wire);
        assert!(
            text.starts_with("HTTP/1.1 400 "),
            "seed {seed}: wanted a typed 400, got {text:.120}"
        );
        assert!(text.contains("bad_request"), "seed {seed}: {text:.300}");
    }
}
