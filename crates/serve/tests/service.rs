//! End-to-end tests over a real socket: ephemeral port, concurrent
//! clients, fault isolation, graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use warped_serve::{client, spawn, ServerConfig, ServerHandle, ServiceConfig};

fn test_server() -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 8,
        service: ServiceConfig {
            trace_scale: 0.05,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port")
}

#[test]
fn thirty_two_concurrent_identical_runs_single_flight() {
    let mut server = test_server();
    let addr = server.addr();
    let body = r#"{"benchmark":"nw","technique":"baseline","scale":0.05}"#;

    let barrier = Arc::new(std::sync::Barrier::new(32));
    let handles: Vec<_> = (0..32)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let body = body.to_owned();
            std::thread::spawn(move || {
                barrier.wait();
                client::post_json(addr, "/run", &body).expect("request")
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let first = &responses[0];
    assert_eq!(first.status, 200, "{}", first.text());
    assert!(first.text().contains("\"benchmark\":\"nw\""));
    for response in &responses[1..] {
        assert_eq!(response.status, 200);
        assert_eq!(
            response.body, first.body,
            "all 32 responses must be byte-identical"
        );
    }

    // Single-flight: exactly one simulation ran; the other 31 requests
    // coalesced onto it (or hit the finished cache line) as hits.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let page = metrics.text();
    assert!(
        page.contains("warped_serve_cache_misses_total 1"),
        "exactly one miss:\n{page}"
    );
    assert!(
        page.contains("warped_serve_cache_hits_total 31"),
        "31 deduplicated hits:\n{page}"
    );
    assert_eq!(server.service().cache.misses(), 1);
    assert_eq!(server.service().cache.hits(), 31);

    server.shutdown();
}

#[test]
fn malformed_json_is_a_400_with_a_typed_body() {
    let mut server = test_server();
    let addr = server.addr();

    let response = client::post_json(addr, "/run", "{not json").expect("request");
    assert_eq!(response.status, 400);
    assert!(response.text().contains("\"kind\":\"bad_request\""));

    let response = client::post_json(
        addr,
        "/run",
        r#"{"benchmark":"nope","technique":"baseline"}"#,
    )
    .expect("request");
    assert_eq!(response.status, 400);
    assert!(response.text().contains("unknown benchmark"));

    server.shutdown();
}

#[test]
fn panicking_cell_is_a_500_and_the_server_survives() {
    let mut server = test_server();
    let addr = server.addr();

    // bet = 0 fails gating-parameter validation inside the experiment.
    let response = client::post_json(
        addr,
        "/run",
        r#"{"benchmark":"nw","technique":"baseline","scale":0.05,"bet":0}"#,
    )
    .expect("request");
    assert_eq!(response.status, 500, "{}", response.text());
    assert!(
        response.text().contains("\"kind\":\"panic\""),
        "{}",
        response.text()
    );

    // The worker that caught the panic is still serving.
    let health = client::get(addr, "/healthz").expect("request");
    assert_eq!(health.status, 200);
    let page = client::get(addr, "/metrics").expect("request").text();
    assert!(
        page.contains("warped_serve_panicked_cells_total 1"),
        "{page}"
    );

    server.shutdown();
}

#[test]
fn trace_endpoint_streams_a_chunked_perfetto_trace() {
    let mut server = test_server();
    let addr = server.addr();

    let response = client::get(addr, "/trace?cell=0&scale=0.05").expect("request");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("transfer-encoding"),
        Some("chunked"),
        "trace responses stream"
    );
    let text = response.text();
    assert!(text.starts_with("{\"traceEvents\":["), "{:.120}", text);
    assert!(text.trim_end().ends_with('}'));

    let rollup = client::get(addr, "/trace?cell=0&scale=0.05&format=rollup").expect("request");
    assert_eq!(rollup.status, 200);
    assert!(rollup
        .text()
        .lines()
        .next()
        .unwrap()
        .contains("\"epoch\":0"));

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let mut server = test_server();
    let addr = server.addr();

    // A request slow enough to still be simulating when /shutdown
    // lands (scale 0.4 runs for a noticeable fraction of a second).
    let slow = std::thread::spawn(move || {
        client::post_json(
            addr,
            "/run",
            r#"{"benchmark":"nw","technique":"warped-gates","scale":0.4}"#,
        )
        .expect("in-flight request must complete")
    });
    std::thread::sleep(Duration::from_millis(150));

    let response = client::post_json(addr, "/shutdown", "").expect("request");
    assert_eq!(response.status, 200);
    assert!(response.text().contains("shutting_down"));

    // The accept loop stops and the pool drains: the slow request
    // still gets its full response.
    server.join();
    let slow_response = slow.join().unwrap();
    assert_eq!(slow_response.status, 200, "{}", slow_response.text());
    assert!(slow_response.text().contains("\"cycles\":"));

    // The listener is gone.
    assert!(client::get(addr, "/healthz").is_err());
}
