//! End-to-end tests over a real socket: ephemeral port, concurrent
//! clients, fault isolation, graceful shutdown, keep-alive reuse,
//! pipelining, `/sweep` streaming, and disk-cache warm restarts.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use warped_serve::client::Client;
use warped_serve::cluster::ChaosMode;
use warped_serve::{client, spawn, ServerConfig, ServerHandle, ServiceConfig};

fn test_server() -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 8,
        service: ServiceConfig {
            trace_scale: 0.05,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port")
}

#[test]
fn thirty_two_concurrent_identical_runs_single_flight() {
    let mut server = test_server();
    let addr = server.addr();
    let body = r#"{"benchmark":"nw","technique":"baseline","scale":0.05}"#;

    let barrier = Arc::new(std::sync::Barrier::new(32));
    let handles: Vec<_> = (0..32)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let body = body.to_owned();
            std::thread::spawn(move || {
                barrier.wait();
                client::post_json(addr, "/run", &body).expect("request")
            })
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let first = &responses[0];
    assert_eq!(first.status, 200, "{}", first.text());
    assert!(first.text().contains("\"benchmark\":\"nw\""));
    for response in &responses[1..] {
        assert_eq!(response.status, 200);
        assert_eq!(
            response.body, first.body,
            "all 32 responses must be byte-identical"
        );
    }

    // Single-flight: exactly one simulation ran; the other 31 requests
    // coalesced onto it (or hit the finished cache line) as hits.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let page = metrics.text();
    assert!(
        page.contains("warped_serve_cache_misses_total 1"),
        "exactly one miss:\n{page}"
    );
    assert!(
        page.contains("warped_serve_cache_hits_total 31"),
        "31 deduplicated hits:\n{page}"
    );
    assert_eq!(server.service().cache.misses(), 1);
    assert_eq!(server.service().cache.hits(), 31);

    server.shutdown();
}

#[test]
fn malformed_json_is_a_400_with_a_typed_body() {
    let mut server = test_server();
    let addr = server.addr();

    let response = client::post_json(addr, "/run", "{not json").expect("request");
    assert_eq!(response.status, 400);
    assert!(response.text().contains("\"kind\":\"bad_request\""));

    let response = client::post_json(
        addr,
        "/run",
        r#"{"benchmark":"nope","technique":"baseline"}"#,
    )
    .expect("request");
    assert_eq!(response.status, 400);
    assert!(response.text().contains("unknown benchmark"));

    server.shutdown();
}

#[test]
fn panicking_cell_is_a_500_and_the_server_survives() {
    let mut server = test_server();
    let addr = server.addr();

    // bet = 0 fails gating-parameter validation inside the experiment.
    let response = client::post_json(
        addr,
        "/run",
        r#"{"benchmark":"nw","technique":"baseline","scale":0.05,"bet":0}"#,
    )
    .expect("request");
    assert_eq!(response.status, 500, "{}", response.text());
    assert!(
        response.text().contains("\"kind\":\"panic\""),
        "{}",
        response.text()
    );

    // The worker that caught the panic is still serving.
    let health = client::get(addr, "/healthz").expect("request");
    assert_eq!(health.status, 200);
    let page = client::get(addr, "/metrics").expect("request").text();
    assert!(
        page.contains("warped_serve_panicked_cells_total 1"),
        "{page}"
    );

    server.shutdown();
}

#[test]
fn trace_endpoint_streams_a_chunked_perfetto_trace() {
    let mut server = test_server();
    let addr = server.addr();

    let response = client::get(addr, "/trace?cell=0&scale=0.05").expect("request");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.header("transfer-encoding"),
        Some("chunked"),
        "trace responses stream"
    );
    let text = response.text();
    assert!(text.starts_with("{\"traceEvents\":["), "{:.120}", text);
    assert!(text.trim_end().ends_with('}'));

    let rollup = client::get(addr, "/trace?cell=0&scale=0.05&format=rollup").expect("request");
    assert_eq!(rollup.status, 200);
    assert!(rollup
        .text()
        .lines()
        .next()
        .unwrap()
        .contains("\"epoch\":0"));

    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let mut server = test_server();
    let addr = server.addr();

    // A request slow enough to still be simulating when /shutdown
    // lands (scale 0.4 runs for a noticeable fraction of a second).
    let slow = std::thread::spawn(move || {
        client::post_json(
            addr,
            "/run",
            r#"{"benchmark":"nw","technique":"warped-gates","scale":0.4}"#,
        )
        .expect("in-flight request must complete")
    });
    std::thread::sleep(Duration::from_millis(150));

    let response = client::post_json(addr, "/shutdown", "").expect("request");
    assert_eq!(response.status, 200);
    assert!(response.text().contains("shutting_down"));

    // The accept loop stops and the pool drains: the slow request
    // still gets its full response.
    server.join();
    let slow_response = slow.join().unwrap();
    assert_eq!(slow_response.status, 200, "{}", slow_response.text());
    assert!(slow_response.text().contains("\"cycles\":"));

    // The listener is gone.
    assert!(client::get(addr, "/healthz").is_err());
}

#[test]
fn keep_alive_reuses_one_socket_across_sequential_requests() {
    let mut server = test_server();
    let addr = server.addr();
    let body = r#"{"benchmark":"nw","technique":"baseline","scale":0.05}"#;

    let mut keep_alive = Client::new(addr);
    let first = keep_alive.post_json("/run", body).expect("request");
    assert_eq!(first.status, 200, "{}", first.text());
    for _ in 0..9 {
        let next = keep_alive.post_json("/run", body).expect("request");
        assert_eq!(next.body, first.body);
    }
    assert_eq!(
        keep_alive.connected(),
        1,
        "ten requests must share one socket"
    );
    assert_eq!(keep_alive.reused(), 9);

    // The escape hatch really does dial per request.
    let mut per_request = Client::new(addr).with_keep_alive(false);
    for _ in 0..3 {
        assert_eq!(per_request.get("/healthz").expect("request").status, 200);
    }
    assert_eq!(per_request.connected(), 3);
    assert_eq!(per_request.reused(), 0);

    // The server counted the reuse too.
    let page = keep_alive.get("/metrics").expect("metrics").text();
    assert!(
        page.contains("warped_serve_connections_reused_total 1"),
        "one persistent connection went multi-request:\n{page}"
    );

    server.shutdown();
}

#[test]
fn two_requests_in_one_tcp_segment_are_both_answered() {
    let mut server = test_server();
    let addr = server.addr();

    let mut raw = TcpStream::connect(addr).expect("connect");
    // Two full requests in a single write; the second closes.
    raw.write_all(
        b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n\
          GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    )
    .expect("write");
    let mut wire = String::new();
    raw.read_to_string(&mut wire).expect("read both responses");
    assert_eq!(
        wire.matches("HTTP/1.1 200 OK").count(),
        2,
        "both pipelined requests answered in order:\n{wire}"
    );
    assert_eq!(wire.matches("\r\n\r\nok\n").count(), 2);
    drop(raw);

    let page = client::get(addr, "/metrics").expect("metrics").text();
    assert!(
        page.contains("warped_serve_pipelined_requests_total 1"),
        "the second request was served from the read buffer:\n{page}"
    );

    server.shutdown();
}

#[test]
fn sweep_streams_jsonl_over_tcp_in_completion_order() {
    let mut server = test_server();
    let addr = server.addr();
    let sweep = r#"{"cells":[
        {"benchmark":"nw","technique":"baseline","scale":0.05},
        {"benchmark":"nw","technique":"warped-gates","scale":0.05},
        {"benchmark":"nw","technique":"baseline","scale":0.05}
    ]}"#;

    let mut client = Client::new(addr);
    let mut lines = Vec::new();
    let status = client
        .post_stream_lines("/sweep", sweep, |line| lines.push(line.to_owned()))
        .expect("sweep");
    assert_eq!(status, 200);
    assert_eq!(lines.len(), 3, "one JSONL line per cell: {lines:?}");

    // Completion order is arbitrary; every index must appear once and
    // identical cells must produce byte-identical reports.
    let mut by_index = vec![None; 3];
    for line in &lines {
        let doc = warped_serve::json::parse(line).expect("valid JSON line");
        let index = doc.get("index").and_then(|v| v.as_u64()).unwrap() as usize;
        assert!(line.contains("\"cycles\":"), "{line}");
        assert!(by_index[index].replace(line.clone()).is_none());
    }
    let report_of = |i: usize| {
        let line = by_index[i].as_ref().unwrap();
        line.split_once("\"report\":").unwrap().1.to_owned()
    };
    assert_eq!(report_of(0), report_of(2), "duplicate cells coalesce");
    assert!(report_of(1).contains("\"technique\":\"Warped Gates\""));

    // Three cells entered the sweep, one was a duplicate: two
    // simulations, one dedup.
    let page = client.get("/metrics").expect("metrics").text();
    assert!(page.contains("warped_serve_sweep_cells_total 3"), "{page}");
    assert!(
        page.contains("warped_serve_sweep_cells_deduped_total 1"),
        "{page}"
    );
    assert!(page.contains("warped_serve_simulations_total 2"), "{page}");

    server.shutdown();
}

#[test]
fn saturated_dispatch_queue_sheds_with_503_retry_after() {
    // One worker, stalled, and an explicitly tiny dispatch queue:
    // accepted connections pile up in the pool queue and then the
    // bounded dispatch channel behind it. Once both are full the
    // acceptor must shed — a typed 503 with Retry-After — instead of
    // blocking new connections behind the stall.
    let mut server = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        dispatch_queue: Some(4),
        service: ServiceConfig {
            trace_scale: 0.05,
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.addr();
    server.service().set_chaos(ChaosMode::Stall);

    let clients: Vec<_> = (0..24)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::new(addr)
                    .with_keep_alive(false)
                    .with_read_timeout(Some(Duration::from_secs(60)));
                client.get("/healthz").expect("a verdict, served or shed")
            })
        })
        .collect();

    // Wait until the acceptor has actually shed, then release the
    // stalled worker so the queued connections drain normally.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server
        .service()
        .metrics
        .shed_requests
        .load(Ordering::Relaxed)
        == 0
    {
        assert!(
            std::time::Instant::now() < deadline,
            "the saturated queue never shed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    server.service().set_chaos(ChaosMode::None);

    let responses: Vec<_> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    let served = responses.iter().filter(|r| r.status == 200).count();
    let shed: Vec<_> = responses.iter().filter(|r| r.status == 503).collect();
    assert!(served >= 1, "the queue drains once the stall clears");
    assert!(!shed.is_empty(), "over-capacity connections are shed");
    assert_eq!(served + shed.len(), 24, "every connection gets a verdict");
    for response in &shed {
        assert_eq!(
            response.header("retry-after"),
            Some("1"),
            "shed responses carry Retry-After: {}",
            response.text()
        );
        assert!(
            response.text().contains("\"kind\":\"overloaded\""),
            "{}",
            response.text()
        );
    }
    assert_eq!(
        server
            .service()
            .metrics
            .shed_requests
            .load(Ordering::Relaxed) as usize,
        shed.len(),
        "the counter matches the 503s on the wire"
    );
    let page = client::get(addr, "/metrics").expect("metrics").text();
    assert!(
        page.contains(&format!("warped_serve_shed_requests_total {}", shed.len())),
        "{page}"
    );

    server.shutdown();
}

#[test]
fn restart_over_the_same_cache_dir_serves_from_disk() {
    let dir = std::env::temp_dir().join(format!("warped_serve_restart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        service: ServiceConfig {
            trace_scale: 0.05,
            disk_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        },
        ..ServerConfig::default()
    };
    let body = r#"{"benchmark":"nw","technique":"gates","scale":0.05}"#;

    // First life: simulate once, persist write-behind, flush on the
    // way down.
    let mut server = spawn(config()).expect("bind");
    let first = client::post_json(server.addr(), "/run", body).expect("request");
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(
        server.service().metrics.simulations.load(Ordering::Relaxed),
        1
    );
    server.shutdown();
    server
        .service()
        .disk
        .as_ref()
        .expect("disk enabled")
        .flush();
    drop(server);

    // Second life: same bytes, zero simulations, one disk hit.
    let mut server = spawn(config()).expect("bind");
    let warm = client::post_json(server.addr(), "/run", body).expect("request");
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.body, first.body,
        "disk-cached bytes must be identical across restarts"
    );
    assert_eq!(
        server.service().metrics.simulations.load(Ordering::Relaxed),
        0
    );
    let page = client::get(server.addr(), "/metrics")
        .expect("metrics")
        .text();
    assert!(
        page.contains("warped_serve_disk_cache_hits_total 1"),
        "{page}"
    );
    assert!(page.contains("warped_serve_simulations_total 0"), "{page}");
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
