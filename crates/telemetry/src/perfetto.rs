//! Perfetto/Chrome trace-event JSON export.
//!
//! [`render`] turns a [`TelemetryLog`] into the JSON object format both
//! [Perfetto](https://ui.perfetto.dev) and `chrome://tracing` open
//! directly. Timestamps are **simulation cycles** (the `ts`/`dur`
//! microsecond fields reinterpreted), never wall-clock, so the output
//! is byte-deterministic for a deterministic run.
//!
//! Track layout:
//!
//! * process "execution units" — one thread per gating domain (INT0,
//!   INT1, FP0, … SFU, LDST), carrying disjoint slices for the gating
//!   state machine: `busy` (from busy edges), `idle-detect`
//!   (idle-detect start → gate or busy), `gated` (gate → wakeup, with
//!   the gated length, blackout-hold count, and critical/premature
//!   classification in its args), and `waking` (wakeup → completion).
//!   These lanes are the paper's Figure 2c state machine drawn over
//!   time, and stacking the per-domain tracks reproduces the Figure 3/4
//!   idle/overlap illustrations from a live run.
//! * process "scheduler" — a `priority` thread showing which CUDA-core
//!   type GATES holds highest (slices between priority flips; absent
//!   when no flip ever fired) and an `issue` thread with a per-epoch
//!   issued-instruction counter.
//! * process "gating" — a `tuner` thread with the per-type idle-detect
//!   window counters (one sample per tuner epoch) and a `clock` thread
//!   with one slice per fast-forward jump.

use warped_isa::UnitType;
use warped_power::EnergyTimeline;
use warped_sim::probe::{Event, TelemetryLog};
use warped_sim::DomainLayout;

const PID_UNITS: u64 = 1;
const PID_SCHED: u64 = 2;
const PID_GATING: u64 = 3;
const PID_ENERGY: u64 = 4;

const TID_PRIORITY: u64 = 1;
const TID_ISSUE: u64 = 2;
const TID_TUNER: u64 = 1;
const TID_CLOCK: u64 = 2;
const TID_INT_SAVINGS: u64 = 1;
const TID_FP_SAVINGS: u64 = 2;

/// One trace event, pre-serialized; kept sortable so the output is
/// stable per track.
struct Ev {
    pid: u64,
    tid: u64,
    /// Metadata events sort before payload events on their track.
    meta: bool,
    ts: u64,
    seq: usize,
    json: String,
}

struct Trace {
    events: Vec<Ev>,
}

impl Trace {
    fn push(&mut self, pid: u64, tid: u64, meta: bool, ts: u64, json: String) {
        let seq = self.events.len();
        self.events.push(Ev {
            pid,
            tid,
            meta,
            ts,
            seq,
            json,
        });
    }

    fn meta_name(&mut self, pid: u64, tid: Option<u64>, name: &str) {
        let (kind, tid) = match tid {
            Some(t) => ("thread_name", t),
            None => ("process_name", 0),
        };
        let json = format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{kind}\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
        self.push(pid, tid, true, 0, json);
    }

    /// A complete ("X") slice. `args` must already be a JSON object
    /// body (without braces) or empty.
    fn slice(&mut self, pid: u64, tid: u64, ts: u64, dur: u64, name: &str, args: &str) {
        let args = if args.is_empty() {
            String::new()
        } else {
            format!(",\"args\":{{{args}}}")
        };
        let json = format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
             \"name\":\"{}\"{args}}}",
            escape(name)
        );
        self.push(pid, tid, false, ts, json);
    }

    /// A counter ("C") sample with a single series.
    fn counter(&mut self, pid: u64, tid: u64, ts: u64, name: &str, series: &str, value: u64) {
        let json = format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"{}\",\
             \"args\":{{\"{}\":{value}}}}}",
            escape(name),
            escape(series)
        );
        self.push(pid, tid, false, ts, json);
    }

    /// A counter ("C") sample with a single float series, formatted
    /// with the rollup's fixed six-decimal precision so output stays
    /// byte-deterministic.
    fn counter_f64(&mut self, pid: u64, tid: u64, ts: u64, name: &str, series: &str, value: f64) {
        let json = format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"name\":\"{}\",\
             \"args\":{{\"{}\":{value:.6}}}}}",
            escape(name),
            escape(series)
        );
        self.push(pid, tid, false, ts, json);
    }
}

/// Minimal JSON string escaping (the exporter only emits ASCII names).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The gating state lane currently open on a domain's track.
enum Lane {
    Closed,
    IdleDetect {
        start: u64,
    },
    Gated {
        start: u64,
        holds: u64,
    },
    Waking {
        start: u64,
        gated: u32,
        critical: bool,
        premature: bool,
    },
}

/// Renders a recording as Perfetto/Chrome trace-event JSON.
///
/// `layout` selects which domain tracks exist; `title` lands in the
/// trace's `otherData` block (shown by Perfetto's info panel). The
/// output is deterministic: identical logs render to identical bytes,
/// and events on each `(pid, tid)` track are emitted with
/// non-decreasing timestamps.
#[must_use]
pub fn render(log: &TelemetryLog, layout: DomainLayout, title: &str) -> String {
    render_with_energy(log, layout, title, None)
}

/// [`render`] plus per-epoch energy counter tracks.
///
/// When an [`EnergyTimeline`] that observed the same run is supplied,
/// an "energy" process is added with one counter track per CUDA-core
/// unit type carrying the rollup's energy columns — `int_savings` and
/// `fp_savings` per epoch, in leakage-cycle units — so energy over
/// time renders directly under the gating lanes that explain it.
///
/// # Panics
///
/// Panics if the timeline's epoch length differs from the recording's
/// (the counters would silently misalign otherwise).
#[must_use]
pub fn render_with_energy(
    log: &TelemetryLog,
    layout: DomainLayout,
    title: &str,
    energy: Option<&EnergyTimeline>,
) -> String {
    let mut tr = Trace { events: Vec::new() };
    let end = log.last_cycle + 1;

    tr.meta_name(PID_UNITS, None, "execution units");
    tr.meta_name(PID_SCHED, None, "scheduler");
    tr.meta_name(PID_GATING, None, "gating");
    tr.meta_name(PID_SCHED, Some(TID_PRIORITY), "priority");
    tr.meta_name(PID_SCHED, Some(TID_ISSUE), "issue");
    tr.meta_name(PID_GATING, Some(TID_TUNER), "tuner");
    tr.meta_name(PID_GATING, Some(TID_CLOCK), "clock");

    // --- execution-unit tracks: busy slices + gating state lanes ---
    for domain in layout.all().iter().copied() {
        let tid = domain.index() as u64 + 1;
        tr.meta_name(PID_UNITS, Some(tid), &domain.to_string());

        let mut busy_since: Option<u64> = match log.baseline {
            Some(b) if b.busy[domain.index()] => Some(b.cycle),
            _ => None,
        };
        let mut lane = Lane::Closed;
        for s in log.events_for(domain) {
            match s.event {
                Event::BusyEdge { busy, .. } => {
                    if busy {
                        if let Lane::IdleDetect { start } = lane {
                            tr.slice(PID_UNITS, tid, start, s.cycle - start, "idle-detect", "");
                            lane = Lane::Closed;
                        }
                        busy_since = Some(s.cycle);
                    } else if let Some(start) = busy_since.take() {
                        tr.slice(PID_UNITS, tid, start, s.cycle - start, "busy", "");
                    }
                }
                Event::IdleDetect { .. } => {
                    if matches!(lane, Lane::Closed) {
                        lane = Lane::IdleDetect { start: s.cycle };
                    }
                }
                Event::Gate { .. } => {
                    if let Lane::IdleDetect { start } = lane {
                        tr.slice(PID_UNITS, tid, start, s.cycle - start, "idle-detect", "");
                    }
                    lane = Lane::Gated {
                        start: s.cycle,
                        holds: 0,
                    };
                }
                Event::BlackoutHold { .. } => {
                    if let Lane::Gated { holds, .. } = &mut lane {
                        *holds += 1;
                    }
                }
                Event::Wakeup {
                    gated,
                    critical,
                    premature,
                    ..
                } => {
                    if let Lane::Gated { start, holds } = lane {
                        let args = format!(
                            "\"gated\":{gated},\"holds\":{holds},\
                             \"critical\":{critical},\"premature\":{premature}"
                        );
                        tr.slice(PID_UNITS, tid, start, s.cycle - start, "gated", &args);
                    }
                    lane = Lane::Waking {
                        start: s.cycle,
                        gated,
                        critical,
                        premature,
                    };
                }
                Event::WakeComplete { .. } => {
                    if let Lane::Waking {
                        start,
                        gated,
                        critical,
                        premature,
                    } = lane
                    {
                        let args = format!(
                            "\"gated\":{gated},\"critical\":{critical},\
                             \"premature\":{premature}"
                        );
                        tr.slice(PID_UNITS, tid, start, s.cycle - start, "waking", &args);
                    }
                    lane = Lane::Closed;
                }
                _ => {}
            }
        }
        // Close whatever is still open at the end of the recording.
        if let Some(start) = busy_since {
            tr.slice(PID_UNITS, tid, start, end - start, "busy", "");
        }
        match lane {
            Lane::Closed => {}
            Lane::IdleDetect { start } => {
                tr.slice(PID_UNITS, tid, start, end - start, "idle-detect", "");
            }
            Lane::Gated { start, holds } => {
                let args = format!("\"holds\":{holds},\"open\":true");
                tr.slice(PID_UNITS, tid, start, end - start, "gated", &args);
            }
            Lane::Waking {
                start,
                gated,
                critical,
                premature,
            } => {
                let args =
                    format!("\"gated\":{gated},\"critical\":{critical},\"premature\":{premature}");
                tr.slice(PID_UNITS, tid, start, end - start, "waking", &args);
            }
        }
    }

    // --- scheduler: priority slices (only when a flip ever fired) ---
    let flips: Vec<(u64, UnitType)> = log
        .events
        .iter()
        .filter_map(|s| match s.event {
            Event::PriorityFlip { high } => Some((s.cycle, high)),
            _ => None,
        })
        .collect();
    if let Some(&(_, first_high)) = flips.first() {
        let other = |u: UnitType| match u {
            UnitType::Int => UnitType::Fp,
            _ => UnitType::Int,
        };
        let start0 = log.baseline.map_or(0, |b| b.cycle);
        let mut at = start0;
        let mut high = other(first_high);
        for &(cycle, next_high) in &flips {
            if cycle > at {
                tr.slice(
                    PID_SCHED,
                    TID_PRIORITY,
                    at,
                    cycle - at,
                    &high.to_string(),
                    "",
                );
            }
            at = cycle;
            high = next_high;
        }
        if end > at {
            tr.slice(PID_SCHED, TID_PRIORITY, at, end - at, &high.to_string(), "");
        }
    }

    // --- scheduler: per-epoch issue counter ---
    for (i, e) in log.epochs.iter().enumerate() {
        let ts = i as u64 * log.epoch_len;
        tr.counter(
            PID_SCHED,
            TID_ISSUE,
            ts,
            "issued per epoch",
            "issued",
            e.issued,
        );
    }

    // --- gating: tuner window counters + fast-forward clock slices ---
    for s in &log.events {
        match s.event {
            Event::TunerEpoch { unit, window, .. } => {
                let name = format!("window {unit}");
                tr.counter(
                    PID_GATING,
                    TID_TUNER,
                    s.cycle,
                    &name,
                    "window",
                    u64::from(window),
                );
            }
            Event::FastForward { cycles } => {
                tr.slice(PID_GATING, TID_CLOCK, s.cycle, cycles, "fast-forward", "");
            }
            _ => {}
        }
    }

    // --- energy: per-epoch static-savings counter tracks ---
    if let Some(timeline) = energy {
        assert_eq!(
            log.epoch_len,
            timeline.epoch_len(),
            "recorder and energy timeline must use the same epoch length"
        );
        tr.meta_name(PID_ENERGY, None, "energy");
        tr.meta_name(PID_ENERGY, Some(TID_INT_SAVINGS), "INT static savings");
        tr.meta_name(PID_ENERGY, Some(TID_FP_SAVINGS), "FP static savings");
        for (i, epoch) in timeline.epochs().iter().enumerate() {
            let ts = i as u64 * log.epoch_len;
            for (tid, series, unit) in [
                (TID_INT_SAVINGS, "int_savings", UnitType::Int),
                (TID_FP_SAVINGS, "fp_savings", UnitType::Fp),
            ] {
                tr.counter_f64(
                    PID_ENERGY,
                    tid,
                    ts,
                    &format!("{series} per epoch"),
                    series,
                    epoch[unit.index()].savings(),
                );
            }
        }
    }

    // Stable per-track ordering: metadata first, then by timestamp, ties
    // broken by emission order. This guarantees monotone `ts` per
    // (pid, tid) track and byte-determinism.
    tr.events
        .sort_by_key(|e| (e.pid, e.tid, !e.meta, e.ts, e.seq));

    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in tr.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&e.json);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"title\":\"");
    out.push_str(&escape(title));
    out.push_str("\",\"dropped_events\":");
    out.push_str(&log.dropped.to_string());
    out.push_str(",\"timestamps\":\"simulation cycles\"}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_power::PowerParams;
    use warped_sim::probe::{Recorder, RecorderConfig};
    use warped_sim::trace::{CycleObserver, CycleSample};
    use warped_sim::{DomainId, NUM_DOMAINS};

    fn demo_log() -> TelemetryLog {
        let rec = Recorder::new(RecorderConfig {
            capacity: 1024,
            epoch_len: 100,
        });
        // Baseline sample, one busy burst, then a full gating episode on
        // INT0 plus scheduler/tuner/clock events.
        let mut busy = [false; NUM_DOMAINS];
        busy[0] = true;
        rec.observe_sample(&CycleSample {
            cycle: 0,
            busy,
            powered: [true; NUM_DOMAINS],
            issued: 1,
            active_warps: 8,
        });
        rec.observe_sample(&CycleSample {
            cycle: 1,
            busy: [false; NUM_DOMAINS],
            powered: [true; NUM_DOMAINS],
            issued: 0,
            active_warps: 8,
        });
        rec.record(
            1,
            Event::IdleDetect {
                domain: DomainId::INT0,
            },
        );
        rec.record(
            6,
            Event::Gate {
                domain: DomainId::INT0,
            },
        );
        rec.record(
            20,
            Event::BlackoutHold {
                domain: DomainId::INT0,
            },
        );
        rec.record(
            21,
            Event::Wakeup {
                domain: DomainId::INT0,
                gated: 15,
                critical: false,
                premature: false,
            },
        );
        rec.record(
            24,
            Event::WakeComplete {
                domain: DomainId::INT0,
            },
        );
        rec.record(30, Event::PriorityFlip { high: UnitType::Fp });
        rec.record(
            99,
            Event::TunerEpoch {
                unit: UnitType::Int,
                critical_wakeups: 2,
                window: 6,
            },
        );
        rec.record(40, Event::FastForward { cycles: 10 });
        rec.take()
    }

    #[test]
    fn render_is_deterministic() {
        let log = demo_log();
        let a = render(&log, DomainLayout::fermi(), "demo");
        let b = render(&log, DomainLayout::fermi(), "demo");
        assert_eq!(a, b);
    }

    #[test]
    fn render_contains_all_track_kinds() {
        let log = demo_log();
        let json = render(&log, DomainLayout::fermi(), "demo");
        for needle in [
            "\"execution units\"",
            "\"scheduler\"",
            "\"gating\"",
            "\"INT0\"",
            "\"LDST\"",
            "\"busy\"",
            "\"idle-detect\"",
            "\"gated\"",
            "\"waking\"",
            "\"FP\"", // priority lane after the flip
            "\"window INT\"",
            "\"fast-forward\"",
            "\"issued per epoch\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn gated_slice_carries_hold_and_classification_args() {
        let log = demo_log();
        let json = render(&log, DomainLayout::fermi(), "demo");
        assert!(json.contains("\"gated\":15,\"holds\":1,\"critical\":false,\"premature\":false"));
    }

    #[test]
    fn timestamps_are_monotone_per_track() {
        let log = demo_log();
        let json = render(&log, DomainLayout::fermi(), "demo");
        // Cheap structural check without a JSON parser: per line, pull
        // pid/tid/ts and verify non-decreasing ts per (pid, tid).
        let mut last: std::collections::HashMap<(u64, u64), u64> = Default::default();
        for line in json.lines().filter(|l| l.contains("\"ts\":")) {
            let grab = |key: &str| -> u64 {
                let at = line.find(key).unwrap() + key.len();
                line[at..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .unwrap()
            };
            let k = (grab("\"pid\":"), grab("\"tid\":"));
            let ts = grab("\"ts\":");
            assert!(
                *last.get(&k).unwrap_or(&0) <= ts,
                "track {k:?} went backwards"
            );
            last.insert(k, ts);
        }
        assert!(!last.is_empty());
    }

    #[test]
    fn priority_track_renders_the_pre_flip_span() {
        let log = demo_log();
        let json = render(&log, DomainLayout::fermi(), "demo");
        // GATES flips to FP at cycle 30, so INT held priority before.
        assert!(json.contains("\"name\":\"INT\""));
        assert!(json.contains("\"name\":\"FP\""));
    }

    #[test]
    fn empty_log_renders_valid_skeleton() {
        let rec = Recorder::new(RecorderConfig::default());
        let json = render(&rec.take(), DomainLayout::fermi(), "empty");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"dropped_events\":0"));
        assert!(!json.contains("\"ph\":\"X\""), "no slices without events");
    }

    #[test]
    fn energy_counters_render_when_a_timeline_is_supplied() {
        let rec = Recorder::new(RecorderConfig {
            capacity: 1024,
            epoch_len: 10,
        });
        let mut energy = EnergyTimeline::new(PowerParams::default(), DomainLayout::fermi(), 14, 10);
        for c in 0..40u64 {
            let mut powered = [true; NUM_DOMAINS];
            // Gate one INT cluster from cycle 10 on so the INT savings
            // counter climbs above zero.
            powered[DomainId::INT1.index()] = c < 10;
            let s = CycleSample {
                cycle: c,
                busy: [false; NUM_DOMAINS],
                powered,
                issued: 0,
                active_warps: 0,
            };
            rec.observe_sample(&s);
            energy.observe(&s);
        }
        let log = rec.take();
        let json = render_with_energy(&log, DomainLayout::fermi(), "demo", Some(&energy));
        for needle in [
            "\"energy\"",
            "\"INT static savings\"",
            "\"FP static savings\"",
            "\"int_savings\"",
            "\"fp_savings\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Counter samples land on epoch boundaries with fixed precision.
        assert!(json.contains("\"ph\":\"C\",\"pid\":4"));
        // Without a timeline the energy process never appears.
        let plain = render(&log, DomainLayout::fermi(), "demo");
        assert!(!plain.contains("int_savings"));
        assert!(!plain.contains("\"pid\":4"));
    }

    #[test]
    fn energy_render_is_deterministic() {
        let rec = Recorder::new(RecorderConfig {
            capacity: 256,
            epoch_len: 10,
        });
        let mut energy = EnergyTimeline::new(PowerParams::default(), DomainLayout::fermi(), 14, 10);
        for c in 0..25u64 {
            let s = CycleSample {
                cycle: c,
                busy: [false; NUM_DOMAINS],
                powered: [true; NUM_DOMAINS],
                issued: 0,
                active_warps: 0,
            };
            rec.observe_sample(&s);
            energy.observe(&s);
        }
        let log = rec.take();
        let a = render_with_energy(&log, DomainLayout::fermi(), "x", Some(&energy));
        let b = render_with_energy(&log, DomainLayout::fermi(), "x", Some(&energy));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "same epoch length")]
    fn mismatched_energy_epoch_length_is_rejected() {
        let rec = Recorder::new(RecorderConfig {
            capacity: 64,
            epoch_len: 10,
        });
        rec.observe_sample(&CycleSample {
            cycle: 0,
            busy: [false; NUM_DOMAINS],
            powered: [true; NUM_DOMAINS],
            issued: 0,
            active_warps: 0,
        });
        let energy = EnergyTimeline::new(PowerParams::default(), DomainLayout::fermi(), 14, 20);
        let _ = render_with_energy(&rec.take(), DomainLayout::fermi(), "bad", Some(&energy));
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
