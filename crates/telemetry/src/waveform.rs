//! ASCII waveform views: a bounded sample-window observer
//! ([`UtilizationTrace`]) and replay helpers that rebuild the same
//! waveforms from a recorded [`TelemetryLog`].

use warped_sim::probe::{Event, TelemetryLog};
use warped_sim::trace::{CycleObserver, CycleSample, SpanSample};
use warped_sim::{DomainId, NUM_DOMAINS};

/// Records a bounded window of cycle samples and renders ASCII
/// waveforms.
///
/// # Examples
///
/// ```
/// use warped_telemetry::UtilizationTrace;
/// use warped_sim::trace::{CycleObserver, CycleSample};
/// use warped_sim::{DomainId, NUM_DOMAINS};
///
/// let mut trace = UtilizationTrace::new(100);
/// let mut busy = [false; NUM_DOMAINS];
/// busy[DomainId::INT0.index()] = true;
/// trace.observe(&CycleSample {
///     cycle: 0,
///     busy,
///     powered: [true; NUM_DOMAINS],
///     issued: 1,
///     active_warps: 4,
/// });
/// assert_eq!(trace.len(), 1);
/// let wave = trace.waveform(DomainId::INT0);
/// assert_eq!(wave, "#");
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationTrace {
    capacity: usize,
    samples: Vec<CycleSample>,
}

impl UtilizationTrace {
    /// Creates a trace that keeps the first `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        UtilizationTrace {
            capacity,
            samples: Vec::new(),
        }
    }

    /// Number of samples recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The recorded samples.
    #[must_use]
    pub fn samples(&self) -> &[CycleSample] {
        &self.samples
    }

    /// Renders one domain's activity as a waveform string:
    /// `#` busy, `.` idle-but-powered, `_` gated/waking.
    #[must_use]
    pub fn waveform(&self, domain: DomainId) -> String {
        self.samples
            .iter()
            .map(|s| state_char(s.busy[domain.index()], s.powered[domain.index()]))
            .collect()
    }

    /// Renders the active-warp count as a single-digit density track
    /// (0-9, saturating).
    #[must_use]
    pub fn occupancy_track(&self) -> String {
        self.samples
            .iter()
            .map(|s| {
                let d = (s.active_warps / 5).min(9);
                char::from_digit(d, 10).expect("digit in range")
            })
            .collect()
    }

    /// Fraction of recorded cycles each domain spent powered-but-idle —
    /// the leakage-wasting state power gating targets.
    #[must_use]
    pub fn wasted_fraction(&self, domain: DomainId) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let wasted = self
            .samples
            .iter()
            .filter(|s| !s.busy[domain.index()] && s.powered[domain.index()])
            .count();
        wasted as f64 / self.samples.len() as f64
    }
}

impl CycleObserver for UtilizationTrace {
    fn observe(&mut self, sample: &CycleSample) {
        if self.samples.len() < self.capacity {
            self.samples.push(*sample);
        }
    }

    fn observe_span(&mut self, span: &SpanSample<'_>) {
        // Only the part of the span that still fits is recorded, so a
        // full trace skips the expansion entirely.
        if self.samples.len() >= self.capacity {
            return;
        }
        span.for_each_cycle(|s| self.observe(s));
    }
}

fn state_char(busy: bool, powered: bool) -> char {
    if busy {
        '#'
    } else if powered {
        '.'
    } else {
        '_'
    }
}

/// Replays a recorded log's busy/power edges into the same waveform
/// string [`UtilizationTrace::waveform`] would have produced over the
/// first `limit` cycles: `#` busy, `.` idle-but-powered, `_`
/// gated/waking.
///
/// The replay starts from the log's [`Baseline`](crate::Baseline) and
/// applies each [`Event::BusyEdge`]/[`Event::PowerEdge`] at its stamped
/// cycle. It is exact when no events were dropped (`log.dropped == 0`);
/// a clipped ring loses the oldest edges, skewing every cycle before
/// the first retained one. Returns an empty string for a log with no
/// baseline (nothing was ever sampled).
#[must_use]
pub fn waveform_from_log(log: &TelemetryLog, domain: DomainId, limit: usize) -> String {
    replay(log, domain, limit).0
}

/// Fraction of replayed cycles `domain` spent powered-but-idle,
/// computed from the log's edge stream (exact when `log.dropped == 0`).
/// Zero for an empty log.
#[must_use]
pub fn wasted_fraction_from_log(log: &TelemetryLog, domain: DomainId) -> f64 {
    let (_, wasted, total) = replay(log, domain, usize::MAX);
    if total == 0 {
        0.0
    } else {
        wasted as f64 / total as f64
    }
}

/// Shared replay core: walks cycles `baseline.cycle..=last_cycle`
/// (capped at `limit` characters), returning the waveform, the
/// powered-but-idle cycle count, and the total replayed cycle count.
fn replay(log: &TelemetryLog, domain: DomainId, limit: usize) -> (String, u64, u64) {
    let Some(base) = log.baseline else {
        return (String::new(), 0, 0);
    };
    let di = domain.index();
    debug_assert!(di < NUM_DOMAINS);
    let mut busy = base.busy[di];
    let mut powered = base.powered[di];
    // Edges for this domain, in stamp order (the ring preserves it).
    let mut edges = log
        .events_for(domain)
        .filter(|s| matches!(s.event, Event::BusyEdge { .. } | Event::PowerEdge { .. }));
    let mut next = edges.next();
    let mut wave = String::new();
    let mut wasted: u64 = 0;
    let mut total: u64 = 0;
    let mut cycle = base.cycle;
    while cycle <= log.last_cycle && (total as usize) < limit {
        while let Some(e) = next {
            if e.cycle > cycle {
                break;
            }
            match e.event {
                Event::BusyEdge { busy: b, .. } => busy = b,
                Event::PowerEdge { powered: p, .. } => powered = p,
                _ => {}
            }
            next = edges.next();
        }
        wave.push(state_char(busy, powered));
        wasted += u64::from(!busy && powered);
        total += 1;
        cycle += 1;
    }
    (wave, wasted, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_sim::probe::{Recorder, RecorderConfig};
    use warped_sim::GateTransition;

    fn sample(cycle: u64, busy0: bool, powered0: bool) -> CycleSample {
        let mut busy = [false; NUM_DOMAINS];
        busy[0] = busy0;
        let mut powered = [true; NUM_DOMAINS];
        powered[0] = powered0;
        CycleSample {
            cycle,
            busy,
            powered,
            issued: u8::from(busy0),
            active_warps: 7,
        }
    }

    #[test]
    fn waveform_encodes_three_states() {
        let mut t = UtilizationTrace::new(10);
        t.observe(&sample(0, true, true));
        t.observe(&sample(1, false, true));
        t.observe(&sample(2, false, false));
        assert_eq!(t.waveform(DomainId::INT0), "#._");
    }

    #[test]
    fn capacity_bounds_recording() {
        let mut t = UtilizationTrace::new(2);
        for c in 0..5 {
            t.observe(&sample(c, true, true));
        }
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn wasted_fraction_counts_powered_idle_only() {
        let mut t = UtilizationTrace::new(10);
        t.observe(&sample(0, true, true)); // busy
        t.observe(&sample(1, false, true)); // wasted
        t.observe(&sample(2, false, false)); // gated: not wasted
        t.observe(&sample(3, false, true)); // wasted
        assert!((t.wasted_fraction(DomainId::INT0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn occupancy_track_saturates_at_nine() {
        let mut t = UtilizationTrace::new(4);
        let mut s = sample(0, true, true);
        s.active_warps = 48;
        t.observe(&s);
        assert_eq!(t.occupancy_track(), "9");
    }

    #[test]
    fn empty_trace_is_well_behaved() {
        let t = UtilizationTrace::new(4);
        assert!(t.is_empty());
        assert_eq!(t.waveform(DomainId::FP0), "");
        assert_eq!(t.wasted_fraction(DomainId::FP0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = UtilizationTrace::new(0);
    }

    #[test]
    fn span_expansion_applies_transitions_at_their_offset() {
        let mut t = UtilizationTrace::new(16);
        let span = SpanSample {
            start_cycle: 100,
            cycles: 5,
            busy: [false; NUM_DOMAINS],
            powered: [true; NUM_DOMAINS],
            transitions: &[GateTransition {
                offset: 2,
                domain: DomainId::INT0,
                powered: false,
            }],
            active_warps: 0,
        };
        t.observe_span(&span);
        assert_eq!(t.len(), 5);
        assert_eq!(t.waveform(DomainId::INT0), "..___");
        assert_eq!(t.samples()[0].cycle, 100);
        assert_eq!(t.samples()[4].cycle, 104);
        assert!(t.samples().iter().all(|s| s.issued == 0));
    }

    #[test]
    fn span_expansion_respects_capacity() {
        let mut t = UtilizationTrace::new(3);
        let span = SpanSample {
            start_cycle: 0,
            cycles: 10,
            busy: [false; NUM_DOMAINS],
            powered: [true; NUM_DOMAINS],
            transitions: &[],
            active_warps: 0,
        };
        t.observe_span(&span);
        assert_eq!(t.len(), 3);
        // A full trace ignores further spans entirely.
        t.observe_span(&span);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn log_replay_matches_the_observer_waveform() {
        // Feed the same sample stream to an observer trace and a
        // recorder; the replayed waveform must match character for
        // character, wasted fraction included.
        let states = [
            (true, true),
            (true, true),
            (false, true),
            (false, true),
            (false, false),
            (false, false),
            (false, true),
            (true, true),
        ];
        let mut t = UtilizationTrace::new(64);
        let rec = Recorder::new(RecorderConfig::default());
        for (c, (b, p)) in states.iter().enumerate() {
            let s = sample(c as u64, *b, *p);
            t.observe(&s);
            rec.observe_sample(&s);
        }
        let log = rec.take();
        assert_eq!(log.dropped, 0);
        assert_eq!(
            waveform_from_log(&log, DomainId::INT0, usize::MAX),
            t.waveform(DomainId::INT0)
        );
        assert!(
            (wasted_fraction_from_log(&log, DomainId::INT0) - t.wasted_fraction(DomainId::INT0))
                .abs()
                < 1e-12
        );
        // The limit truncates the rendering.
        assert_eq!(waveform_from_log(&log, DomainId::INT0, 3), "##.");
    }

    #[test]
    fn log_replay_of_empty_log_is_empty() {
        let rec = Recorder::new(RecorderConfig::default());
        let log = rec.take();
        assert_eq!(waveform_from_log(&log, DomainId::SFU, 10), "");
        assert_eq!(wasted_fraction_from_log(&log, DomainId::SFU), 0.0);
    }
}
