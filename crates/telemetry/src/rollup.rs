//! Per-epoch metrics rollups streamed as JSONL.
//!
//! A recording's [`EpochCounters`] are already aggregated by the probe;
//! this module flattens them into self-describing [`RollupRow`]s — one
//! JSON object per epoch, one line per object — optionally merged with
//! the per-epoch static-energy deltas an
//! [`EnergyTimeline`](warped_power::EnergyTimeline) integrated over the
//! same run. JSONL keeps the stream appendable and trivially parseable
//! (`jq`, pandas, a for-loop) without holding the whole run in memory.

use std::io::{self, Write};

use warped_isa::UnitType;
use warped_power::EnergyTimeline;
use warped_sim::probe::{EpochCounters, TelemetryLog};

/// Per-unit-type energy summary for one epoch, in leakage-cycle units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyDelta {
    /// Net static-energy savings vs. always-on (negative when overhead
    /// outweighed the gated time).
    pub savings: f64,
    /// Savings as a fraction of the always-on leakage.
    pub savings_fraction: f64,
}

/// One epoch of the metrics stream: counters plus (optionally) the
/// energy view of the same window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RollupRow {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// First cycle of the epoch (`epoch * epoch_len`).
    pub start_cycle: u64,
    /// The probe's counters for this epoch.
    pub counters: EpochCounters,
    /// INT static-energy delta, when an energy timeline was merged.
    pub int_energy: Option<EnergyDelta>,
    /// FP static-energy delta, when an energy timeline was merged.
    pub fp_energy: Option<EnergyDelta>,
}

impl RollupRow {
    /// Renders the row as one JSON object (no trailing newline). Field
    /// order is fixed, so output is deterministic.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let mut s = format!(
            "{{\"epoch\":{},\"start_cycle\":{},\"cycles\":{},\"issued\":{},\
             \"active_warp_cycles\":{},\"gate_events\":{},\"wakeups\":{},\
             \"critical_wakeups\":{},\"wasted_gates\":{},\"blackout_holds\":{},\
             \"ff_spans\":{},\"ff_cycles\":{},\"priority_flips\":{}",
            self.epoch,
            self.start_cycle,
            c.cycles,
            c.issued,
            c.active_warp_cycles,
            c.gate_events,
            c.wakeups,
            c.critical_wakeups,
            c.wasted_gates,
            c.blackout_holds,
            c.ff_spans,
            c.ff_cycles,
            c.priority_flips,
        );
        for (key, delta) in [("int", self.int_energy), ("fp", self.fp_energy)] {
            if let Some(d) = delta {
                s.push_str(&format!(
                    ",\"{key}_savings\":{:.6},\"{key}_savings_fraction\":{:.6}",
                    d.savings, d.savings_fraction
                ));
            }
        }
        s.push('}');
        s
    }
}

/// Flattens a log's epochs into rollup rows (no energy columns).
#[must_use]
pub fn rows(log: &TelemetryLog) -> Vec<RollupRow> {
    log.epochs
        .iter()
        .enumerate()
        .map(|(i, c)| RollupRow {
            epoch: i,
            start_cycle: i as u64 * log.epoch_len,
            counters: *c,
            int_energy: None,
            fp_energy: None,
        })
        .collect()
}

/// Flattens a log's epochs and merges each with the matching epoch of
/// an energy timeline that observed the same run.
///
/// Only INT and FP deltas are emitted — the energy model gates the CUDA
/// core types; SFU/LDST leakage is tracked elsewhere. Epochs past the
/// end of the (shorter) timeline simply omit the energy columns, which
/// happens naturally for the final partial epoch.
///
/// # Panics
///
/// Panics if the two epoch lengths differ — the rows would silently
/// misalign otherwise.
#[must_use]
pub fn rows_with_energy(log: &TelemetryLog, energy: &EnergyTimeline) -> Vec<RollupRow> {
    assert_eq!(
        log.epoch_len,
        energy.epoch_len(),
        "recorder and energy timeline must use the same epoch length"
    );
    let mut out = rows(log);
    for (row, epoch) in out.iter_mut().zip(energy.epochs()) {
        let delta = |unit: UnitType| {
            let e = epoch[unit.index()];
            EnergyDelta {
                savings: e.savings(),
                savings_fraction: e.savings_fraction(),
            }
        };
        row.int_energy = Some(delta(UnitType::Int));
        row.fp_energy = Some(delta(UnitType::Fp));
    }
    out
}

/// Writes rows as JSONL: one [`RollupRow::to_json`] object per line.
///
/// # Errors
///
/// Propagates any I/O error from the sink.
pub fn write_jsonl<W: Write>(rows: &[RollupRow], mut sink: W) -> io::Result<()> {
    for row in rows {
        sink.write_all(row.to_json().as_bytes())?;
        sink.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_power::PowerParams;
    use warped_sim::probe::{Event, Recorder, RecorderConfig};
    use warped_sim::trace::{CycleObserver, CycleSample};
    use warped_sim::{DomainId, DomainLayout, NUM_DOMAINS};

    fn recorder(epoch_len: u64) -> Recorder {
        Recorder::new(RecorderConfig {
            capacity: 4096,
            epoch_len,
        })
    }

    #[test]
    fn rows_carry_epoch_indices_and_counters() {
        let rec = recorder(10);
        for c in 0..25u64 {
            rec.observe_sample(&CycleSample {
                cycle: c,
                busy: [false; NUM_DOMAINS],
                powered: [true; NUM_DOMAINS],
                issued: 1,
                active_warps: 4,
            });
        }
        rec.record(
            3,
            Event::Gate {
                domain: DomainId::INT1,
            },
        );
        rec.record(
            17,
            Event::Wakeup {
                domain: DomainId::INT1,
                gated: 14,
                critical: false,
                premature: false,
            },
        );
        let rows = rows(&rec.take());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].epoch, 1);
        assert_eq!(rows[1].start_cycle, 10);
        assert_eq!(rows[0].counters.gate_events, 1);
        assert_eq!(rows[1].counters.wakeups, 1);
        assert_eq!(rows[2].counters.cycles, 5);
        assert!(rows.iter().all(|r| r.int_energy.is_none()));
    }

    #[test]
    fn energy_merge_requires_matching_epochs_and_fills_deltas() {
        let rec = recorder(10);
        let mut energy = EnergyTimeline::new(PowerParams::default(), DomainLayout::fermi(), 14, 10);
        for c in 0..40u64 {
            let mut powered = [true; NUM_DOMAINS];
            // Gate one INT cluster from cycle 10 on; epoch 2 is fully
            // gated with no entry edge, so its savings are pure.
            powered[DomainId::INT1.index()] = c < 10;
            let s = CycleSample {
                cycle: c,
                busy: [false; NUM_DOMAINS],
                powered,
                issued: 0,
                active_warps: 0,
            };
            rec.observe_sample(&s);
            energy.observe(&s);
        }
        let rows = rows_with_energy(&rec.take(), &energy);
        assert_eq!(rows.len(), 4);
        let int2 = rows[2].int_energy.expect("merged epoch has INT delta");
        assert!(int2.savings > 0.0, "gated epoch saves energy: {int2:?}");
        assert!(rows[2].fp_energy.is_some());
    }

    #[test]
    #[should_panic(expected = "same epoch length")]
    fn mismatched_epoch_lengths_are_rejected() {
        let rec = recorder(10);
        rec.observe_sample(&CycleSample {
            cycle: 0,
            busy: [false; NUM_DOMAINS],
            powered: [true; NUM_DOMAINS],
            issued: 0,
            active_warps: 0,
        });
        let energy = EnergyTimeline::new(PowerParams::default(), DomainLayout::fermi(), 14, 99);
        let _ = rows_with_energy(&rec.take(), &energy);
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let rec = recorder(5);
        for c in 0..12u64 {
            rec.observe_sample(&CycleSample {
                cycle: c,
                busy: [false; NUM_DOMAINS],
                powered: [true; NUM_DOMAINS],
                issued: 2,
                active_warps: 1,
            });
        }
        let rows = rows(&rec.take());
        let mut buf = Vec::new();
        write_jsonl(&rows, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(
                line.starts_with(&format!("{{\"epoch\":{i},")),
                "line: {line}"
            );
            assert!(line.ends_with('}'));
            // Balanced braces, no raw newlines inside a row.
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(lines[1].contains("\"issued\":10"));
    }

    #[test]
    fn energy_columns_round_to_six_decimals() {
        let row = RollupRow {
            epoch: 0,
            start_cycle: 0,
            counters: EpochCounters::default(),
            int_energy: Some(EnergyDelta {
                savings: 1.0 / 3.0,
                savings_fraction: 2.0 / 3.0,
            }),
            fp_energy: None,
        };
        let json = row.to_json();
        assert!(json.contains("\"int_savings\":0.333333"), "{json}");
        assert!(json.contains("\"int_savings_fraction\":0.666667"));
        assert!(!json.contains("fp_savings"));
    }
}
