//! # warped-telemetry
//!
//! Structured observability for the *Warped Gates* reproduction: the
//! exporter-and-views layer over the simulator's telemetry probe
//! ([`warped_sim::probe`]).
//!
//! The division of labour: the probe (the [`Recorder`] ring buffer and
//! its [`Event`] vocabulary) lives inside `warped-sim` so the gating
//! controller and scheduler can stamp events with zero new dependency
//! edges; everything that *consumes* a recording lives here:
//!
//! * [`perfetto`] — renders a [`TelemetryLog`] as a deterministic
//!   Perfetto/Chrome trace-event JSON file: one track per
//!   execution-unit domain with busy activity and gating state lanes
//!   (idle-detect / gated / waking), a scheduler track with GATES
//!   priority flips, tuner-window and issue counters, and fast-forward
//!   clock spans. Timestamps are simulation cycles, never wall-clock.
//! * [`rollup`] — per-epoch metrics rows (gating events, wasted gates,
//!   critical wakeups, fast-forward coverage) merged with
//!   [`EnergyTimeline`](warped_power::EnergyTimeline) epoch energy,
//!   streamed as JSONL.
//! * [`waveform`] — the ASCII [`UtilizationTrace`] view (an observer
//!   recording a bounded sample window) plus replay helpers that
//!   reconstruct the same waveforms from a recorded event log.
//!
//! Arm telemetry by putting a [`Recorder`] on
//! [`SmConfig::telemetry`](warped_sim::SmConfig); run the simulation;
//! then [`Recorder::take`] the log and hand it to an exporter:
//!
//! ```
//! use warped_isa::KernelBuilder;
//! use warped_sim::{AlwaysOn, LaunchConfig, Sm, SmConfig, TwoLevelScheduler};
//! use warped_telemetry::{perfetto, Recorder, RecorderConfig};
//!
//! let kernel = KernelBuilder::new("tiny")
//!     .begin_loop(4)
//!     .iadd(1, 0, 0)
//!     .end_loop()
//!     .build();
//! let rec = Recorder::new(RecorderConfig::default());
//! let mut cfg = SmConfig::small_for_tests();
//! cfg.telemetry = Some(rec.clone());
//! let sm = Sm::new(
//!     cfg,
//!     LaunchConfig::new(kernel, 8),
//!     Box::new(TwoLevelScheduler::new()),
//!     Box::new(AlwaysOn::new()),
//! );
//! let outcome = sm.run();
//! let log = rec.take();
//! let json = perfetto::render(&log, outcome.stats.layout, "tiny × Baseline");
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perfetto;
pub mod rollup;
pub mod waveform;

pub use rollup::RollupRow;
pub use warped_sim::probe::{
    Baseline, EpochCounters, Event, Recorder, RecorderConfig, Stamped, TelemetryChunk, TelemetryLog,
};
pub use waveform::UtilizationTrace;
