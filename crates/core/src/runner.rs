//! The parallel experiment engine: a benchmark × technique job grid
//! fanned across cores.
//!
//! Every figure in the paper's evaluation is some slice of the
//! 18-benchmark × 6-technique grid (plus sensitivity sweeps), and every
//! cell is an independent single-SM simulation — a pure function of
//! `(Experiment, BenchmarkSpec, Technique)`. This module turns that
//! structure into throughput: [`run_grid`] executes a job list on a
//! scoped-thread worker pool (see [`warped_sim::parallel`]) and returns
//! reports **in the order the jobs were given**, regardless of which
//! worker finished first.
//!
//! Determinism: because each job derives all randomness from its own
//! spec's seed, and results are reassembled by grid index, the output of
//! `run_grid` is bit-for-bit identical at any worker count. A test in
//! this module (and the `determinism` integration test) pins that down.
//!
//! Worker count defaults to [`warped_sim::parallel::worker_count`]
//! (`WARPED_JOBS` env override, else `available_parallelism`); pin it
//! explicitly with [`run_grid_with`].

use crate::experiment::{Experiment, TechniqueRun};
use crate::technique::Technique;
use std::sync::Arc;
use std::time::Duration;
use warped_sim::parallel::{par_map, try_par_map, worker_count};
use warped_trace::TraceWorkload;
use warped_workloads::{Benchmark, BenchmarkSpec};

/// One cell of an experiment grid.
pub type GridJob = (BenchmarkSpec, Technique);

/// One cell of a trace-driven grid. Traces are shared (`Arc`) rather
/// than cloned per cell: a captured kernel can be orders of magnitude
/// larger than a [`BenchmarkSpec`], and every technique cell replays
/// the same workload.
pub type TraceGridJob = (Arc<TraceWorkload>, Technique);

/// A grid result with the wall-clock time its job took on its worker.
#[derive(Debug)]
pub struct TimedRun {
    /// The completed run.
    pub run: TechniqueRun,
    /// Wall-clock time of this job alone.
    pub elapsed: Duration,
}

/// The outcome of one grid cell under the fault-tolerant runner
/// ([`run_grid_fallible`]): either a clean result, or one of the two
/// degraded shapes a poisoned cell can take without killing the grid.
#[derive(Debug)]
pub enum RunOutcome {
    /// The job completed normally.
    Ok(TimedRun),
    /// The job panicked on its worker; the grid kept going.
    Panicked {
        /// The panic payload, rendered as text.
        message: String,
    },
    /// The job hit its cycle cap or wall-clock watchdog and returned a
    /// partial result (`report.timed_out` is set inside).
    TimedOut(TimedRun),
}

impl RunOutcome {
    /// The run, when the cell produced one (clean or timed out).
    #[must_use]
    pub fn timed_run(&self) -> Option<&TimedRun> {
        match self {
            RunOutcome::Ok(t) | RunOutcome::TimedOut(t) => Some(t),
            RunOutcome::Panicked { .. } => None,
        }
    }

    /// Whether the cell degraded (panicked or timed out). A grid with
    /// any degraded cell should be reported as a failure even though
    /// the surviving cells are valid.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !matches!(self, RunOutcome::Ok(_))
    }

    /// A one-line description of how the cell degraded, or `None` for a
    /// clean cell — the text the failure manifest records.
    #[must_use]
    pub fn degradation(&self) -> Option<String> {
        match self {
            RunOutcome::Ok(_) => None,
            RunOutcome::Panicked { message } => Some(format!("panicked: {message}")),
            RunOutcome::TimedOut(t) => Some(format!(
                "timed out after {} cycles ({:.1?} wall clock)",
                t.run.report.cycles, t.elapsed
            )),
        }
    }
}

/// The paper's full evaluation grid: every benchmark in
/// [`Benchmark::ALL`] crossed with every technique in
/// [`Technique::ALL`], benchmark-major.
///
/// # Examples
///
/// ```
/// use warped_gates::runner::full_grid;
///
/// let grid = full_grid();
/// assert_eq!(grid.len(), 18 * 6);
/// ```
#[must_use]
pub fn full_grid() -> Vec<GridJob> {
    grid_of(&Benchmark::ALL, &Technique::ALL)
}

/// Crosses `benchmarks` × `techniques` into a benchmark-major job list.
#[must_use]
pub fn grid_of(benchmarks: &[Benchmark], techniques: &[Technique]) -> Vec<GridJob> {
    benchmarks
        .iter()
        .flat_map(|b| techniques.iter().map(move |t| (b.spec(), *t)))
        .collect()
}

/// Runs `jobs` under `experiment` on the default worker pool, returning
/// reports in job order.
///
/// # Examples
///
/// ```
/// use warped_gates::runner::{grid_of, run_grid};
/// use warped_gates::{Experiment, Technique};
/// use warped_workloads::Benchmark;
///
/// let exp = Experiment::quick_for_tests();
/// let jobs = grid_of(&[Benchmark::Nw], &Technique::ALL);
/// let runs = run_grid(&exp, &jobs);
/// assert_eq!(runs.len(), 6);
/// assert_eq!(runs[0].report.technique, Technique::Baseline);
/// ```
#[must_use]
pub fn run_grid(experiment: &Experiment, jobs: &[GridJob]) -> Vec<TechniqueRun> {
    run_grid_with(experiment, jobs, worker_count())
}

/// [`run_grid`] with an explicit worker count (`1` forces the serial
/// path — the reference the determinism tests compare against).
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn run_grid_with(
    experiment: &Experiment,
    jobs: &[GridJob],
    workers: usize,
) -> Vec<TechniqueRun> {
    assert!(workers > 0, "need at least one worker");
    par_map(jobs.len(), workers, |i| {
        let (spec, technique) = &jobs[i];
        experiment.run(spec, *technique)
    })
}

/// Crosses `traces` × `techniques` into a trace-major job list, the
/// trace-driven analogue of [`grid_of`].
#[must_use]
pub fn trace_grid_of(traces: &[Arc<TraceWorkload>], techniques: &[Technique]) -> Vec<TraceGridJob> {
    traces
        .iter()
        .flat_map(|w| techniques.iter().map(move |t| (Arc::clone(w), *t)))
        .collect()
}

/// Runs a trace-driven job list on the default worker pool, returning
/// reports in job order — [`run_grid`] for captured workloads. The same
/// determinism guarantee holds: output is bit-identical at any worker
/// count.
#[must_use]
pub fn run_trace_grid(experiment: &Experiment, jobs: &[TraceGridJob]) -> Vec<TechniqueRun> {
    run_trace_grid_with(experiment, jobs, worker_count())
}

/// [`run_trace_grid`] with an explicit worker count.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn run_trace_grid_with(
    experiment: &Experiment,
    jobs: &[TraceGridJob],
    workers: usize,
) -> Vec<TechniqueRun> {
    assert!(workers > 0, "need at least one worker");
    par_map(jobs.len(), workers, |i| {
        let (trace, technique) = &jobs[i];
        experiment.run_trace(trace, *technique)
    })
}

/// [`run_grid_with`] capturing per-job wall-clock time, for the `sweep`
/// binary's perf trajectory.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn run_grid_timed(experiment: &Experiment, jobs: &[GridJob], workers: usize) -> Vec<TimedRun> {
    assert!(workers > 0, "need at least one worker");
    par_map(jobs.len(), workers, |i| {
        let (spec, technique) = &jobs[i];
        let start = std::time::Instant::now();
        let run = experiment.run(spec, *technique);
        TimedRun {
            run,
            elapsed: start.elapsed(),
        }
    })
}

/// The fault-tolerant grid runner: like [`run_grid_timed`], but a cell
/// that panics is isolated on its worker (via
/// [`warped_sim::parallel::try_par_map`]) and lands as
/// [`RunOutcome::Panicked`] while every other cell completes exactly as
/// it would in a clean run; a cell that exceeds its cycle or wall-clock
/// budget lands as [`RunOutcome::TimedOut`]. Results come back in job
/// order.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn run_grid_fallible(
    experiment: &Experiment,
    jobs: &[GridJob],
    workers: usize,
) -> Vec<RunOutcome> {
    run_grid_fallible_with(experiment, jobs, workers, |_, _| {})
}

/// [`run_grid_fallible`] with a completion hook: `on_done(index,
/// outcome)` fires on the worker thread as each clean or timed-out cell
/// lands (this is where the sweep binary journals progress), and after
/// the pool drains for panicked cells (the panic unwinds past the hook's
/// call site). The hook must be `Sync`; synchronise interior state
/// yourself.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn run_grid_fallible_with<F>(
    experiment: &Experiment,
    jobs: &[GridJob],
    workers: usize,
    on_done: F,
) -> Vec<RunOutcome>
where
    F: Fn(usize, &RunOutcome) + Sync,
{
    assert!(workers > 0, "need at least one worker");
    try_par_map(jobs.len(), workers, |i| {
        let (spec, technique) = &jobs[i];
        let start = std::time::Instant::now();
        let run = experiment.run(spec, *technique);
        let timed = TimedRun {
            run,
            elapsed: start.elapsed(),
        };
        let outcome = if timed.run.report.timed_out {
            RunOutcome::TimedOut(timed)
        } else {
            RunOutcome::Ok(timed)
        };
        on_done(i, &outcome);
        outcome
    })
    .into_iter()
    .enumerate()
    .map(|(i, r)| match r {
        Ok(outcome) => outcome,
        Err(failure) => {
            let outcome = RunOutcome::Panicked {
                message: failure.message,
            };
            on_done(i, &outcome);
            outcome
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_benchmark_major() {
        let jobs = grid_of(
            &[Benchmark::Nw, Benchmark::Bfs],
            &[Technique::Baseline, Technique::WarpedGates],
        );
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].0.name, Benchmark::Nw.spec().name);
        assert_eq!(jobs[0].1, Technique::Baseline);
        assert_eq!(jobs[1].1, Technique::WarpedGates);
        assert_eq!(jobs[2].0.name, Benchmark::Bfs.spec().name);
    }

    #[test]
    fn run_grid_preserves_job_order() {
        let exp = Experiment::quick_for_tests();
        let jobs = grid_of(&[Benchmark::Hotspot], &Technique::ALL);
        let runs = run_grid(&exp, &jobs);
        assert_eq!(runs.len(), jobs.len());
        for (run, (spec, technique)) in runs.iter().zip(&jobs) {
            assert_eq!(run.report.benchmark, spec.name);
            assert_eq!(run.report.technique, *technique);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let exp = Experiment::quick_for_tests();
        let jobs = grid_of(
            &[Benchmark::Hotspot, Benchmark::Srad],
            &[Technique::Baseline, Technique::WarpedGates],
        );
        let serial = run_grid_with(&exp, &jobs, 1);
        let parallel = run_grid_with(&exp, &jobs, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.report.cycles, p.report.cycles);
            assert_eq!(s.report.gating, p.report.gating);
        }
    }

    #[test]
    fn trace_grid_mirrors_the_synthetic_grid() {
        // Capture a pre-scaled spec and run both sides at scale 1.0:
        // spec scaling divides trips *before* the generator splits them
        // across barrier rounds, so scaling a full-size capture is not
        // the same workload as capturing a scaled spec.
        let exp = Experiment::paper_defaults().with_sanitize(true);
        let spec = Benchmark::Nw.spec().scaled(0.08);
        let kernel = spec.kernel();
        let text = warped_trace::capture(&warped_trace::CaptureSpec {
            name: spec.name,
            kernel: &kernel,
            total_warps: spec.total_warps,
            block_warps: spec.block_warps,
            stagger: spec.body_len as u32,
            waves: spec.launches,
            l1_hit_rate: spec.l1_hit_rate,
            mem_seed: spec.seed ^ 0xdead_beef,
        });
        let trace = Arc::new(warped_trace::parse_str(&text).unwrap());
        let jobs = trace_grid_of(&[trace], &Technique::ALL);
        assert_eq!(jobs.len(), 6);
        let serial = run_trace_grid_with(&exp, &jobs, 1);
        let parallel = run_trace_grid_with(&exp, &jobs, 4);
        let native: Vec<_> = Technique::ALL
            .into_iter()
            .map(|t| exp.run(&spec, t))
            .collect();
        for ((s, p), n) in serial.iter().zip(&parallel).zip(&native) {
            assert_eq!(s.report.cycles, p.report.cycles, "worker-count invariance");
            assert_eq!(s.report.gating, p.report.gating);
            assert_eq!(
                s.report.cycles, n.report.cycles,
                "trace replays the native run"
            );
        }
    }

    #[test]
    fn timed_runs_report_nonzero_wall_clock() {
        let exp = Experiment::quick_for_tests();
        let jobs = grid_of(&[Benchmark::Nw], &[Technique::Baseline]);
        let timed = run_grid_timed(&exp, &jobs, 2);
        assert_eq!(timed.len(), 1);
        assert!(timed[0].elapsed > Duration::ZERO);
        assert!(timed[0].run.report.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = run_grid_with(&Experiment::quick_for_tests(), &[], 0);
    }

    /// A job list with one cell poisoned: an out-of-range hit rate makes
    /// config validation panic inside `Experiment::run` (workload
    /// scaling would heal a zero warp count, so poison a field scaling
    /// leaves alone).
    fn poisoned_jobs() -> Vec<GridJob> {
        let mut jobs = grid_of(
            &[Benchmark::Hotspot, Benchmark::Srad],
            &[Technique::Baseline, Technique::WarpedGates],
        );
        jobs[1].0.l1_hit_rate = 2.0;
        jobs
    }

    #[test]
    fn fallible_runner_isolates_a_panicking_cell() {
        let exp = Experiment::quick_for_tests();
        let jobs = poisoned_jobs();
        let outcomes = run_grid_fallible(&exp, &jobs, 2);
        assert_eq!(outcomes.len(), 4);
        let RunOutcome::Panicked { message } = &outcomes[1] else {
            panic!("poisoned cell must land as Panicked, got {:?}", outcomes[1]);
        };
        assert!(message.contains("l1_hit_rate"), "got: {message}");
        assert!(outcomes[1].is_degraded());
        assert!(outcomes[1].degradation().is_some());
        // Every surviving cell is bit-identical to a clean run.
        let mut clean_jobs = jobs.clone();
        clean_jobs.remove(1);
        let clean = run_grid_with(&exp, &clean_jobs, 1);
        for (survivor, reference) in [(&outcomes[0], &clean[0]), (&outcomes[2], &clean[1])] {
            let run = survivor.timed_run().expect("survivor has a run");
            assert!(!survivor.is_degraded());
            assert_eq!(run.run.report.cycles, reference.report.cycles);
            assert_eq!(run.run.report.gating, reference.report.gating);
        }
    }

    #[test]
    fn fallible_runner_maps_watchdog_expiry_to_timed_out() {
        let exp = Experiment::quick_for_tests().with_job_timeout(Some(Duration::ZERO));
        let jobs = grid_of(&[Benchmark::Nw], &[Technique::Baseline]);
        let outcomes = run_grid_fallible(&exp, &jobs, 1);
        assert!(
            matches!(outcomes[0], RunOutcome::TimedOut(_)),
            "zero budget must trip the watchdog, got {:?}",
            outcomes[0]
        );
        assert!(outcomes[0].timed_run().is_some());
        assert!(outcomes[0].is_degraded());
    }

    #[test]
    fn completion_hook_fires_for_every_cell() {
        let exp = Experiment::quick_for_tests();
        let jobs = poisoned_jobs();
        let seen = std::sync::Mutex::new(Vec::new());
        let outcomes = run_grid_fallible_with(&exp, &jobs, 2, |i, outcome| {
            seen.lock().unwrap().push((i, outcome.is_degraded()));
        });
        assert_eq!(outcomes.len(), 4);
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![(0, false), (1, true), (2, false), (3, false)],
            "hook must fire once per cell with its degradation status"
        );
    }
}
