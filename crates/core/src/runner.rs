//! The parallel experiment engine: a benchmark × technique job grid
//! fanned across cores.
//!
//! Every figure in the paper's evaluation is some slice of the
//! 18-benchmark × 6-technique grid (plus sensitivity sweeps), and every
//! cell is an independent single-SM simulation — a pure function of
//! `(Experiment, BenchmarkSpec, Technique)`. This module turns that
//! structure into throughput: [`run_grid`] executes a job list on a
//! scoped-thread worker pool (see [`warped_sim::parallel`]) and returns
//! reports **in the order the jobs were given**, regardless of which
//! worker finished first.
//!
//! Determinism: because each job derives all randomness from its own
//! spec's seed, and results are reassembled by grid index, the output of
//! `run_grid` is bit-for-bit identical at any worker count. A test in
//! this module (and the `determinism` integration test) pins that down.
//!
//! Worker count defaults to [`warped_sim::parallel::worker_count`]
//! (`WARPED_JOBS` env override, else `available_parallelism`); pin it
//! explicitly with [`run_grid_with`].

use crate::experiment::{Experiment, TechniqueRun};
use crate::technique::Technique;
use std::time::Duration;
use warped_sim::parallel::{par_map, worker_count};
use warped_workloads::{Benchmark, BenchmarkSpec};

/// One cell of an experiment grid.
pub type GridJob = (BenchmarkSpec, Technique);

/// A grid result with the wall-clock time its job took on its worker.
#[derive(Debug)]
pub struct TimedRun {
    /// The completed run.
    pub run: TechniqueRun,
    /// Wall-clock time of this job alone.
    pub elapsed: Duration,
}

/// The paper's full evaluation grid: every benchmark in
/// [`Benchmark::ALL`] crossed with every technique in
/// [`Technique::ALL`], benchmark-major.
///
/// # Examples
///
/// ```
/// use warped_gates::runner::full_grid;
///
/// let grid = full_grid();
/// assert_eq!(grid.len(), 18 * 6);
/// ```
#[must_use]
pub fn full_grid() -> Vec<GridJob> {
    grid_of(&Benchmark::ALL, &Technique::ALL)
}

/// Crosses `benchmarks` × `techniques` into a benchmark-major job list.
#[must_use]
pub fn grid_of(benchmarks: &[Benchmark], techniques: &[Technique]) -> Vec<GridJob> {
    benchmarks
        .iter()
        .flat_map(|b| techniques.iter().map(move |t| (b.spec(), *t)))
        .collect()
}

/// Runs `jobs` under `experiment` on the default worker pool, returning
/// reports in job order.
///
/// # Examples
///
/// ```
/// use warped_gates::runner::{grid_of, run_grid};
/// use warped_gates::{Experiment, Technique};
/// use warped_workloads::Benchmark;
///
/// let exp = Experiment::quick_for_tests();
/// let jobs = grid_of(&[Benchmark::Nw], &Technique::ALL);
/// let runs = run_grid(&exp, &jobs);
/// assert_eq!(runs.len(), 6);
/// assert_eq!(runs[0].report.technique, Technique::Baseline);
/// ```
#[must_use]
pub fn run_grid(experiment: &Experiment, jobs: &[GridJob]) -> Vec<TechniqueRun> {
    run_grid_with(experiment, jobs, worker_count())
}

/// [`run_grid`] with an explicit worker count (`1` forces the serial
/// path — the reference the determinism tests compare against).
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn run_grid_with(
    experiment: &Experiment,
    jobs: &[GridJob],
    workers: usize,
) -> Vec<TechniqueRun> {
    assert!(workers > 0, "need at least one worker");
    par_map(jobs.len(), workers, |i| {
        let (spec, technique) = &jobs[i];
        experiment.run(spec, *technique)
    })
}

/// [`run_grid_with`] capturing per-job wall-clock time, for the `sweep`
/// binary's perf trajectory.
///
/// # Panics
///
/// Panics if `workers` is zero.
#[must_use]
pub fn run_grid_timed(experiment: &Experiment, jobs: &[GridJob], workers: usize) -> Vec<TimedRun> {
    assert!(workers > 0, "need at least one worker");
    par_map(jobs.len(), workers, |i| {
        let (spec, technique) = &jobs[i];
        let start = std::time::Instant::now();
        let run = experiment.run(spec, *technique);
        TimedRun {
            run,
            elapsed: start.elapsed(),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_benchmark_major() {
        let jobs = grid_of(
            &[Benchmark::Nw, Benchmark::Bfs],
            &[Technique::Baseline, Technique::WarpedGates],
        );
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].0.name, Benchmark::Nw.spec().name);
        assert_eq!(jobs[0].1, Technique::Baseline);
        assert_eq!(jobs[1].1, Technique::WarpedGates);
        assert_eq!(jobs[2].0.name, Benchmark::Bfs.spec().name);
    }

    #[test]
    fn run_grid_preserves_job_order() {
        let exp = Experiment::quick_for_tests();
        let jobs = grid_of(&[Benchmark::Hotspot], &Technique::ALL);
        let runs = run_grid(&exp, &jobs);
        assert_eq!(runs.len(), jobs.len());
        for (run, (spec, technique)) in runs.iter().zip(&jobs) {
            assert_eq!(run.report.benchmark, spec.name);
            assert_eq!(run.report.technique, *technique);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let exp = Experiment::quick_for_tests();
        let jobs = grid_of(
            &[Benchmark::Hotspot, Benchmark::Srad],
            &[Technique::Baseline, Technique::WarpedGates],
        );
        let serial = run_grid_with(&exp, &jobs, 1);
        let parallel = run_grid_with(&exp, &jobs, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.report.cycles, p.report.cycles);
            assert_eq!(s.report.gating, p.report.gating);
        }
    }

    #[test]
    fn timed_runs_report_nonzero_wall_clock() {
        let exp = Experiment::quick_for_tests();
        let jobs = grid_of(&[Benchmark::Nw], &[Technique::Baseline]);
        let timed = run_grid_timed(&exp, &jobs, 2);
        assert_eq!(timed.len(), 1);
        assert!(timed[0].elapsed > Duration::ZERO);
        assert!(timed[0].run.report.cycles > 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = run_grid_with(&Experiment::quick_for_tests(), &[], 0);
    }
}
