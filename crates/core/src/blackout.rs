//! Blackout power gating (paper Section 5).
//!
//! Both policies remove the uncompensated→wakeup edge from the
//! conventional state machine for the four CUDA-core clusters: once
//! gated, a cluster sleeps for at least the break-even time, even when
//! ready instructions wait for it. SFU and LDST keep the conventional
//! rules (the paper applies Blackout only to the INT/FP clusters).

use warped_gating::{GateForecast, GatePolicy, GatingParams, PolicyCtx};
use warped_sim::DomainId;

/// Naive Blackout: conventional idle-detect entry, break-even-locked
/// exit, every cluster on its own.
///
/// # Examples
///
/// ```
/// use warped_gates::NaiveBlackoutPolicy;
/// use warped_gating::{Controller, GatingParams, StaticIdleDetect};
///
/// let ctl = Controller::new(
///     GatingParams::default(),
///     NaiveBlackoutPolicy::new(),
///     StaticIdleDetect::new(),
/// );
/// assert_eq!(warped_sim::PowerGating::name(&ctl), "NaiveBlackout");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveBlackoutPolicy {
    _private: (),
}

impl NaiveBlackoutPolicy {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        NaiveBlackoutPolicy { _private: () }
    }
}

impl GatePolicy for NaiveBlackoutPolicy {
    fn should_gate(&self, ctx: &PolicyCtx<'_>) -> bool {
        ctx.idle_run >= ctx.idle_detect
    }

    fn may_wake(&self, ctx: &PolicyCtx<'_>, elapsed: u32) -> bool {
        if ctx.domain.is_cuda_core() {
            elapsed >= ctx.params.bet
        } else {
            true
        }
    }

    fn forecast_gate(&self, ctx: &PolicyCtx<'_>) -> GateForecast {
        GateForecast::AtIdleRun(ctx.idle_detect)
    }

    // Blackout's defining guarantee, machine-checked by the sanitizer:
    // a gated CUDA-core cluster stays dark for the break-even time.
    fn wake_floor(&self, domain: DomainId, params: &GatingParams) -> u32 {
        if domain.is_cuda_core() {
            params.bet
        } else {
            0
        }
    }

    fn name(&self) -> &'static str {
        "NaiveBlackout"
    }
}

/// Coordinated Blackout: Blackout plus cluster coordination.
///
/// While every cluster of a type is awake, the usual idle-detect window
/// applies. Once any cluster of the type is in blackout, the remaining
/// awake clusters stop using idle-detect and instead consult the type's
/// active-warp subset (`INT_ACTV`/`FP_ACTV`):
///
/// * subset empty → gate *immediately*, even if the idle run is shorter
///   than the window;
/// * subset non-empty → the *last* awake cluster of the type never
///   gates, so a soon-to-be-ready warp never pays a wakeup.
///
/// At least one cluster of a type therefore stays on whenever warps of
/// that type are waiting — the property the paper uses to recover Naive
/// Blackout's performance loss. With the paper's two Fermi clusters this
/// reduces exactly to its description ("the second cluster"); the same
/// rule generalises unchanged to the Kepler-like six-cluster and
/// GCN-like four-cluster layouts the paper's Section 5 points at.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoordinatedBlackoutPolicy {
    _private: (),
}

impl CoordinatedBlackoutPolicy {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        CoordinatedBlackoutPolicy { _private: () }
    }
}

impl GatePolicy for CoordinatedBlackoutPolicy {
    fn should_gate(&self, ctx: &PolicyCtx<'_>) -> bool {
        if !ctx.domain.is_cuda_core() {
            return ctx.idle_run >= ctx.idle_detect;
        }
        // The last awake cluster of a type never abandons waiting warps.
        if ctx.active_subset > 0 && ctx.peers.active == 0 && ctx.peers.total() > 0 {
            return false;
        }
        if ctx.peers.gated > 0 {
            // A sibling is already in blackout: the active subset
            // decides, not the idle-detect window.
            ctx.active_subset == 0
        } else {
            ctx.idle_run >= ctx.idle_detect
        }
    }

    fn may_wake(&self, ctx: &PolicyCtx<'_>, elapsed: u32) -> bool {
        if ctx.domain.is_cuda_core() {
            elapsed >= ctx.params.bet
        } else {
            true
        }
    }

    // Mirrors `should_gate` branch by branch: the only branch that reads
    // `idle_run` is the peers-all-awake window check, so every other
    // branch collapses to a constant (`AtIdleRun(0)` = always,
    // `Never` = never) under the frozen-context contract.
    fn forecast_gate(&self, ctx: &PolicyCtx<'_>) -> GateForecast {
        if !ctx.domain.is_cuda_core() {
            return GateForecast::AtIdleRun(ctx.idle_detect);
        }
        if ctx.active_subset > 0 && ctx.peers.active == 0 && ctx.peers.total() > 0 {
            return GateForecast::Never;
        }
        if ctx.peers.gated > 0 {
            if ctx.active_subset == 0 {
                GateForecast::AtIdleRun(0)
            } else {
                GateForecast::Never
            }
        } else {
            GateForecast::AtIdleRun(ctx.idle_detect)
        }
    }

    // Coordination changes gate *entry*, not the blackout exit rule:
    // the BET floor is identical to Naive Blackout's.
    fn wake_floor(&self, domain: DomainId, params: &GatingParams) -> u32 {
        if domain.is_cuda_core() {
            params.bet
        } else {
            0
        }
    }

    fn name(&self) -> &'static str {
        "CoordinatedBlackout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_gating::{GateState, GatingParams, PeerSummary};
    use warped_sim::DomainId;

    fn ctx<'a>(
        params: &'a GatingParams,
        domain: DomainId,
        idle_run: u32,
        peer_states: &[GateState],
        active_subset: u32,
    ) -> PolicyCtx<'a> {
        PolicyCtx {
            domain,
            params,
            idle_detect: params.idle_detect,
            idle_run,
            peers: PeerSummary::from_states(peer_states),
            active_subset,
            demand: 0,
        }
    }

    #[test]
    fn naive_blackout_locks_until_bet() {
        let p = GatingParams::default();
        let policy = NaiveBlackoutPolicy::new();
        let c = ctx(&p, DomainId::INT0, 0, &[], 0);
        assert!(!policy.may_wake(&c, 13));
        assert!(policy.may_wake(&c, 14));
        assert!(policy.may_wake(&c, 15));
    }

    #[test]
    fn naive_blackout_keeps_conventional_rules_for_sfu_and_ldst() {
        let p = GatingParams::default();
        let policy = NaiveBlackoutPolicy::new();
        for d in [DomainId::SFU, DomainId::LDST] {
            let c = ctx(&p, d, 0, &[], 0);
            assert!(policy.may_wake(&c, 1), "{d} wakes like conventional PG");
        }
    }

    #[test]
    fn naive_gate_entry_uses_idle_detect() {
        let p = GatingParams::default();
        let policy = NaiveBlackoutPolicy::new();
        assert!(!policy.should_gate(&ctx(&p, DomainId::FP0, 4, &[], 3)));
        assert!(policy.should_gate(&ctx(&p, DomainId::FP0, 5, &[], 3)));
    }

    #[test]
    fn coordinated_gates_second_cluster_immediately_when_subset_empty() {
        let p = GatingParams::default();
        let policy = CoordinatedBlackoutPolicy::new();
        let peer_gated = [GateState::Gated { elapsed: 3 }];
        // Idle for only 1 cycle, but peer gated and no waiting warps.
        assert!(policy.should_gate(&ctx(&p, DomainId::INT1, 1, &peer_gated, 0)));
    }

    #[test]
    fn coordinated_never_gates_second_cluster_while_warps_wait() {
        let p = GatingParams::default();
        let policy = CoordinatedBlackoutPolicy::new();
        let peer_gated = [GateState::Gated { elapsed: 3 }];
        // Idle far beyond the window, but one warp waits in the subset.
        assert!(!policy.should_gate(&ctx(&p, DomainId::INT1, 50, &peer_gated, 1)));
    }

    #[test]
    fn coordinated_uses_idle_detect_while_peer_awake() {
        let p = GatingParams::default();
        let policy = CoordinatedBlackoutPolicy::new();
        let peer_on = [GateState::active()];
        assert!(!policy.should_gate(&ctx(&p, DomainId::INT1, 4, &peer_on, 0)));
        assert!(policy.should_gate(&ctx(&p, DomainId::INT1, 5, &peer_on, 0)));
        // A waking peer counts as not-in-blackout, but with no *active*
        // peer the last-awake rule protects waiting warps.
        let peer_waking = [GateState::Waking { left: 2 }];
        assert!(!policy.should_gate(&ctx(&p, DomainId::INT1, 5, &peer_waking, 1)));
        assert!(policy.should_gate(&ctx(&p, DomainId::INT1, 5, &peer_waking, 0)));
    }

    #[test]
    fn coordinated_blackout_locks_cuda_cores_until_bet() {
        let p = GatingParams::default();
        let policy = CoordinatedBlackoutPolicy::new();
        let c = ctx(&p, DomainId::FP1, 0, &[GateState::active()], 2);
        assert!(!policy.may_wake(&c, 13));
        assert!(policy.may_wake(&c, 14));
        let sfu = ctx(&p, DomainId::SFU, 0, &[], 0);
        assert!(policy.may_wake(&sfu, 1));
    }

    #[test]
    fn forecasts_match_should_gate_pointwise() {
        // The GateForecast contract: with everything except idle_run
        // frozen, the forecast must reproduce should_gate exactly. Sweep
        // the coordination-relevant context space for both policies.
        let p = GatingParams::default();
        let naive = NaiveBlackoutPolicy::new();
        let coord = CoordinatedBlackoutPolicy::new();
        let peer_sets: &[&[GateState]] = &[
            &[],
            &[GateState::active()],
            &[GateState::Gated { elapsed: 3 }],
            &[GateState::Waking { left: 2 }],
            &[GateState::Gated { elapsed: 7 }, GateState::active()],
        ];
        for domain in [DomainId::INT1, DomainId::FP0, DomainId::SFU, DomainId::LDST] {
            for peers in peer_sets {
                for subset in [0, 1, 4] {
                    for idle_run in 0..12 {
                        let c = ctx(&p, domain, idle_run, peers, subset);
                        for (name, policy) in [
                            ("naive", &naive as &dyn GatePolicy),
                            ("coordinated", &coord as &dyn GatePolicy),
                        ] {
                            let expect = match policy.forecast_gate(&c) {
                                GateForecast::AtIdleRun(t) => idle_run >= t,
                                GateForecast::Never => false,
                                GateForecast::Unknown => continue,
                            };
                            assert_eq!(
                                policy.should_gate(&c),
                                expect,
                                "{name}: {domain} idle_run={idle_run} \
                                 subset={subset} peers={peers:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn blackout_wake_floor_is_bet_for_cuda_cores_only() {
        let p = GatingParams::default();
        let naive = NaiveBlackoutPolicy::new();
        let coord = CoordinatedBlackoutPolicy::new();
        for policy in [&naive as &dyn GatePolicy, &coord] {
            for d in [DomainId::INT0, DomainId::INT1, DomainId::FP0, DomainId::FP1] {
                assert_eq!(policy.wake_floor(d, &p), p.bet, "{d}");
            }
            assert_eq!(policy.wake_floor(DomainId::SFU, &p), 0);
            assert_eq!(policy.wake_floor(DomainId::LDST, &p), 0);
        }
    }

    #[test]
    fn coordinated_sfu_ldst_keep_idle_detect_entry() {
        let p = GatingParams::default();
        let policy = CoordinatedBlackoutPolicy::new();
        assert!(!policy.should_gate(&ctx(&p, DomainId::LDST, 4, &[], 9)));
        assert!(policy.should_gate(&ctx(&p, DomainId::LDST, 5, &[], 9)));
    }
}
