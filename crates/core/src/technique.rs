//! The evaluated technique stacks (the naming convention of Section 7.2).

use crate::adaptive::AdaptiveIdleDetect;
use crate::blackout::{CoordinatedBlackoutPolicy, NaiveBlackoutPolicy};
use crate::gates::GatesScheduler;
use std::fmt;
use warped_gating::{Controller, GatingParams, StaticIdleDetect};
use warped_sim::{AlwaysOn, DomainLayout, PowerGating, TwoLevelScheduler, WarpScheduler};

/// One of the paper's evaluated configurations.
///
/// Following Section 7.2's naming convention:
///
/// | Variant | Scheduler | Gating |
/// |---|---|---|
/// | `Baseline` | two-level | none (always on) |
/// | `ConvPg` | two-level | conventional |
/// | `Gates` | GATES | conventional |
/// | `NaiveBlackout` | GATES | naive Blackout |
/// | `CoordinatedBlackout` | GATES | coordinated Blackout |
/// | `WarpedGates` | GATES | coordinated Blackout + adaptive idle detect |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Technique {
    /// Two-level scheduler, no power gating.
    Baseline,
    /// Conventional power gating under the two-level scheduler.
    ConvPg,
    /// GATES scheduling with conventional power gating.
    Gates,
    /// GATES + Naive Blackout.
    NaiveBlackout,
    /// GATES + Coordinated Blackout.
    CoordinatedBlackout,
    /// GATES + Coordinated Blackout + adaptive idle detect.
    WarpedGates,
}

impl Technique {
    /// Every technique, in the paper's presentation order.
    pub const ALL: [Technique; 6] = [
        Technique::Baseline,
        Technique::ConvPg,
        Technique::Gates,
        Technique::NaiveBlackout,
        Technique::CoordinatedBlackout,
        Technique::WarpedGates,
    ];

    /// The five gated techniques (everything but `Baseline`), the set
    /// Figures 9 and 10 plot.
    pub const GATED: [Technique; 5] = [
        Technique::ConvPg,
        Technique::Gates,
        Technique::NaiveBlackout,
        Technique::CoordinatedBlackout,
        Technique::WarpedGates,
    ];

    /// The display name used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Technique::Baseline => "Baseline",
            Technique::ConvPg => "ConvPG",
            Technique::Gates => "GATES",
            Technique::NaiveBlackout => "Naive Blackout",
            Technique::CoordinatedBlackout => "Coordinated Blackout",
            Technique::WarpedGates => "Warped Gates",
        }
    }

    /// Whether this technique schedules with GATES (vs the baseline
    /// two-level scheduler).
    #[must_use]
    pub fn uses_gates_scheduler(self) -> bool {
        !matches!(self, Technique::Baseline | Technique::ConvPg)
    }

    /// Whether this technique power gates at all.
    #[must_use]
    pub fn uses_power_gating(self) -> bool {
        self != Technique::Baseline
    }

    /// Maximum cycles one instruction type may hold the highest GATES
    /// priority before a forced switch (the paper's "maximum switching
    /// time threshold"). Bounding the hold keeps demoted-type warps
    /// advancing often enough to preserve memory-level parallelism,
    /// while a 64-cycle consolidation window still dwarfs the
    /// idle-detect + break-even horizon (19 cycles).
    pub const GATES_MAX_HOLD: u64 = 64;

    /// Builds the warp scheduler for this technique.
    #[must_use]
    pub fn make_scheduler(self) -> Box<dyn WarpScheduler> {
        if self.uses_gates_scheduler() {
            Box::new(GatesScheduler::with_max_hold(Self::GATES_MAX_HOLD))
        } else {
            Box::new(TwoLevelScheduler::new())
        }
    }

    /// Builds the power-gating controller for this technique (default
    /// Fermi two-cluster layout).
    #[must_use]
    pub fn make_gating(self, params: GatingParams) -> Box<dyn PowerGating> {
        self.make_gating_with_layout(params, DomainLayout::fermi())
    }

    /// Builds the power-gating controller for this technique on an
    /// explicit clustered-architecture layout (Kepler/GCN studies).
    #[must_use]
    pub fn make_gating_with_layout(
        self,
        params: GatingParams,
        layout: DomainLayout,
    ) -> Box<dyn PowerGating> {
        match self {
            Technique::Baseline => Box::new(AlwaysOn::new()),
            Technique::ConvPg | Technique::Gates => Box::new(Controller::with_layout(
                layout,
                params,
                warped_gating::ConvPgPolicy::new(),
                StaticIdleDetect::new(),
            )),
            Technique::NaiveBlackout => Box::new(Controller::with_layout(
                layout,
                params,
                NaiveBlackoutPolicy::new(),
                StaticIdleDetect::new(),
            )),
            Technique::CoordinatedBlackout => Box::new(Controller::with_layout(
                layout,
                params,
                CoordinatedBlackoutPolicy::new(),
                StaticIdleDetect::new(),
            )),
            Technique::WarpedGates => Box::new(Controller::with_layout(
                layout,
                params,
                CoordinatedBlackoutPolicy::new(),
                AdaptiveIdleDetect::new(),
            )),
        }
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_techniques_in_paper_order() {
        assert_eq!(Technique::ALL.len(), 6);
        assert_eq!(Technique::ALL[0], Technique::Baseline);
        assert_eq!(Technique::ALL[5], Technique::WarpedGates);
        assert_eq!(Technique::GATED.len(), 5);
        assert!(!Technique::GATED.contains(&Technique::Baseline));
    }

    #[test]
    fn scheduler_selection_follows_the_paper() {
        assert!(!Technique::Baseline.uses_gates_scheduler());
        assert!(!Technique::ConvPg.uses_gates_scheduler());
        for t in [
            Technique::Gates,
            Technique::NaiveBlackout,
            Technique::CoordinatedBlackout,
            Technique::WarpedGates,
        ] {
            assert!(t.uses_gates_scheduler(), "{t} builds on GATES");
        }
    }

    #[test]
    fn built_policies_report_expected_names() {
        let params = GatingParams::default();
        assert_eq!(Technique::Baseline.make_gating(params).name(), "Baseline");
        assert_eq!(Technique::ConvPg.make_gating(params).name(), "ConvPG");
        assert_eq!(Technique::Gates.make_gating(params).name(), "ConvPG");
        assert_eq!(
            Technique::NaiveBlackout.make_gating(params).name(),
            "NaiveBlackout"
        );
        assert_eq!(
            Technique::WarpedGates.make_gating(params).name(),
            "CoordinatedBlackout"
        );
        assert_eq!(Technique::Baseline.make_scheduler().name(), "TwoLevel");
        assert_eq!(Technique::WarpedGates.make_scheduler().name(), "GATES");
    }

    #[test]
    fn display_matches_figure_labels() {
        assert_eq!(Technique::ConvPg.to_string(), "ConvPG");
        assert_eq!(Technique::WarpedGates.to_string(), "Warped Gates");
    }
}
