//! Run reports: every metric the paper's figures plot, from one run.

use crate::technique::Technique;
use warped_gating::GatingParams;
use warped_isa::UnitType;
use warped_power::{EnergyBreakdown, PowerParams, StaticSavings};
use warped_sim::{DomainGatingStats, GatingReport, IdleHistogram, SimStats};

/// The outcome of running one benchmark under one technique.
///
/// Wraps the raw simulator and gating statistics with the derived
/// metrics the paper reports: normalized performance (Figure 10), idle
/// fraction (8a), compensated-cycle share (8b), wakeups (8c), critical
/// wakeups per kilocycle (Figure 6), idle-period region shares (Figure
/// 3) and energy (Figures 1b and 9).
#[derive(Debug)]
pub struct RunReport {
    /// Benchmark name.
    pub benchmark: String,
    /// The technique that produced this run.
    pub technique: Technique,
    /// Gating parameters in effect.
    pub params: GatingParams,
    /// Run length in cycles.
    pub cycles: u64,
    /// Whether the run hit the simulator's cycle cap.
    pub timed_out: bool,
    /// Raw simulator statistics.
    pub stats: SimStats,
    /// Raw gating counters.
    pub gating: GatingReport,
}

impl RunReport {
    /// Normalized performance against a baseline run of the same
    /// workload: `baseline_cycles / cycles` (1.0 = no slowdown, lower is
    /// worse), the Figure 10 metric.
    ///
    /// # Panics
    ///
    /// Panics if either run has zero cycles.
    #[must_use]
    pub fn normalized_performance(&self, baseline: &RunReport) -> f64 {
        assert!(self.cycles > 0 && baseline.cycles > 0, "empty runs");
        baseline.cycles as f64 / self.cycles as f64
    }

    /// Fraction of unit-cycles that were idle for `unit` (Figure 8a's
    /// numerator before normalisation to the baseline).
    #[must_use]
    pub fn idle_fraction(&self, unit: UnitType) -> f64 {
        self.stats.idle_fraction(unit)
    }

    /// Summed gating counters over the domains of `unit` (respecting
    /// the run's clustered-architecture layout).
    #[must_use]
    pub fn gating_of(&self, unit: UnitType) -> DomainGatingStats {
        self.gating.sum_over(self.stats.layout.domains_of(unit))
    }

    /// Net compensated-cycle share for `unit`: compensated minus
    /// uncompensated gated cycles over total unit-cycles. Negative means
    /// the unit spent more gated time before break-even than after —
    /// Figure 8b's negative bars.
    #[must_use]
    pub fn net_compensated_share(&self, unit: UnitType) -> f64 {
        let g = self.gating_of(unit);
        let capacity = (self.stats.layout.domains_of(unit).len() as u64 * self.cycles) as f64;
        if capacity == 0.0 {
            return 0.0;
        }
        (g.compensated_cycles as f64 - g.uncompensated_cycles as f64) / capacity
    }

    /// Total wakeups for `unit` (the Figure 8c quantity, to be
    /// normalized to the ConvPG run).
    #[must_use]
    pub fn wakeups(&self, unit: UnitType) -> u64 {
        self.gating_of(unit).wakeups
    }

    /// Critical wakeups per 1000 cycles for `unit` (Figure 6's x axis).
    #[must_use]
    pub fn critical_wakeups_per_kcycle(&self, unit: UnitType) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.gating_of(unit).critical_wakeups as f64 * 1000.0 / self.cycles as f64
    }

    /// Merged idle-period histogram over the domains of `unit`
    /// (Figure 3's distribution).
    #[must_use]
    pub fn idle_histogram(&self, unit: UnitType) -> IdleHistogram {
        self.stats.idle_histogram(unit)
    }

    /// Energy breakdown for `unit` under `power` (Figure 1b's bars).
    #[must_use]
    pub fn energy(&self, unit: UnitType, power: &PowerParams) -> EnergyBreakdown {
        EnergyBreakdown::from_run(power, &self.stats, &self.gating, unit, self.params.bet)
    }

    /// Static-energy savings for `unit` against a baseline (no gating)
    /// run — the Figure 9 metric.
    #[must_use]
    pub fn static_savings(
        &self,
        baseline: &RunReport,
        unit: UnitType,
        power: &PowerParams,
    ) -> StaticSavings {
        StaticSavings::for_unit(
            power,
            &baseline.stats,
            &self.stats,
            &self.gating,
            unit,
            self.params.bet,
        )
    }

    /// Convenience: INT static savings with default power parameters.
    #[must_use]
    pub fn int_static_savings(&self, baseline: &RunReport) -> StaticSavings {
        self.static_savings(baseline, UnitType::Int, &PowerParams::default())
    }

    /// Convenience: FP static savings with default power parameters.
    #[must_use]
    pub fn fp_static_savings(&self, baseline: &RunReport) -> StaticSavings {
        self.static_savings(baseline, UnitType::Fp, &PowerParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_sim::DomainId;

    fn dummy(cycles: u64) -> RunReport {
        let mut stats = SimStats::new();
        stats.cycles = cycles;
        RunReport {
            benchmark: "dummy".into(),
            technique: Technique::ConvPg,
            params: GatingParams::default(),
            cycles,
            timed_out: false,
            stats,
            gating: GatingReport::new(),
        }
    }

    #[test]
    fn normalized_performance_is_ratio_of_cycles() {
        let base = dummy(1000);
        let slower = dummy(1100);
        assert!((slower.normalized_performance(&base) - 1000.0 / 1100.0).abs() < 1e-12);
        assert!((base.normalized_performance(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn net_compensated_share_signs() {
        let mut r = dummy(1000);
        r.gating.domain_mut(DomainId::INT0).compensated_cycles = 300;
        r.gating.domain_mut(DomainId::INT0).uncompensated_cycles = 100;
        assert!(r.net_compensated_share(UnitType::Int) > 0.0);
        r.gating.domain_mut(DomainId::INT1).uncompensated_cycles = 500;
        assert!(r.net_compensated_share(UnitType::Int) < 0.0);
    }

    #[test]
    fn critical_wakeups_scale_to_kilocycles() {
        let mut r = dummy(2000);
        r.gating.domain_mut(DomainId::FP0).critical_wakeups = 4;
        assert!((r.critical_wakeups_per_kcycle(UnitType::Fp) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_of_ungated_run_is_all_static_plus_dynamic() {
        let mut r = dummy(100);
        r.stats.issued_by_type[UnitType::Int.index()] = 10;
        let e = r.energy(UnitType::Int, &PowerParams::default());
        assert_eq!(e.overhead, 0.0);
        assert_eq!(e.static_energy, 200.0);
        assert!(e.dynamic > 0.0);
    }

    #[test]
    fn savings_of_identical_ungated_runs_is_zero() {
        let base = dummy(500);
        let s = base.int_static_savings(&base);
        assert!(s.fraction().abs() < 1e-12);
    }
}
