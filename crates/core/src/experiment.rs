//! The experiment runner: benchmark × technique → report.

use crate::report::RunReport;
use crate::technique::Technique;
use warped_gating::GatingParams;
use warped_sim::{DomainLayout, Sm};
use warped_trace::TraceWorkload;
use warped_workloads::BenchmarkSpec;

/// Which clock backend (and skip policy) the SM cores run under.
///
/// Every variant produces bit-identical simulation outcomes — the
/// equivalence is enforced by the `prop_fast_forward` three-way suite
/// and the grid regression gate — so the choice is purely a speed/
/// reference trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreClock {
    /// The discrete-event core: a time-ordered event queue with idle
    /// spans popped off the heap. The default.
    #[default]
    EventQueue,
    /// The ring-backed fast-forward clock (scan the event ring for the
    /// next event, maybe skip). Kept as the legacy reference.
    FastForward,
    /// Per-cycle stepping with no skipping at all — the slowest,
    /// simplest reference implementation.
    Stepped,
}

impl CoreClock {
    /// `(event_queue, fast_forward)` flags for
    /// [`SmConfig`](warped_sim::SmConfig).
    #[must_use]
    pub fn sm_flags(self) -> (bool, bool) {
        match self {
            CoreClock::EventQueue => (true, true),
            CoreClock::FastForward => (false, true),
            CoreClock::Stepped => (false, false),
        }
    }

    /// The name used on the command line and in artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoreClock::EventQueue => "event-queue",
            CoreClock::FastForward => "fast-forward",
            CoreClock::Stepped => "stepped",
        }
    }

    /// Parses a command-line name.
    ///
    /// # Errors
    ///
    /// Returns the unrecognised input when it names no variant.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "event-queue" => Ok(CoreClock::EventQueue),
            "fast-forward" => Ok(CoreClock::FastForward),
            "stepped" => Ok(CoreClock::Stepped),
            other => Err(format!(
                "unknown core clock '{other}' (expected event-queue, fast-forward, or stepped)"
            )),
        }
    }
}

/// An experiment configuration: gating parameters plus a workload scale
/// factor.
///
/// The scale factor proportionally shrinks every benchmark (fewer warps,
/// fewer loop trips) so the full 18-benchmark × 6-technique grid can run
/// in seconds during tests while the benches run at full size.
///
/// # Examples
///
/// ```
/// use warped_gates::{Experiment, Technique};
/// use warped_workloads::Benchmark;
///
/// let exp = Experiment::quick_for_tests();
/// let run = exp.run(&Benchmark::Nw.spec(), Technique::ConvPg);
/// assert_eq!(run.report.technique, Technique::ConvPg);
/// ```
#[derive(Debug, Clone)]
pub struct Experiment {
    params: GatingParams,
    scale: f64,
    layout: DomainLayout,
    issue_width: Option<usize>,
    memory_hierarchy: Option<warped_sim::HierarchyConfig>,
    sanitize: bool,
    job_timeout: Option<std::time::Duration>,
    telemetry: Option<warped_sim::Recorder>,
    core: CoreClock,
}

/// A completed technique run, pairing the report with the spec it ran.
#[derive(Debug)]
pub struct TechniqueRun {
    /// The full report.
    pub report: RunReport,
}

impl std::ops::Deref for TechniqueRun {
    type Target = RunReport;

    fn deref(&self) -> &RunReport {
        &self.report
    }
}

impl Experiment {
    /// Full-scale experiment with explicit gating parameters.
    #[must_use]
    pub fn new(params: GatingParams) -> Self {
        params.validate();
        Experiment {
            params,
            scale: 1.0,
            layout: DomainLayout::fermi(),
            issue_width: None,
            memory_hierarchy: None,
            sanitize: false,
            job_timeout: None,
            telemetry: None,
            core: CoreClock::default(),
        }
    }

    /// Full-scale experiment with the paper's default parameters
    /// (idle-detect 5, BET 14, wakeup 3).
    #[must_use]
    pub fn paper_defaults() -> Self {
        Experiment::new(GatingParams::default())
    }

    /// A heavily scaled-down experiment for fast unit tests, with the
    /// gating invariant sanitizer armed.
    #[must_use]
    pub fn quick_for_tests() -> Self {
        Experiment {
            scale: 0.08,
            sanitize: true,
            ..Experiment::new(GatingParams::default())
        }
    }

    /// Targets a different clustered architecture (e.g.
    /// [`DomainLayout::kepler`]) with an optional issue-width override
    /// (wider machines usually issue more per cycle).
    #[must_use]
    pub fn with_architecture(mut self, layout: DomainLayout, issue_width: Option<usize>) -> Self {
        self.layout = layout;
        self.issue_width = issue_width;
        self
    }

    /// Arms the cycle-accurate L1/L2 + MSHR memory hierarchy for every
    /// run launched from this experiment (see
    /// [`MemoryConfig::hierarchy`](warped_sim::MemoryConfig)). `None`
    /// (the default) keeps the legacy latency model and its committed
    /// grid results bit-identical. Unlike the observe-only switches,
    /// this *changes cycle counts*, so every field is folded into the
    /// cell fingerprint.
    ///
    /// # Panics
    ///
    /// Panics if the hierarchy configuration fails validation.
    #[must_use]
    pub fn with_memory_hierarchy(mut self, hierarchy: Option<warped_sim::HierarchyConfig>) -> Self {
        if let Some(h) = &hierarchy {
            h.validate();
        }
        self.memory_hierarchy = hierarchy;
        self
    }

    /// The memory-hierarchy configuration in effect, if armed.
    #[must_use]
    pub fn memory_hierarchy(&self) -> Option<&warped_sim::HierarchyConfig> {
        self.memory_hierarchy.as_ref()
    }

    /// Overrides the workload scale factor (in `(0, 1]`).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is outside `(0, 1]`.
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        self.scale = scale;
        self
    }

    /// Arms or disarms the gating invariant sanitizer for every run
    /// launched from this experiment (see
    /// [`SmConfig::sanitize`](warped_sim::SmConfig)).
    #[must_use]
    pub fn with_sanitize(mut self, on: bool) -> Self {
        self.sanitize = on;
        self
    }

    /// Sets a wall-clock watchdog per run: a job exceeding the budget
    /// stops and reports `timed_out` instead of hanging the grid.
    #[must_use]
    pub fn with_job_timeout(mut self, budget: Option<std::time::Duration>) -> Self {
        self.job_timeout = budget;
        self
    }

    /// Arms a telemetry recorder for every run launched from this
    /// experiment (see [`SmConfig::telemetry`](warped_sim::SmConfig)).
    /// Runs share the handle: keep a clone and drain it with
    /// [`Recorder::take`](warped_sim::Recorder::take) between runs to
    /// separate their event streams. Recording is observe-only — cycle
    /// counts and gating reports are bit-identical with or without it.
    #[must_use]
    pub fn with_telemetry(mut self, recorder: Option<warped_sim::Recorder>) -> Self {
        self.telemetry = recorder;
        self
    }

    /// Selects the clock backend every run uses (see [`CoreClock`]).
    /// Outcomes are bit-identical across backends; only wall time
    /// changes.
    #[must_use]
    pub fn with_core(mut self, core: CoreClock) -> Self {
        self.core = core;
        self
    }

    /// The gating parameters in effect.
    #[must_use]
    pub fn params(&self) -> &GatingParams {
        &self.params
    }

    /// The clock backend in effect.
    #[must_use]
    pub fn core(&self) -> CoreClock {
        self.core
    }

    /// Whether the gating invariant sanitizer is armed.
    #[must_use]
    pub fn sanitize(&self) -> bool {
        self.sanitize
    }

    /// The workload scale factor in effect.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The clustered-architecture layout in effect.
    #[must_use]
    pub fn layout(&self) -> DomainLayout {
        self.layout
    }

    /// The issue-width override, if any.
    #[must_use]
    pub fn issue_width(&self) -> Option<usize> {
        self.issue_width
    }

    /// Applies every experiment override — architecture, issue width,
    /// memory hierarchy, observe-only switches, clock backend — to a
    /// workload-provided base configuration. Both the synthetic and the
    /// trace-driven run paths funnel through here, so an experiment
    /// means exactly the same thing for either workload source.
    fn configure(&self, mut cfg: warped_sim::SmConfig) -> warped_sim::SmConfig {
        cfg.sp_clusters = self.layout.sp_clusters();
        if let Some(w) = self.issue_width {
            cfg.issue_width = w;
        }
        cfg.memory.hierarchy = self.memory_hierarchy.clone();
        cfg.sanitize = self.sanitize;
        cfg.wall_clock_budget = self.job_timeout;
        cfg.telemetry = self.telemetry.clone();
        let (event_queue, fast_forward) = self.core.sm_flags();
        cfg.event_queue = event_queue;
        cfg.fast_forward = fast_forward;
        cfg
    }

    /// Runs one configured launch under one technique and wraps the
    /// outcome into a report carrying `benchmark` as the workload name.
    fn simulate(
        &self,
        cfg: warped_sim::SmConfig,
        launch: warped_sim::LaunchConfig,
        benchmark: String,
        technique: Technique,
    ) -> TechniqueRun {
        let sm = Sm::new(
            cfg,
            launch,
            technique.make_scheduler(),
            technique.make_gating_with_layout(self.params, self.layout),
        );
        let outcome = sm.run();
        TechniqueRun {
            report: RunReport {
                benchmark,
                technique,
                params: self.params,
                cycles: outcome.stats.cycles,
                timed_out: outcome.timed_out,
                stats: outcome.stats,
                gating: outcome.gating,
            },
        }
    }

    /// Runs one benchmark under one technique on a single SM.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark spec fails validation.
    #[must_use]
    pub fn run(&self, spec: &BenchmarkSpec, technique: Technique) -> TechniqueRun {
        let spec = if self.scale < 1.0 {
            spec.scaled(self.scale)
        } else {
            spec.clone()
        };
        let cfg = self.configure(spec.sm_config());
        self.simulate(cfg, spec.launch(), spec.name.to_owned(), technique)
    }

    /// Runs one captured trace under one technique on a single SM.
    ///
    /// The trace supplies exactly what a [`BenchmarkSpec`] would — the
    /// kernel, the launch geometry, and the memory behaviour — so a
    /// trace captured from a synthetic benchmark replays bit-identically
    /// to [`run`](Experiment::run) on that benchmark (the
    /// `trace_roundtrip` suite pins this down across every technique).
    /// All experiment overrides (scale, architecture, sanitizer, clock
    /// backend) apply the same way they do to synthetic workloads.
    #[must_use]
    pub fn run_trace(&self, trace: &TraceWorkload, technique: Technique) -> TechniqueRun {
        let trace = if self.scale < 1.0 {
            trace.scaled(self.scale)
        } else {
            trace.clone()
        };
        let mut cfg = warped_sim::SmConfig::gtx480();
        cfg.memory = warped_sim::MemoryConfig {
            l1_hit_rate: trace.l1_hit_rate,
            seed: trace.mem_seed,
            ..warped_sim::MemoryConfig::default()
        };
        let cfg = self.configure(cfg);
        let launch = warped_sim::LaunchConfig::new(trace.kernel.clone(), trace.total_warps)
            .with_block_warps(trace.block_warps)
            .with_stagger(trace.stagger)
            .with_waves(trace.waves);
        self.simulate(cfg, launch, trace.name.clone(), technique)
    }

    /// Runs every technique on one benchmark, in [`Technique::ALL`]
    /// order, returning the runs in the same order.
    #[must_use]
    pub fn run_all_techniques(&self, spec: &BenchmarkSpec) -> Vec<TechniqueRun> {
        Technique::ALL
            .into_iter()
            .map(|t| self.run(spec, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_isa::UnitType;
    use warped_workloads::Benchmark;

    #[test]
    fn runs_complete_without_timeout() {
        let exp = Experiment::quick_for_tests();
        for t in Technique::ALL {
            let run = exp.run(&Benchmark::Hotspot.spec(), t);
            assert!(!run.timed_out, "{t} timed out");
            assert!(run.cycles > 0);
        }
    }

    #[test]
    fn baseline_never_gates() {
        let exp = Experiment::quick_for_tests();
        let run = exp.run(&Benchmark::Srad.spec(), Technique::Baseline);
        assert_eq!(run.gating_of(UnitType::Int).gate_events, 0);
        assert_eq!(run.gating_of(UnitType::Fp).gated_cycles, 0);
    }

    #[test]
    fn gated_techniques_actually_gate() {
        let exp = Experiment::quick_for_tests();
        for t in Technique::GATED {
            let run = exp.run(&Benchmark::Hotspot.spec(), t);
            let g = run.gating_of(UnitType::Fp);
            assert!(g.gate_events > 0, "{t} never gated the FP clusters");
        }
    }

    #[test]
    fn blackout_has_no_premature_wakeups_on_cuda_cores() {
        let exp = Experiment::quick_for_tests();
        for t in [
            Technique::NaiveBlackout,
            Technique::CoordinatedBlackout,
            Technique::WarpedGates,
        ] {
            let run = exp.run(&Benchmark::Hotspot.spec(), t);
            assert_eq!(
                run.gating_of(UnitType::Int).premature_wakeups,
                0,
                "{t}: blackout must forbid pre-BET wakeups"
            );
            assert_eq!(run.gating_of(UnitType::Fp).premature_wakeups, 0);
        }
    }

    #[test]
    fn conventional_gating_does_wake_prematurely_somewhere() {
        // The whole point of the paper: ConvPG wakes before break-even.
        let exp = Experiment::quick_for_tests();
        let mut premature = 0;
        for b in [Benchmark::Hotspot, Benchmark::Srad, Benchmark::Lbm] {
            let run = exp.run(&b.spec(), Technique::ConvPg);
            premature += run.gating_of(UnitType::Int).premature_wakeups
                + run.gating_of(UnitType::Fp).premature_wakeups;
        }
        assert!(
            premature > 0,
            "ConvPG should exhibit net-negative gating events"
        );
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let exp = Experiment::quick_for_tests();
        let a = exp.run(&Benchmark::Mri.spec(), Technique::WarpedGates);
        let b = exp.run(&Benchmark::Mri.spec(), Technique::WarpedGates);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(
            a.gating_of(UnitType::Fp).gated_cycles,
            b.gating_of(UnitType::Fp).gated_cycles
        );
    }

    #[test]
    fn run_all_techniques_covers_the_grid() {
        let exp = Experiment::quick_for_tests();
        let runs = exp.run_all_techniques(&Benchmark::Nw.spec());
        assert_eq!(runs.len(), 6);
        assert_eq!(runs[0].technique, Technique::Baseline);
        assert_eq!(runs[5].technique, Technique::WarpedGates);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn invalid_scale_rejected() {
        let _ = Experiment::paper_defaults().with_scale(1.5);
    }
}
