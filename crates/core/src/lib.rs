//! # warped-gates
//!
//! The primary contribution of *Warped Gates: Gating Aware Scheduling and
//! Power Gating for GPGPUs* (MICRO 2013), rebuilt on the `warped-sim`
//! substrate:
//!
//! * [`GatesScheduler`] — the **G**ating **A**ware **T**wo-level
//!   **S**cheduler (GATES). It keeps issuing instructions of the current
//!   highest-priority type (INT or FP, with LDST then SFU in between and
//!   the other CUDA-core type last) and switches priority dynamically
//!   when the high-priority active-warp subset drains, coalescing each
//!   execution unit's busy cycles — and therefore its idle periods.
//! * [`NaiveBlackoutPolicy`] and [`CoordinatedBlackoutPolicy`] — the
//!   **Blackout** power-gating schemes. A gated CUDA-core cluster cannot
//!   wake before the break-even time elapses, eliminating net-negative
//!   gating events; the coordinated variant additionally consults the
//!   peer cluster and the active-subset occupancy before gating the
//!   second cluster of a type.
//! * [`AdaptiveIdleDetect`] — the runtime idle-detect tuner driven by
//!   critical-wakeup counts per 1000-cycle epoch.
//! * [`Technique`] — the paper's evaluated configurations (`Baseline`,
//!   `ConvPG`, `GATES`, `Naive Blackout`, `Coordinated Blackout`,
//!   `Warped Gates`), and [`Experiment`] — a one-call runner that
//!   produces a [`RunReport`] with every metric the paper's figures
//!   plot.
//!
//! ## Quick example
//!
//! ```
//! use warped_gates::{Experiment, Technique};
//! use warped_workloads::Benchmark;
//!
//! let experiment = Experiment::quick_for_tests();
//! let spec = Benchmark::Hotspot.spec().scaled(0.05);
//! let baseline = experiment.run(&spec, Technique::Baseline);
//! let warped = experiment.run(&spec, Technique::WarpedGates);
//! assert!(warped.report.cycles > 0);
//! let savings = warped.int_static_savings(&baseline);
//! assert!(savings.fraction() <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod blackout;
mod experiment;
pub mod fingerprint;
mod gates;
mod report;
pub mod runner;
mod technique;

pub use adaptive::AdaptiveIdleDetect;
pub use blackout::{CoordinatedBlackoutPolicy, NaiveBlackoutPolicy};
pub use experiment::{CoreClock, Experiment, TechniqueRun};
pub use gates::GatesScheduler;
pub use report::RunReport;
pub use runner::{
    full_grid, grid_of, run_grid, run_grid_fallible, run_grid_fallible_with, run_grid_timed,
    run_grid_with, run_trace_grid, run_trace_grid_with, trace_grid_of, GridJob, RunOutcome,
    TimedRun, TraceGridJob,
};
pub use technique::Technique;
