//! GATES: the gating-aware two-level warp scheduler (paper Section 4).

use warped_isa::UnitType;
use warped_sim::probe::{Event, Recorder};
use warped_sim::{IssueCtx, WarpScheduler};

/// The gating-aware two-level scheduler.
///
/// GATES extends the two-level scheduler with a per-type view of the
/// active warp set and a dynamic priority order over instruction types:
///
/// * the current highest-priority type is either INT or FP; the other
///   one is always lowest, with LDST then SFU in between (memory first,
///   since its latency is longest);
/// * priority switches when the high-priority type's *active subset*
///   drains while the low-priority subset is non-empty (the
///   `INT_ACTV`/`FP_ACTV` counter rule), and — with Blackout installed —
///   when both clusters of the high-priority type are gated;
/// * an optional maximum-hold threshold bounds how long one type can
///   keep the highest priority, guaranteeing freedom from starvation
///   even for pathological dependence-free instruction streams.
///
/// Within a type, warps issue in round-robin order, continuing from the
/// last issued slot, exactly like the baseline scheduler.
///
/// # Examples
///
/// ```
/// use warped_gates::GatesScheduler;
/// use warped_sim::WarpScheduler;
///
/// let s = GatesScheduler::new();
/// assert_eq!(s.name(), "GATES");
/// ```
#[derive(Debug, Clone)]
pub struct GatesScheduler {
    /// The CUDA-core type currently holding the highest priority.
    high: UnitType,
    /// Cycles the current type has held the highest priority.
    hold_cycles: u64,
    /// Optional bound on `hold_cycles` before a forced switch.
    max_hold: Option<u64>,
    /// Per-type round-robin pointers (last issued slot + 1).
    rotation: [usize; 4],
    /// Count of dynamic priority switches (for diagnostics).
    switches: u64,
    /// Consecutive cycles with unused issue width while the (gated)
    /// low-priority type had ready warps.
    starve_run: u32,
    /// Lazy-wakeup hysteresis in cycles.
    lazy_wake: u32,
    /// Ready-warp backlog that counts as wakeup demand by itself.
    wake_backlog: u32,
    /// Reusable buffer for the per-type round-robin scan (no scheduling
    /// state: always drained by the end of a `pick`).
    scan: Vec<u32>,
    /// Telemetry recorder (installed by the simulator when
    /// [`SmConfig::telemetry`](warped_sim::SmConfig) is armed); every
    /// dynamic priority flip is stamped on it. Strictly observe-only.
    recorder: Option<Recorder>,
}

impl GatesScheduler {
    /// Default lazy-wakeup hysteresis: consecutive spare-width cycles
    /// before a gated low-priority type is woken.
    pub const DEFAULT_LAZY_WAKE_CYCLES: u32 = 1;

    /// Default backlog threshold: ready low-priority warps that
    /// constitute wakeup demand on their own, even while the
    /// high-priority type fills every issue slot.
    pub const DEFAULT_WAKE_BACKLOG: u32 = 4;

    /// Creates GATES with INT initially holding the highest priority (as
    /// in the paper) and no forced-switch threshold.
    #[must_use]
    pub fn new() -> Self {
        GatesScheduler {
            high: UnitType::Int,
            hold_cycles: 0,
            max_hold: None,
            rotation: [0; 4],
            switches: 0,
            starve_run: 0,
            lazy_wake: Self::DEFAULT_LAZY_WAKE_CYCLES,
            wake_backlog: Self::DEFAULT_WAKE_BACKLOG,
            scan: Vec::new(),
            recorder: None,
        }
    }

    /// Overrides the lazy-wakeup hysteresis (spare-width cycles before a
    /// gated demoted type is attempted). Zero wakes on the first spare
    /// cycle.
    #[must_use]
    pub fn with_lazy_wake(mut self, cycles: u32) -> Self {
        self.lazy_wake = cycles;
        self
    }

    /// Overrides the backlog-wake threshold. `u32::MAX` disables
    /// backlog-driven wakeups entirely (ablation use).
    #[must_use]
    pub fn with_wake_backlog(mut self, backlog: u32) -> Self {
        self.wake_backlog = backlog;
        self
    }

    /// Creates GATES with a maximum-hold threshold: after `max_hold`
    /// cycles the priority switches even if the active subset has not
    /// drained.
    ///
    /// # Panics
    ///
    /// Panics if `max_hold` is zero.
    #[must_use]
    pub fn with_max_hold(max_hold: u64) -> Self {
        assert!(max_hold > 0, "max_hold must be positive");
        GatesScheduler {
            max_hold: Some(max_hold),
            ..GatesScheduler::new()
        }
    }

    /// The CUDA-core type currently holding the highest priority.
    #[must_use]
    pub fn high_priority(&self) -> UnitType {
        self.high
    }

    /// How many dynamic priority switches have occurred.
    #[must_use]
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    fn low(&self) -> UnitType {
        match self.high {
            UnitType::Int => UnitType::Fp,
            _ => UnitType::Int,
        }
    }

    fn switch_priority(&mut self, cycle: u64) {
        self.high = self.low();
        self.hold_cycles = 0;
        self.switches += 1;
        if let Some(r) = &self.recorder {
            r.record(cycle, Event::PriorityFlip { high: self.high });
        }
    }

    /// The dynamic priority switching rules (Section 4.1 plus the
    /// Coordinated Blackout extension in Section 5).
    fn maybe_switch(&mut self, ctx: &IssueCtx) {
        let high = self.high;
        let low = self.low();

        // Rule 1: high-priority active subset drained, low non-empty.
        if ctx.active_subset(high) == 0 && ctx.active_subset(low) > 0 {
            self.switch_priority(ctx.cycle());
            return;
        }
        // Rule 2 (Blackout extension): both clusters of the high type are
        // gated; issue the other type meanwhile.
        if !ctx.type_powered(high) && ctx.type_powered(low) && ctx.active_subset(low) > 0 {
            self.switch_priority(ctx.cycle());
            return;
        }
        // Rule 3: forced switch after the maximum hold threshold.
        if let Some(max) = self.max_hold {
            if self.hold_cycles >= max && ctx.active_subset(low) > 0 {
                self.switch_priority(ctx.cycle());
            }
        }
    }

    /// Issues ready candidates of `unit`, round-robin within the type.
    fn issue_type(&mut self, ctx: &mut IssueCtx, unit: UnitType) {
        if ctx.width_left() == 0 || ctx.ready_count(unit) == 0 {
            return;
        }
        // The context precomputes each type's candidate positions; the
        // reusable scan buffer (this runs up to four times per simulated
        // cycle) sidesteps borrowing the context across `try_issue`.
        let mut idxs = std::mem::take(&mut self.scan);
        idxs.clear();
        idxs.extend_from_slice(ctx.unit_candidates(unit));
        let rot = self.rotation[unit.index()];
        let start = idxs
            .iter()
            .position(|&i| ctx.candidates()[i as usize].slot.0 >= rot)
            .unwrap_or(0);
        for &i in idxs[start..].iter().chain(&idxs[..start]) {
            if ctx.width_left() == 0 {
                break;
            }
            let idx = i as usize;
            if ctx.try_issue(idx) {
                self.rotation[unit.index()] = ctx.candidates()[idx].slot.0 + 1;
            }
        }
        self.scan = idxs;
    }
}

impl Default for GatesScheduler {
    fn default() -> Self {
        GatesScheduler::new()
    }
}

impl WarpScheduler for GatesScheduler {
    fn pick(&mut self, ctx: &mut IssueCtx) {
        self.maybe_switch(ctx);
        self.hold_cycles += 1;

        let high = self.high;
        let low = self.low();

        // Fixed total order: high, LDST, SFU, low.
        for unit in [high, UnitType::Ldst, UnitType::Sfu] {
            self.issue_type(ctx, unit);
            if ctx.width_left() == 0 {
                break;
            }
        }
        // The low-priority type fills leftover slots freely while its
        // clusters are powered — that costs nothing. Once its clusters
        // have been gated, though, attempting an issue is what wakes
        // them, so GATES wakes a gated low type lazily: only after the
        // machine has had spare issue width *and* ready low-priority
        // warps for a few consecutive cycles. Transient one-cycle supply
        // gaps in the high-priority type no longer thrash the sleeping
        // clusters awake, while a sustained shortage (or a genuine
        // dependence on low-type results) still does.
        if ctx.ready_count(low) == 0 {
            self.starve_run = 0;
            return;
        }
        if ctx.type_powered(low) {
            self.starve_run = 0;
            if ctx.width_left() > 0 {
                self.issue_type(ctx, low);
            }
            return;
        }
        // Low type gated. Two signals justify waking it: sustained spare
        // issue width (the machine is starving), or a backlog of ready
        // low-type warps (they pile up while the high type monopolises
        // the slots — leaving them parked would stall their dependent
        // loads and erode memory-level parallelism). The backlog signal
        // registers demand even when the width is saturated; under
        // Blackout the controller still enforces the break-even lock.
        if ctx.ready_count(low) >= self.wake_backlog {
            ctx.request_wakeup(low);
        }
        if ctx.width_left() > 0 {
            self.starve_run += 1;
            if self.starve_run >= self.lazy_wake {
                self.issue_type(ctx, low);
            }
        }
    }

    // With no candidates and empty active subsets, `pick` cannot switch
    // priority (every rule needs a non-empty low subset), issues nothing,
    // and hits the `ready_count(low) == 0` early return. Per cycle that
    // leaves exactly `hold_cycles += 1; starve_run = 0`, which composes
    // into a closed form over any span length.
    fn fast_forward_idle(&mut self, cycles: u64) -> bool {
        self.hold_cycles += cycles;
        self.starve_run = 0;
        true
    }

    fn name(&self) -> &'static str {
        "GATES"
    }

    fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = Some(recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_sim::{DomainId, IssueCtx, WarpSlot, NUM_DOMAINS};

    fn cand(slot: usize, unit: UnitType) -> warped_sim::Candidate {
        warped_sim::Candidate {
            slot: WarpSlot(slot),
            unit,
            is_global_load: false,
        }
    }

    fn ctx(cands: Vec<warped_sim::Candidate>, actv: [u32; 4]) -> IssueCtx {
        IssueCtx::new(
            0,
            2,
            cands,
            [true; NUM_DOMAINS],
            [false; NUM_DOMAINS],
            actv,
            64,
        )
    }

    #[test]
    fn prefers_high_priority_type_over_candidate_order() {
        let mut s = GatesScheduler::new();
        // FP at the head, INT behind it: GATES (INT priority) must pick
        // the INT candidates, unlike the baseline two-level scheduler.
        let mut c = ctx(
            vec![
                cand(0, UnitType::Fp),
                cand(1, UnitType::Int),
                cand(2, UnitType::Int),
            ],
            [2, 1, 0, 0],
        );
        s.pick(&mut c);
        assert!(!c.is_issued(0), "FP must wait");
        assert!(c.is_issued(1));
        assert!(c.is_issued(2));
    }

    #[test]
    fn fills_second_slot_with_ldst_before_low_priority_fp() {
        let mut s = GatesScheduler::new();
        let mut c = ctx(
            vec![
                cand(0, UnitType::Int),
                cand(1, UnitType::Ldst),
                cand(2, UnitType::Fp),
            ],
            [1, 1, 0, 1],
        );
        s.pick(&mut c);
        assert!(c.is_issued(0));
        assert!(c.is_issued(1), "LDST outranks the low-priority FP");
        assert!(!c.is_issued(2));
    }

    #[test]
    fn low_priority_type_issues_when_nothing_else_is_ready() {
        let mut s = GatesScheduler::new();
        // INT still has active (non-ready) warps, so no switch, but the
        // only *ready* work is FP: it fills the slots.
        let mut c = ctx(
            vec![cand(0, UnitType::Fp), cand(1, UnitType::Fp)],
            [3, 2, 0, 0],
        );
        s.pick(&mut c);
        assert!(c.is_issued(0));
        assert!(c.is_issued(1));
        assert_eq!(s.high_priority(), UnitType::Int, "no switch: INT_ACTV > 0");
    }

    #[test]
    fn priority_switches_when_high_subset_drains() {
        let mut s = GatesScheduler::new();
        assert_eq!(s.high_priority(), UnitType::Int);
        let mut c = ctx(vec![cand(0, UnitType::Fp)], [0, 4, 0, 0]);
        s.pick(&mut c);
        assert_eq!(s.high_priority(), UnitType::Fp, "INT_ACTV=0, FP_ACTV>0");
        assert_eq!(s.switch_count(), 1);
    }

    #[test]
    fn priority_flips_are_stamped_on_the_recorder() {
        use warped_sim::probe::RecorderConfig;
        let rec = Recorder::new(RecorderConfig::default());
        let mut s = GatesScheduler::new();
        s.set_recorder(rec.clone());
        let mut c = IssueCtx::new(
            42,
            2,
            vec![cand(0, UnitType::Fp)],
            [true; NUM_DOMAINS],
            [false; NUM_DOMAINS],
            [0, 4, 0, 0],
            64,
        );
        s.pick(&mut c);
        assert_eq!(s.high_priority(), UnitType::Fp);
        let log = rec.take();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].cycle, 42);
        assert_eq!(
            log.events[0].event,
            Event::PriorityFlip { high: UnitType::Fp }
        );
    }

    #[test]
    fn no_switch_when_both_subsets_empty() {
        let mut s = GatesScheduler::new();
        let mut c = ctx(vec![], [0, 0, 0, 0]);
        s.pick(&mut c);
        assert_eq!(s.high_priority(), UnitType::Int);
        assert_eq!(s.switch_count(), 0);
    }

    #[test]
    fn blackout_of_high_type_switches_priority() {
        let mut s = GatesScheduler::new();
        let mut on = [true; NUM_DOMAINS];
        on[DomainId::INT0.index()] = false;
        on[DomainId::INT1.index()] = false;
        let mut c = IssueCtx::new(
            0,
            2,
            vec![cand(0, UnitType::Fp)],
            on,
            [false; NUM_DOMAINS],
            [2, 3, 0, 0], // INT still has active warps, but its units sleep
            64,
        );
        s.pick(&mut c);
        assert_eq!(s.high_priority(), UnitType::Fp);
        assert!(c.is_issued(0));
    }

    #[test]
    fn forced_switch_after_max_hold() {
        let mut s = GatesScheduler::with_max_hold(3);
        for _ in 0..3 {
            let mut c = ctx(vec![cand(0, UnitType::Int)], [2, 2, 0, 0]);
            s.pick(&mut c);
            assert_eq!(s.high_priority(), UnitType::Int);
        }
        let mut c = ctx(vec![cand(0, UnitType::Int)], [2, 2, 0, 0]);
        s.pick(&mut c);
        assert_eq!(s.high_priority(), UnitType::Fp, "hold threshold reached");
    }

    #[test]
    fn round_robin_within_type_is_fair() {
        let mut s = GatesScheduler::new();
        let mk = || {
            ctx(
                vec![
                    cand(0, UnitType::Int),
                    cand(1, UnitType::Int),
                    cand(2, UnitType::Int),
                ],
                [3, 0, 0, 0],
            )
        };
        let mut c = mk();
        s.pick(&mut c);
        assert!(c.is_issued(0) && c.is_issued(1));
        let mut c2 = mk();
        s.pick(&mut c2);
        assert!(c2.is_issued(2), "slot 2 is served next");
    }

    #[test]
    #[should_panic(expected = "max_hold")]
    fn zero_max_hold_rejected() {
        let _ = GatesScheduler::with_max_hold(0);
    }

    #[test]
    fn fast_forward_idle_matches_empty_picks() {
        // Build some scheduler state first (hold cycles, a rotation
        // pointer, a starve run), then compare n empty picks against one
        // fast_forward_idle(n).
        let prime = |s: &mut GatesScheduler| {
            let mut c = ctx(
                vec![cand(0, UnitType::Int), cand(1, UnitType::Fp)],
                [1, 1, 0, 0],
            );
            s.pick(&mut c);
        };
        let mut stepped = GatesScheduler::with_max_hold(64);
        let mut jumped = GatesScheduler::with_max_hold(64);
        prime(&mut stepped);
        prime(&mut jumped);
        for _ in 0..37 {
            let mut empty = ctx(vec![], [0, 0, 0, 0]);
            stepped.pick(&mut empty);
        }
        assert!(jumped.fast_forward_idle(37));
        assert_eq!(stepped.hold_cycles, jumped.hold_cycles);
        assert_eq!(stepped.starve_run, jumped.starve_run);
        assert_eq!(stepped.rotation, jumped.rotation);
        assert_eq!(stepped.high, jumped.high);
        assert_eq!(stepped.switches, jumped.switches);
    }

    #[test]
    fn gated_low_type_is_not_attempted_while_high_has_supply() {
        // FP clusters gated, INT supply fills the width: no FP issue
        // attempt happens, so no wakeup demand is registered.
        let mut s = GatesScheduler::new();
        let mut on = [true; NUM_DOMAINS];
        on[DomainId::FP0.index()] = false;
        on[DomainId::FP1.index()] = false;
        let mut c = IssueCtx::new(
            0,
            2,
            vec![
                cand(0, UnitType::Int),
                cand(1, UnitType::Int),
                cand(2, UnitType::Fp),
            ],
            on,
            [false; NUM_DOMAINS],
            [2, 1, 0, 0],
            64,
        );
        s.pick(&mut c);
        assert!(c.is_issued(0) && c.is_issued(1));
        assert_eq!(
            c.blocked_demand()[UnitType::Fp.index()],
            0,
            "the demoted FP type must stay asleep while INT fills the width"
        );
    }

    #[test]
    fn backlog_of_demoted_warps_registers_demand() {
        // FP gated, INT fills the width, but >= WAKE_BACKLOG FP warps
        // are ready: GATES attempts them anyway, registering demand.
        let mut s = GatesScheduler::new().with_wake_backlog(3);
        let mut on = [true; NUM_DOMAINS];
        on[DomainId::FP0.index()] = false;
        on[DomainId::FP1.index()] = false;
        let mut c = IssueCtx::new(
            0,
            2,
            vec![
                cand(0, UnitType::Int),
                cand(1, UnitType::Int),
                cand(2, UnitType::Fp),
                cand(3, UnitType::Fp),
                cand(4, UnitType::Fp),
            ],
            on,
            [false; NUM_DOMAINS],
            [2, 3, 0, 0],
            64,
        );
        s.pick(&mut c);
        assert!(
            c.blocked_demand()[UnitType::Fp.index()] > 0,
            "a backlog of ready FP warps is wakeup demand"
        );
    }

    #[test]
    fn lazy_wake_attempts_after_persistent_spare_width() {
        // FP gated, one INT ready per cycle (spare width every cycle):
        // the first cycle holds back, the second attempts.
        let mut s = GatesScheduler::new()
            .with_lazy_wake(2)
            .with_wake_backlog(u32::MAX);
        let mut on = [true; NUM_DOMAINS];
        on[DomainId::FP0.index()] = false;
        on[DomainId::FP1.index()] = false;
        let mk = || {
            IssueCtx::new(
                0,
                2,
                vec![cand(0, UnitType::Int), cand(1, UnitType::Fp)],
                on,
                [false; NUM_DOMAINS],
                [1, 1, 0, 0],
                64,
            )
        };
        let mut c1 = mk();
        s.pick(&mut c1);
        assert_eq!(
            c1.blocked_demand()[UnitType::Fp.index()],
            0,
            "first spare cycle: held back"
        );
        let mut c2 = mk();
        s.pick(&mut c2);
        assert!(
            c2.blocked_demand()[UnitType::Fp.index()] > 0,
            "second spare cycle: attempted"
        );
    }
}
