//! Canonical content-addressing of experiment configurations.
//!
//! The experiment engine is deterministic: a grid cell's result is a
//! pure function of `(Experiment, BenchmarkSpec, Technique)`. That
//! makes results *content-addressable* — any consumer (the
//! `warped-serve` result cache, a future on-disk memo) can key a run
//! by a canonical hash of everything that can change its output and
//! reuse the bytes for every identical request.
//!
//! [`cell_fingerprint`] folds exactly the result-determining fields —
//! gating parameters, workload scale, clustered-architecture layout,
//! issue-width override, the full benchmark spec, and the technique —
//! through a SplitMix64-style word mixer ([`ConfigHasher`], the same
//! finalizer the workload generator's PRNG uses, so the workspace
//! stays dependency-free). Observe-only switches (the sanitizer, a
//! telemetry recorder) and run-control switches (the wall-clock
//! watchdog, the [`CoreClock`](crate::CoreClock) backend) are
//! deliberately **excluded**: the repository's equivalence suites pin
//! down that they never move a cycle count, so two configurations
//! differing only there produce byte-identical reports and must share
//! a cache line.
//!
//! The hash is versioned ([`FINGERPRINT_VERSION`] is folded in first),
//! so any change to the canonical field order invalidates old keys
//! instead of silently colliding with them.

use crate::experiment::Experiment;
use crate::technique::Technique;
use warped_isa::UnitType;
use warped_trace::TraceWorkload;
use warped_workloads::BenchmarkSpec;

/// Bump on any change to the canonical encoding below.
///
/// v2: the memory-hierarchy configuration
/// ([`Experiment::memory_hierarchy`]) joined the stream — a presence
/// word followed by every [`HierarchyConfig`](warped_sim::SmConfig)
/// field when armed.
///
/// v3: trace-driven cells joined the address space
/// ([`trace_cell_fingerprint`]) — both fingerprint families carry a
/// workload-source domain string so a trace cell can never alias a
/// synthetic cell, and the version bump retires every v2 key rather
/// than risking silent collisions with the enlarged space.
pub const FINGERPRINT_VERSION: u64 = 3;

const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64's avalanche finalizer (Steele et al., OOPSLA 2014).
fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A streaming word hasher with SplitMix64's finalizer as its mixing
/// function. Not cryptographic — collision resistance here only needs
/// to beat accidental config aliasing, the same bar the workload
/// generator's PRNG clears.
///
/// # Examples
///
/// ```
/// use warped_gates::fingerprint::ConfigHasher;
///
/// let mut a = ConfigHasher::new(7);
/// a.word(1).word(2);
/// let mut b = ConfigHasher::new(7);
/// b.word(2).word(1);
/// assert_ne!(a.finish(), b.finish(), "word order is significant");
/// ```
#[derive(Debug, Clone)]
pub struct ConfigHasher {
    state: u64,
}

impl ConfigHasher {
    /// Starts a hash stream under a domain tag (distinct tags keep
    /// unrelated hash uses from colliding on equal word streams).
    #[must_use]
    pub fn new(domain_tag: u64) -> Self {
        ConfigHasher {
            state: avalanche(domain_tag.wrapping_add(GAMMA)),
        }
    }

    /// Folds one 64-bit word into the stream.
    pub fn word(&mut self, w: u64) -> &mut Self {
        self.state = avalanche(self.state.wrapping_add(GAMMA) ^ w);
        self
    }

    /// Folds a float by its exact bit pattern (so `0.1` and the nearest
    /// neighbouring double hash differently, and NaN payloads are
    /// significant rather than collapsed).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.word(v.to_bits())
    }

    /// Folds a string: length first, then the bytes in 8-byte
    /// little-endian words (zero-padded tail), so `"ab", "c"` and
    /// `"a", "bc"` cannot alias across adjacent fields.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.word(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(w));
        }
        self
    }

    /// The digest of everything folded so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        avalanche(self.state)
    }
}

/// The canonical content hash of one grid cell: every field that can
/// change the cell's report, in a fixed documented order.
///
/// Two calls agree exactly when the runs would produce byte-identical
/// [`RunReport`](crate::RunReport)s (modulo the excluded observe-only
/// switches; see the module docs).
///
/// # Examples
///
/// ```
/// use warped_gates::fingerprint::cell_fingerprint;
/// use warped_gates::{Experiment, Technique};
/// use warped_workloads::Benchmark;
///
/// let exp = Experiment::paper_defaults();
/// let spec = Benchmark::Nw.spec();
/// let a = cell_fingerprint(&exp, &spec, Technique::Baseline);
/// let b = cell_fingerprint(&exp, &spec, Technique::Baseline);
/// assert_eq!(a, b);
/// assert_ne!(a, cell_fingerprint(&exp, &spec, Technique::ConvPg));
/// ```
#[must_use]
pub fn cell_fingerprint(
    experiment: &Experiment,
    spec: &BenchmarkSpec,
    technique: Technique,
) -> u64 {
    let mut h = ConfigHasher::new(FINGERPRINT_VERSION);
    fold_experiment(&mut h, experiment);
    // Technique, by stable display name (not enum discriminant, so
    // reordering the enum cannot silently remap cached results).
    h.str(technique.name());
    // Workload-source domain: a synthetic spec named like a trace (or
    // vice versa) must never share a key with it.
    h.str("spec");
    // The full benchmark spec, field by field.
    h.str(spec.name);
    for unit in [UnitType::Int, UnitType::Fp, UnitType::Sfu, UnitType::Ldst] {
        h.f64(spec.mix.fraction(unit));
    }
    h.f64(spec.l1_hit_rate)
        .f64(spec.global_frac)
        .f64(spec.dep_density)
        .word(spec.body_len as u64)
        .word(spec.phase_len as u64)
        .word(u64::from(spec.trips))
        .word(u64::from(spec.total_warps))
        .word(u64::from(spec.block_warps))
        .word(u64::from(spec.barrier_period))
        .word(u64::from(spec.launches))
        .word(spec.seed);
    h.finish()
}

/// The canonical content hash of one **trace-driven** grid cell: the
/// experiment and technique folded exactly as in [`cell_fingerprint`],
/// then the trace identified by its *content digest* (plus its header
/// name, which lands in reports). Renaming a trace file never moves the
/// key; editing one byte of its content always does.
///
/// # Examples
///
/// ```
/// use warped_gates::fingerprint::trace_cell_fingerprint;
/// use warped_gates::{Experiment, Technique};
/// use warped_trace::parse_str;
///
/// let trace = parse_str(
///     "WGT1 k\nlaunch warps=2 block=1 stagger=0 waves=1\n\
///      mem hit=0.5 seed=1\nseg straight\ni iadd d=1 s=0 lat=4\nend\n",
/// )
/// .unwrap();
/// let exp = Experiment::paper_defaults();
/// let a = trace_cell_fingerprint(&exp, &trace, Technique::Baseline);
/// assert_eq!(a, trace_cell_fingerprint(&exp, &trace, Technique::Baseline));
/// assert_ne!(a, trace_cell_fingerprint(&exp, &trace, Technique::WarpedGates));
/// ```
#[must_use]
pub fn trace_cell_fingerprint(
    experiment: &Experiment,
    trace: &TraceWorkload,
    technique: Technique,
) -> u64 {
    let mut h = ConfigHasher::new(FINGERPRINT_VERSION);
    fold_experiment(&mut h, experiment);
    h.str(technique.name());
    // Workload-source domain, mirroring the "spec" tag above.
    h.str("trace");
    h.str(&trace.name);
    h.word(trace.digest);
    h.finish()
}

/// Folds the result-determining experiment fields — gating parameters,
/// scale, architecture, issue width, memory hierarchy — in the
/// canonical order shared by both fingerprint families.
fn fold_experiment(h: &mut ConfigHasher, experiment: &Experiment) {
    let p = experiment.params();
    h.word(u64::from(p.idle_detect))
        .word(u64::from(p.bet))
        .word(u64::from(p.wakeup_delay))
        .f64(experiment.scale())
        .word(experiment.layout().sp_clusters() as u64)
        .word(experiment.issue_width().map_or(0, |w| w as u64 + 1));
    // Memory hierarchy: a presence word, then — when armed — every
    // field in declaration order. Each field changes realized latencies,
    // so each must move the hash.
    match experiment.memory_hierarchy() {
        None => {
            h.word(0);
        }
        Some(m) => {
            h.word(1)
                .word(u64::from(m.line_size))
                .word(u64::from(m.l1_sets))
                .word(u64::from(m.l1_ways))
                .word(u64::from(m.l1_banks))
                .word(u64::from(m.l1_latency))
                .word(u64::from(m.l1_mshr_entries))
                .word(u64::from(m.l2_sets))
                .word(u64::from(m.l2_ways))
                .word(u64::from(m.l2_sectors))
                .word(u64::from(m.l2_latency))
                .word(u64::from(m.l2_mshr_entries))
                .word(u64::from(m.dram_latency))
                .word(u64::from(m.dram_interval))
                .word(m.fallback_footprint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_sim::DomainLayout;
    use warped_workloads::Benchmark;

    fn base() -> (Experiment, BenchmarkSpec) {
        (Experiment::paper_defaults(), Benchmark::Hotspot.spec())
    }

    #[test]
    fn equal_configs_hash_equal() {
        let (exp, spec) = base();
        assert_eq!(
            cell_fingerprint(&exp, &spec, Technique::WarpedGates),
            cell_fingerprint(&exp.clone(), &spec.clone(), Technique::WarpedGates),
        );
    }

    #[test]
    fn every_result_determining_field_moves_the_hash() {
        let (exp, spec) = base();
        let reference = cell_fingerprint(&exp, &spec, Technique::WarpedGates);

        let mut variants: Vec<u64> = vec![
            cell_fingerprint(&exp, &spec, Technique::Baseline),
            cell_fingerprint(&exp.clone().with_scale(0.5), &spec, Technique::WarpedGates),
            cell_fingerprint(
                &exp.clone().with_architecture(DomainLayout::kepler(), None),
                &spec,
                Technique::WarpedGates,
            ),
            cell_fingerprint(
                &exp.clone()
                    .with_architecture(DomainLayout::fermi(), Some(4)),
                &spec,
                Technique::WarpedGates,
            ),
            cell_fingerprint(
                &Experiment::new(warped_gating::GatingParams {
                    bet: 19,
                    ..warped_gating::GatingParams::default()
                }),
                &spec,
                Technique::WarpedGates,
            ),
        ];
        let mut spec2 = spec.clone();
        spec2.seed ^= 1;
        variants.push(cell_fingerprint(&exp, &spec2, Technique::WarpedGates));
        let mut spec3 = spec.clone();
        spec3.l1_hit_rate += 1e-9;
        variants.push(cell_fingerprint(&exp, &spec3, Technique::WarpedGates));
        let mut spec4 = spec.clone();
        spec4.total_warps += 1;
        variants.push(cell_fingerprint(&exp, &spec4, Technique::WarpedGates));
        // Arming the hierarchy moves the hash, and so does every one of
        // its fields.
        let armed = exp
            .clone()
            .with_memory_hierarchy(Some(warped_sim::HierarchyConfig::default()));
        variants.push(cell_fingerprint(&armed, &spec, Technique::WarpedGates));
        let field_edits: Vec<fn(&mut warped_sim::HierarchyConfig)> = vec![
            |m| m.line_size *= 2,
            |m| m.l1_sets *= 2,
            |m| m.l1_ways += 1,
            |m| m.l1_banks *= 2,
            |m| m.l1_latency += 1,
            |m| m.l1_mshr_entries += 1,
            |m| m.l2_sets *= 2,
            |m| m.l2_ways += 1,
            |m| m.l2_sectors *= 2,
            |m| m.l2_latency += 1,
            |m| m.l2_mshr_entries += 1,
            |m| m.dram_latency += 1,
            |m| m.dram_interval += 1,
            |m| m.fallback_footprint += 1,
        ];
        for edit in field_edits {
            let mut m = warped_sim::HierarchyConfig::default();
            edit(&mut m);
            variants.push(cell_fingerprint(
                &exp.clone().with_memory_hierarchy(Some(m)),
                &spec,
                Technique::WarpedGates,
            ));
        }

        for (i, v) in variants.iter().enumerate() {
            assert_ne!(*v, reference, "variant {i} must move the fingerprint");
        }
        // And they are all distinct from each other.
        let mut sorted = variants.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), variants.len(), "variants must not collide");
    }

    #[test]
    fn observe_only_switches_do_not_move_the_hash() {
        let (exp, spec) = base();
        let plain = cell_fingerprint(&exp, &spec, Technique::Gates);
        let sanitized = cell_fingerprint(
            &exp.clone()
                .with_sanitize(true)
                .with_job_timeout(Some(std::time::Duration::from_secs(60))),
            &spec,
            Technique::Gates,
        );
        assert_eq!(
            plain, sanitized,
            "sanitizer and watchdog are bit-identity no-ops and must share cache lines"
        );
        for core in [
            crate::CoreClock::EventQueue,
            crate::CoreClock::FastForward,
            crate::CoreClock::Stepped,
        ] {
            assert_eq!(
                plain,
                cell_fingerprint(&exp.clone().with_core(core), &spec, Technique::Gates),
                "clock backends are bit-equal and must share cache lines"
            );
        }
    }

    #[test]
    fn every_grid_cell_has_a_distinct_fingerprint() {
        let exp = Experiment::paper_defaults();
        let mut seen = std::collections::BTreeSet::new();
        for b in Benchmark::ALL {
            for t in Technique::ALL {
                assert!(
                    seen.insert(cell_fingerprint(&exp, &b.spec(), t)),
                    "collision at {b}/{t}"
                );
            }
        }
        assert_eq!(seen.len(), 108);
    }

    /// A tiny valid trace with two spots worth mutating: a recorded
    /// per-lane address and an opcode mnemonic.
    const TRACE: &str = "WGT1 tf\n\
                         launch warps=2 block=1 stagger=0 waves=1\n\
                         mem hit=0.5 seed=9\n\
                         seg straight\n\
                         i ldg d=5 lat=1\n\
                         @ 0 0 0x1000\n\
                         @ 0 1 0x1004\n\
                         i iadd d=1 s=5 lat=4\n\
                         end\n";

    #[test]
    fn trace_fingerprints_track_content_not_filenames() {
        let exp = Experiment::paper_defaults();
        let a = warped_trace::parse_str(TRACE).unwrap();
        let b = warped_trace::parse_str(TRACE).unwrap();
        assert_eq!(
            trace_cell_fingerprint(&exp, &a, Technique::Gates),
            trace_cell_fingerprint(&exp, &b, Technique::Gates),
            "identical bytes share a key regardless of provenance"
        );
    }

    #[test]
    fn a_single_address_edit_moves_the_trace_fingerprint() {
        let exp = Experiment::paper_defaults();
        let a = warped_trace::parse_str(TRACE).unwrap();
        let edited = TRACE.replace("@ 0 1 0x1004", "@ 0 1 0x1008");
        let b = warped_trace::parse_str(&edited).unwrap();
        assert_ne!(
            trace_cell_fingerprint(&exp, &a, Technique::WarpedGates),
            trace_cell_fingerprint(&exp, &b, Technique::WarpedGates),
            "one recorded address differs — the cells must not share a key"
        );
    }

    #[test]
    fn a_single_opcode_edit_moves_the_trace_fingerprint() {
        let exp = Experiment::paper_defaults();
        let a = warped_trace::parse_str(TRACE).unwrap();
        let edited = TRACE.replace("i iadd d=1 s=5 lat=4", "i imul d=1 s=5 lat=8");
        let b = warped_trace::parse_str(&edited).unwrap();
        assert_ne!(
            trace_cell_fingerprint(&exp, &a, Technique::WarpedGates),
            trace_cell_fingerprint(&exp, &b, Technique::WarpedGates),
            "one opcode differs — the cells must not share a key"
        );
    }

    #[test]
    fn trace_cells_never_alias_synthetic_cells() {
        // A trace named after a real benchmark must not collide with
        // that benchmark's synthetic cell under any technique.
        let exp = Experiment::paper_defaults();
        let spec = Benchmark::Hotspot.spec();
        let trace = warped_trace::parse_str(&TRACE.replace("WGT1 tf", "WGT1 hotspot")).unwrap();
        for t in Technique::ALL {
            assert_ne!(
                cell_fingerprint(&exp, &spec, t),
                trace_cell_fingerprint(&exp, &trace, t),
                "workload-source domain must separate the families ({t})"
            );
        }
    }

    #[test]
    fn experiment_knobs_move_trace_fingerprints_too() {
        let exp = Experiment::paper_defaults();
        let trace = warped_trace::parse_str(TRACE).unwrap();
        let reference = trace_cell_fingerprint(&exp, &trace, Technique::Gates);
        let scaled = trace_cell_fingerprint(&exp.clone().with_scale(0.5), &trace, Technique::Gates);
        assert_ne!(reference, scaled, "scale is a key-bearing knob");
        let rearch = trace_cell_fingerprint(
            &exp.clone()
                .with_architecture(DomainLayout::kepler(), Some(4)),
            &trace,
            Technique::Gates,
        );
        assert_ne!(reference, rearch, "architecture is a key-bearing knob");
    }

    #[test]
    fn hasher_distinguishes_adjacent_string_splits() {
        let mut a = ConfigHasher::new(0);
        a.str("ab").str("c");
        let mut b = ConfigHasher::new(0);
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn domain_tags_separate_hash_uses() {
        let mut a = ConfigHasher::new(1);
        a.word(42);
        let mut b = ConfigHasher::new(2);
        b.word(42);
        assert_ne!(a.finish(), b.finish());
    }
}
