//! Adaptive idle detect (paper Section 5.1).

use warped_gating::IdleDetectTuner;
use warped_isa::UnitType;

/// The runtime idle-detect tuner.
///
/// Execution is divided into epochs (1000 cycles in the paper). During
/// each epoch the controller counts *critical wakeups* — wakeups that
/// fire the very cycle a blackout period ends, i.e. an instruction was
/// already waiting when the break-even timer expired. At each epoch
/// boundary, per unit type:
///
/// * more critical wakeups than the threshold (5) → the idle-detect
///   window grows by one (gate more conservatively), reacting quickly to
///   performance-critical phases;
/// * otherwise, after four consecutive clean epochs the window shrinks
///   by one (recover gating aggressiveness slowly).
///
/// The window is bounded to 5..=10 cycles; the paper found bounded
/// windows a better energy/performance trade-off than unbounded ones.
/// INT and FP are tuned independently, since each application stresses
/// them differently.
///
/// Every epoch decision is observable at runtime: with telemetry armed
/// ([`SmConfig::telemetry`](warped_sim::SmConfig)), the gating
/// controller stamps a [`TunerEpoch`](warped_sim::Event::TunerEpoch)
/// event — the epoch's critical-wakeup count and the window it settled
/// on — at each boundary, which the Perfetto exporter renders as the
/// per-type "window" counter tracks.
///
/// # Examples
///
/// ```
/// use warped_gates::AdaptiveIdleDetect;
/// use warped_gating::IdleDetectTuner;
/// use warped_isa::UnitType;
///
/// let mut tuner = AdaptiveIdleDetect::new();
/// let mut window = 5;
/// tuner.on_epoch(UnitType::Int, 9, &mut window); // breach → widen
/// assert_eq!(window, 6);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveIdleDetect {
    threshold: u32,
    min: u32,
    max: u32,
    decrement_period: u32,
    epoch_len: u64,
    clean_epochs: [u32; 4],
}

impl AdaptiveIdleDetect {
    /// Creates the tuner with the paper's constants: threshold 5,
    /// bounds 5..=10, decrement every 4 clean epochs, 1000-cycle epochs.
    #[must_use]
    pub fn new() -> Self {
        AdaptiveIdleDetect {
            threshold: 5,
            min: 5,
            max: 10,
            decrement_period: 4,
            epoch_len: 1000,
            clean_epochs: [0; 4],
        }
    }

    /// Creates a tuner with explicit constants (for sensitivity
    /// studies).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`, or if the decrement period or epoch
    /// length is zero.
    #[must_use]
    pub fn with_constants(
        threshold: u32,
        min: u32,
        max: u32,
        decrement_period: u32,
        epoch_len: u64,
    ) -> Self {
        assert!(min <= max, "min idle-detect must not exceed max");
        assert!(decrement_period > 0, "decrement period must be positive");
        assert!(epoch_len > 0, "epoch length must be positive");
        AdaptiveIdleDetect {
            threshold,
            min,
            max,
            decrement_period,
            epoch_len,
            clean_epochs: [0; 4],
        }
    }

    /// The critical-wakeup threshold per epoch.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The inclusive idle-detect bounds.
    #[must_use]
    pub fn bounds(&self) -> (u32, u32) {
        (self.min, self.max)
    }
}

impl Default for AdaptiveIdleDetect {
    fn default() -> Self {
        AdaptiveIdleDetect::new()
    }
}

impl IdleDetectTuner for AdaptiveIdleDetect {
    fn on_epoch(&mut self, unit: UnitType, critical_wakeups: u32, idle_detect: &mut u32) {
        let ui = unit.index();
        if critical_wakeups > self.threshold {
            *idle_detect = (*idle_detect + 1).min(self.max).max(self.min);
            self.clean_epochs[ui] = 0;
        } else {
            self.clean_epochs[ui] += 1;
            if self.clean_epochs[ui] >= self.decrement_period {
                *idle_detect = idle_detect.saturating_sub(1).max(self.min);
                self.clean_epochs[ui] = 0;
            }
        }
    }

    fn epoch_len(&self) -> u64 {
        self.epoch_len
    }

    fn window_bounds(&self) -> Option<(u32, u32)> {
        Some(self.bounds())
    }

    fn name(&self) -> &'static str {
        "AdaptiveIdleDetect"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breach_widens_window_by_one() {
        let mut t = AdaptiveIdleDetect::new();
        let mut w = 5;
        t.on_epoch(UnitType::Int, 6, &mut w);
        assert_eq!(w, 6);
        t.on_epoch(UnitType::Int, 100, &mut w);
        assert_eq!(w, 7);
    }

    #[test]
    fn threshold_is_strictly_greater_than() {
        let mut t = AdaptiveIdleDetect::new();
        let mut w = 5;
        t.on_epoch(UnitType::Int, 5, &mut w);
        assert_eq!(w, 5, "exactly 5 critical wakeups is not a breach");
    }

    #[test]
    fn window_is_bounded_above_by_ten() {
        let mut t = AdaptiveIdleDetect::new();
        let mut w = 5;
        for _ in 0..20 {
            t.on_epoch(UnitType::Fp, 50, &mut w);
        }
        assert_eq!(w, 10);
    }

    #[test]
    fn four_clean_epochs_shrink_the_window() {
        let mut t = AdaptiveIdleDetect::new();
        let mut w = 8;
        for i in 0..3 {
            t.on_epoch(UnitType::Int, 0, &mut w);
            assert_eq!(w, 8, "epoch {i}: not yet");
        }
        t.on_epoch(UnitType::Int, 0, &mut w);
        assert_eq!(w, 7, "fourth clean epoch decrements");
    }

    #[test]
    fn breach_resets_the_clean_epoch_run() {
        let mut t = AdaptiveIdleDetect::new();
        let mut w = 8;
        t.on_epoch(UnitType::Int, 0, &mut w);
        t.on_epoch(UnitType::Int, 0, &mut w);
        t.on_epoch(UnitType::Int, 9, &mut w); // breach → w=9, run reset
        assert_eq!(w, 9);
        for _ in 0..3 {
            t.on_epoch(UnitType::Int, 0, &mut w);
        }
        assert_eq!(w, 9, "needs four clean epochs after the reset");
        t.on_epoch(UnitType::Int, 0, &mut w);
        assert_eq!(w, 8);
    }

    #[test]
    fn window_is_bounded_below_by_five() {
        let mut t = AdaptiveIdleDetect::new();
        let mut w = 5;
        for _ in 0..20 {
            t.on_epoch(UnitType::Fp, 0, &mut w);
        }
        assert_eq!(w, 5);
    }

    #[test]
    fn int_and_fp_are_tuned_independently() {
        let mut t = AdaptiveIdleDetect::new();
        let mut w_int = 8;
        let mut w_fp = 8;
        for _ in 0..3 {
            t.on_epoch(UnitType::Int, 0, &mut w_int);
        }
        // FP epochs must not advance INT's clean-run counter.
        for _ in 0..4 {
            t.on_epoch(UnitType::Fp, 0, &mut w_fp);
        }
        assert_eq!(w_fp, 7);
        assert_eq!(w_int, 8, "INT still needs one more clean epoch");
        t.on_epoch(UnitType::Int, 0, &mut w_int);
        assert_eq!(w_int, 7);
    }

    #[test]
    fn paper_constants_exposed() {
        let t = AdaptiveIdleDetect::new();
        assert_eq!(t.threshold(), 5);
        assert_eq!(t.bounds(), (5, 10));
        assert_eq!(t.epoch_len(), 1000);
        assert_eq!(t.window_bounds(), Some((5, 10)));
    }

    #[test]
    #[should_panic(expected = "min idle-detect")]
    fn inverted_bounds_rejected() {
        let _ = AdaptiveIdleDetect::with_constants(5, 10, 5, 4, 1000);
    }
}
