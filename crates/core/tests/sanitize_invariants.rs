//! End-to-end checks of the gating invariant sanitizer.
//!
//! Two directions, per the robustness design (DESIGN.md §11):
//!
//! * **Green on correct code** — the full 18 × 6 grid runs with the
//!   sanitizer armed and the fast-forward clock engaged, and every
//!   invariant holds.
//! * **Red on mutations** — controllers deliberately broken in the ways
//!   the sanitizer exists to catch (a blackout policy waking before its
//!   claimed break-even floor, a tuner escaping its promised window
//!   bounds) are caught mid-simulation, not silently tolerated.

use std::panic::{catch_unwind, AssertUnwindSafe};
use warped_gates::{runner, Experiment, Technique};
use warped_gating::{
    Controller, ConvPgPolicy, GatePolicy, GatingParams, IdleDetectTuner, PolicyCtx,
    StaticIdleDetect,
};
use warped_isa::UnitType;
use warped_sim::{DomainId, Sm};
use warped_workloads::Benchmark;

#[test]
fn full_grid_is_green_under_the_sanitizer_with_fast_forward() {
    let exp = Experiment::quick_for_tests();
    assert!(exp.sanitize(), "quick_for_tests must arm the sanitizer");
    let jobs = runner::full_grid();
    assert_eq!(jobs.len(), 108, "18 benchmarks x 6 techniques");
    let runs = runner::run_grid_with(&exp, &jobs, 4);
    let mut fast_forwarded = 0u64;
    for ((spec, technique), run) in jobs.iter().zip(&runs) {
        assert!(!run.timed_out, "{}/{technique} timed out", spec.name);
        assert!(run.cycles > 0);
        fast_forwarded += run.stats.fast_forwarded_cycles;
    }
    assert!(
        fast_forwarded > 0,
        "the grid must actually exercise the fast-forward clock under the sanitizer"
    );
}

/// A blackout policy that *claims* the break-even floor but wakes on
/// demand immediately, exactly the bug class the paper's Blackout
/// schemes eliminate.
struct BrokenBlackout;

impl GatePolicy for BrokenBlackout {
    fn should_gate(&self, ctx: &PolicyCtx<'_>) -> bool {
        ctx.idle_run >= ctx.idle_detect
    }

    fn may_wake(&self, _ctx: &PolicyCtx<'_>, _elapsed: u32) -> bool {
        true // lies: ignores the break-even floor it advertises
    }

    fn wake_floor(&self, domain: DomainId, params: &GatingParams) -> u32 {
        if domain.is_cuda_core() {
            params.bet
        } else {
            0
        }
    }

    fn name(&self) -> &'static str {
        "BrokenBlackout"
    }
}

fn run_sanitized_with(
    benchmark: Benchmark,
    gating: Box<dyn warped_sim::PowerGating>,
) -> Result<(), String> {
    let spec = benchmark.spec().scaled(0.08);
    let mut cfg = spec.sm_config();
    cfg.sanitize = true;
    let sm = Sm::new(
        cfg,
        spec.launch(),
        Technique::ConvPg.make_scheduler(),
        gating,
    );
    catch_unwind(AssertUnwindSafe(move || {
        let _ = sm.run();
    }))
    .map_err(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default()
    })
}

#[test]
fn sanitizer_catches_a_policy_breaking_its_break_even_claim() {
    // ConvPG-style gating wakes before BET somewhere in these three
    // workloads (a property the ConvPG tests rely on), so a policy that
    // claims the blackout floor while waking like ConvPG must trip the
    // sanitizer on at least one of them.
    let mut caught = Vec::new();
    for b in [Benchmark::Hotspot, Benchmark::Srad, Benchmark::Lbm] {
        let gating = Box::new(Controller::new(
            GatingParams::default(),
            BrokenBlackout,
            StaticIdleDetect::new(),
        ));
        if let Err(message) = run_sanitized_with(b, gating) {
            assert!(
                message.contains("break-even violated"),
                "unexpected panic: {message}"
            );
            caught.push(b);
        }
    }
    assert!(
        !caught.is_empty(),
        "the broken blackout policy was never caught"
    );
}

/// A tuner that promises the paper's 5..=10 window but walks the window
/// far past it at every epoch.
struct LyingTuner;

impl IdleDetectTuner for LyingTuner {
    fn on_epoch(&mut self, _unit: UnitType, _critical_wakeups: u32, idle_detect: &mut u32) {
        *idle_detect += 100;
    }

    fn epoch_len(&self) -> u64 {
        200
    }

    fn window_bounds(&self) -> Option<(u32, u32)> {
        Some((5, 10))
    }

    fn name(&self) -> &'static str {
        "LyingTuner"
    }
}

#[test]
fn sanitizer_catches_a_tuner_escaping_its_bounds_mid_simulation() {
    let gating = Box::new(Controller::new(
        GatingParams::default(),
        ConvPgPolicy::new(),
        LyingTuner,
    ));
    let err = run_sanitized_with(Benchmark::Hotspot, gating)
        .expect_err("the lying tuner must be caught at its first epoch boundary");
    assert!(
        err.contains("outside the tuner's promised bounds"),
        "unexpected panic: {err}"
    );
}

#[test]
fn sanitize_off_tolerates_the_same_broken_policy() {
    // The release path (sanitize: false) must not pay for the checks —
    // and therefore also not catch the mutant. This pins the flag
    // actually gating the machinery.
    for b in [Benchmark::Hotspot, Benchmark::Srad, Benchmark::Lbm] {
        let spec = b.spec().scaled(0.08);
        let cfg = spec.sm_config();
        assert!(!cfg.sanitize, "benchmark configs default to sanitize off");
        let sm = Sm::new(
            cfg,
            spec.launch(),
            Technique::ConvPg.make_scheduler(),
            Box::new(Controller::new(
                GatingParams::default(),
                BrokenBlackout,
                StaticIdleDetect::new(),
            )),
        );
        let outcome = sm.run();
        assert!(outcome.stats.cycles > 0);
    }
}
