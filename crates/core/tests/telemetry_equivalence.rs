//! Telemetry must be observe-only: arming a recorder on an experiment
//! cannot change a single simulated cycle, unit statistic, or gating
//! report, for any technique — and the recording itself must be
//! well-formed (ordered stamps, events for the states each technique
//! actually visits).

use warped_gates::{Experiment, Technique};
use warped_sim::probe::{Event, Recorder, RecorderConfig};
use warped_workloads::Benchmark;

fn recorder() -> Recorder {
    Recorder::new(RecorderConfig {
        capacity: 1 << 20,
        epoch_len: 500,
    })
}

#[test]
fn armed_runs_report_identically_to_bare_runs_for_every_technique() {
    let spec = Benchmark::Hotspot.spec();
    let bare = Experiment::quick_for_tests();
    let rec = recorder();
    let armed = Experiment::quick_for_tests().with_telemetry(Some(rec.clone()));
    for technique in Technique::ALL {
        let b = bare.run(&spec, technique);
        let a = armed.run(&spec, technique);
        let log = rec.take(); // separate this run's stream from the next
        assert_eq!(a.cycles, b.cycles, "{technique}: cycle count perturbed");
        assert_eq!(
            a.report.stats, b.report.stats,
            "{technique}: stats perturbed"
        );
        assert_eq!(
            a.report.gating, b.report.gating,
            "{technique}: gating report perturbed"
        );
        assert_eq!(log.dropped, 0, "{technique}: ring too small for this cell");
        assert!(
            !log.events.is_empty(),
            "{technique}: armed run recorded nothing"
        );
    }
}

#[test]
fn event_stamps_are_non_decreasing() {
    let rec = recorder();
    let exp = Experiment::quick_for_tests().with_telemetry(Some(rec.clone()));
    let _ = exp.run(&Benchmark::Srad.spec(), Technique::WarpedGates);
    let log = rec.take();
    let mut last = 0u64;
    for s in &log.events {
        assert!(s.cycle >= last, "stamp went backwards at cycle {}", s.cycle);
        last = s.cycle;
    }
    assert!(last <= log.last_cycle);
}

#[test]
fn gated_techniques_record_full_gating_episodes() {
    let spec = Benchmark::Hotspot.spec();
    for technique in Technique::GATED {
        let rec = recorder();
        let exp = Experiment::quick_for_tests().with_telemetry(Some(rec.clone()));
        let run = exp.run(&spec, technique);
        assert!(!run.timed_out);
        let log = rec.take();
        let count = |pred: fn(&Event) -> bool| log.events.iter().filter(|s| pred(&s.event)).count();
        assert!(
            count(|e| matches!(e, Event::IdleDetect { .. })) > 0,
            "{technique}: no idle-detect starts"
        );
        assert!(
            count(|e| matches!(e, Event::Gate { .. })) > 0,
            "{technique}: no gate events"
        );
        assert!(
            count(|e| matches!(e, Event::Wakeup { .. })) > 0,
            "{technique}: no wakeups"
        );
        assert!(
            count(|e| matches!(e, Event::WakeComplete { .. })) > 0,
            "{technique}: no wakeup completions"
        );
        // The epoch rollups must agree with the raw stream.
        let gates: u64 = log.epochs.iter().map(|e| e.gate_events).sum();
        assert_eq!(gates, count(|e| matches!(e, Event::Gate { .. })) as u64);
    }
}

#[test]
fn baseline_records_activity_but_no_gating() {
    let rec = recorder();
    let exp = Experiment::quick_for_tests().with_telemetry(Some(rec.clone()));
    let _ = exp.run(&Benchmark::Hotspot.spec(), Technique::Baseline);
    let log = rec.take();
    assert!(
        log.events
            .iter()
            .any(|s| matches!(s.event, Event::BusyEdge { .. })),
        "baseline still has busy edges"
    );
    assert!(
        !log.events.iter().any(|s| matches!(
            s.event,
            Event::Gate { .. } | Event::Wakeup { .. } | Event::PowerEdge { .. }
        )),
        "always-on run must never gate"
    );
}

#[test]
fn gates_scheduler_stamps_priority_flips() {
    let rec = recorder();
    let exp = Experiment::quick_for_tests().with_telemetry(Some(rec.clone()));
    let _ = exp.run(&Benchmark::Hotspot.spec(), Technique::WarpedGates);
    let log = rec.take();
    let flips: u64 = log.epochs.iter().map(|e| e.priority_flips).sum();
    assert!(
        flips > 0,
        "mixed int/fp benchmark should flip GATES priority"
    );
    assert_eq!(
        flips,
        log.events
            .iter()
            .filter(|s| matches!(s.event, Event::PriorityFlip { .. }))
            .count() as u64
    );
}
