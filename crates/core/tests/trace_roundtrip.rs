//! The WGT1 round-trip property: capture → parse → lower → simulate is
//! bit-identical to running the native kernel.
//!
//! Three layers of evidence, from cheapest to strongest:
//!
//! 1. every checked-in corpus trace under `traces/` is *byte-identical*
//!    to a fresh capture of its benchmark (so the corpus can never
//!    drift from the generator without a diff showing up);
//! 2. every corpus trace lowers to a kernel structurally equal to the
//!    generator's, with the same launch geometry and memory behaviour;
//! 3. captures of pre-scaled benchmarks and of hand-built
//!    descriptor-carrying kernels *replay bit-identically* — cycles,
//!    stats, and gating reports — across all six techniques with the
//!    sanitizer armed.
//!
//! Scaled captures are made from *pre-scaled specs* run at scale 1.0:
//! spec scaling divides loop trips before the kernel generator splits
//! them across barrier rounds, so scaling a full-size capture is a
//! different workload than capturing a scaled spec.

use std::path::PathBuf;
use warped_gates::{Experiment, Technique};
use warped_isa::KernelBuilder;
use warped_trace::{capture, content_digest, parse_bytes, parse_str, CaptureSpec, TraceWorkload};
use warped_workloads::{Benchmark, BenchmarkSpec};

/// The checked-in corpus directory at the repository root.
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../traces")
}

/// The WGT1 capture of a benchmark spec, exactly as `tracegen` emits it.
fn capture_spec(spec: &BenchmarkSpec) -> String {
    let kernel = spec.kernel();
    capture(&CaptureSpec {
        name: spec.name,
        kernel: &kernel,
        total_warps: spec.total_warps,
        block_warps: spec.block_warps,
        stagger: spec.body_len as u32,
        waves: spec.launches,
        l1_hit_rate: spec.l1_hit_rate,
        mem_seed: spec.seed ^ 0xdead_beef,
    })
}

fn corpus() -> Vec<(PathBuf, Vec<u8>, TraceWorkload)> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("traces/ corpus must exist at the repo root")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "wgt1"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 6,
        "the corpus holds at least six traces, found {}",
        entries.len()
    );
    entries
        .into_iter()
        .map(|path| {
            let bytes = std::fs::read(&path).unwrap();
            let parsed = parse_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{}: corpus trace must parse: {e}", path.display()));
            (path, bytes, parsed)
        })
        .collect()
}

#[test]
fn corpus_traces_are_byte_identical_recaptures() {
    for (path, bytes, parsed) in corpus() {
        let stem = path.file_stem().unwrap().to_str().unwrap().to_owned();
        assert_eq!(parsed.name, stem, "file name matches the header name");
        let bench = Benchmark::from_name(&stem)
            .unwrap_or_else(|| panic!("{stem}: corpus traces capture catalog benchmarks"));
        assert_eq!(
            String::from_utf8(bytes.clone()).unwrap(),
            capture_spec(&bench.spec()),
            "{stem}: corpus trace drifted from a fresh full-scale capture — \
             regenerate with `tracegen --out traces --verify`"
        );
        assert_eq!(
            parsed.digest,
            content_digest(&bytes),
            "{stem}: parser must record the content digest of the raw bytes"
        );
    }
}

#[test]
fn corpus_traces_lower_to_the_native_kernels() {
    for (_, _, parsed) in corpus() {
        let spec = Benchmark::from_name(&parsed.name).unwrap().spec();
        assert_eq!(
            parsed.kernel,
            spec.kernel(),
            "{}: lowered kernel",
            parsed.name
        );
        assert_eq!(parsed.total_warps, spec.total_warps, "{}", parsed.name);
        assert_eq!(parsed.block_warps, spec.block_warps, "{}", parsed.name);
        assert_eq!(parsed.stagger, spec.body_len as u32, "{}", parsed.name);
        assert_eq!(parsed.waves, spec.launches, "{}", parsed.name);
        assert_eq!(parsed.mem_seed, spec.seed ^ 0xdead_beef, "{}", parsed.name);
        assert!(
            (parsed.l1_hit_rate - spec.l1_hit_rate).abs() == 0.0,
            "{}: hit rate must survive bit-exactly",
            parsed.name
        );
    }
}

#[test]
fn scaled_corpus_benchmarks_replay_bit_identically() {
    let exp = Experiment::paper_defaults().with_sanitize(true);
    for (_, _, full) in corpus() {
        let spec = Benchmark::from_name(&full.name)
            .unwrap()
            .spec()
            .scaled(0.08);
        let trace = parse_str(&capture_spec(&spec)).unwrap();
        for technique in Technique::ALL {
            let native = exp.run(&spec, technique);
            let replay = exp.run_trace(&trace, technique);
            assert_eq!(
                native.report.cycles, replay.report.cycles,
                "{}/{technique}: cycles",
                spec.name
            );
            assert_eq!(
                native.report.stats, replay.report.stats,
                "{}/{technique}: stats",
                spec.name
            );
            assert_eq!(
                native.report.gating, replay.report.gating,
                "{}/{technique}: gating report",
                spec.name
            );
            assert_eq!(native.report.timed_out, replay.report.timed_out);
        }
    }
}

/// Three hand-built kernels carrying every descriptor family — shapes
/// the descriptor-free benchmark generator never emits.
fn descriptor_kernels() -> Vec<TraceWorkload> {
    let strided = KernelBuilder::new("rt-strided")
        .iadd(1, 0, 0)
        .begin_loop(40)
        .load_global_strided(2, 0x1_0000, 4, 512)
        .ffma(3, 1, 2, 3)
        .store_global_strided(3, 0x8_0000, 8, 1024)
        .end_loop()
        .build();
    let tiled = KernelBuilder::new("rt-tiled")
        .begin_loop(30)
        .load_global_tiled(2, 0x4000, 64, 8)
        .fmul(3, 2, 2)
        .end_loop()
        .barrier()
        .store_global(3)
        .build();
    let random = KernelBuilder::new("rt-random")
        .begin_loop(25)
        .load_global_random(2, 0xabcd, 1 << 16)
        .iadd(3, 2, 3)
        .sfu(4, 3)
        .end_loop()
        .build();
    [(strided, 24u32), (tiled, 16), (random, 12)]
        .into_iter()
        .map(|(kernel, warps)| TraceWorkload {
            name: kernel.name().to_owned(),
            kernel,
            total_warps: warps,
            block_warps: 4,
            stagger: 5,
            waves: 2,
            l1_hit_rate: 0.6,
            mem_seed: 0x7ace,
            digest: 0, // replaced below by the capture's real digest
        })
        .collect()
}

#[test]
fn descriptor_kernels_replay_bit_identically_after_capture() {
    let exp = Experiment::paper_defaults().with_sanitize(true);
    for native in descriptor_kernels() {
        let text = capture(&CaptureSpec {
            name: &native.name,
            kernel: &native.kernel,
            total_warps: native.total_warps,
            block_warps: native.block_warps,
            stagger: native.stagger,
            waves: native.waves,
            l1_hit_rate: native.l1_hit_rate,
            mem_seed: native.mem_seed,
        });
        let parsed = parse_str(&text).unwrap();
        assert_eq!(
            parsed,
            TraceWorkload {
                digest: content_digest(text.as_bytes()),
                ..native.clone()
            },
            "{}: capture → parse reproduces the workload exactly",
            native.name
        );
        for technique in Technique::ALL {
            let a = exp.run_trace(&native, technique);
            let b = exp.run_trace(&parsed, technique);
            assert_eq!(
                a.report.cycles, b.report.cycles,
                "{}/{technique}",
                native.name
            );
            assert_eq!(
                a.report.stats, b.report.stats,
                "{}/{technique}",
                native.name
            );
            assert_eq!(
                a.report.gating, b.report.gating,
                "{}/{technique}",
                native.name
            );
        }
    }
}

#[test]
fn corpus_names_cover_the_intended_workload_spread() {
    let names: Vec<String> = corpus().into_iter().map(|(_, _, w)| w.name).collect();
    for want in ["hotspot", "bfs", "sgemm", "nw", "lbm", "mri"] {
        assert!(
            names.iter().any(|n| n == want),
            "corpus must include {want}, found {names:?}"
        );
    }
}
