//! End-to-end checks of the fault-tolerant sweep engine and binary:
//! injected panics are isolated, interrupted sweeps resume
//! bit-identically, hung cells are cut off by the watchdog, and the
//! `sweep` binary speaks the documented exit-code protocol
//! (0 clean / 1 degraded grid / 2 bad command line).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;
use warped_bench::journal::{self, JournalEntry};
use warped_bench::sweep::{self, SweepConfig};
use warped_gates::runner;
use warped_gates::Technique;
use warped_workloads::Benchmark;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn by_index(entries: Vec<JournalEntry>) -> BTreeMap<usize, JournalEntry> {
    entries.into_iter().map(|e| (e.index, e)).collect()
}

#[test]
fn injected_panic_spares_the_rest_of_the_full_grid_bit_identically() {
    let clean_dir = fresh_dir("warped_ft_full_clean");
    let chaos_dir = fresh_dir("warped_ft_full_chaos");
    let scale = 0.05;
    const VICTIM: usize = 7;

    let mut clean = SweepConfig::new(&clean_dir, 4);
    clean.scale = scale;
    clean.quiet = true;
    let clean_summary = sweep::run(&clean).unwrap();
    assert!(clean_summary.ok());
    assert_eq!(clean_summary.total, 108);

    let mut chaos = clean.clone();
    chaos.out_dir = chaos_dir.clone();
    chaos.chaos = vec![VICTIM];
    let chaos_summary = sweep::run(&chaos).unwrap();
    assert!(!chaos_summary.ok());
    assert_eq!(chaos_summary.failures.len(), 1);
    assert_eq!(chaos_summary.failures[0].index, VICTIM);
    assert!(
        chaos_summary.failures[0].reason.contains("l1_hit_rate"),
        "reason: {}",
        chaos_summary.failures[0].reason
    );

    // Every surviving cell's journaled result is bit-identical to the
    // clean sweep's; only the victim is missing.
    let mut clean_cells = by_index(journal::load(&sweep::journal_path(&clean_dir)).unwrap());
    let chaos_cells = by_index(journal::load(&sweep::journal_path(&chaos_dir)).unwrap());
    assert!(clean_cells.remove(&VICTIM).is_some());
    assert_eq!(chaos_cells, clean_cells);

    assert!(sweep::manifest_path(&chaos_dir).exists());
    assert!(!sweep::manifest_path(&clean_dir).exists());

    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&chaos_dir).ok();
}

#[test]
fn watchdog_degrades_hung_cells_instead_of_hanging_the_sweep() {
    let dir = fresh_dir("warped_ft_watchdog");
    let mut config = SweepConfig::new(&dir, 2);
    config.scale = 0.05;
    config.quiet = true;
    // A zero budget trips the watchdog on the first check, making every
    // cell deterministically "hung".
    config.job_timeout = Some(Duration::ZERO);
    let jobs = runner::grid_of(
        &[Benchmark::Hotspot, Benchmark::Srad],
        &[Technique::Baseline, Technique::WarpedGates],
    );
    let summary = sweep::run_on(&config, jobs).unwrap();
    assert_eq!(summary.failures.len(), 4, "every cell must time out");
    for f in &summary.failures {
        assert!(f.reason.contains("timed out"), "reason: {}", f.reason);
    }
    // Degraded cells are not journaled: a resume re-runs all of them.
    assert_eq!(journal::load(&sweep::journal_path(&dir)).unwrap(), vec![]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_binary_speaks_the_exit_code_protocol_and_self_heals() {
    let dir = fresh_dir("warped_ft_binary");
    let bin = env!("CARGO_BIN_EXE_sweep");

    // Exit 2 + usage on a malformed command line.
    let bad = Command::new(bin)
        .args(["--scale", "fast"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");

    // Exit 1 + manifest when a cell is poisoned; the other 107 land.
    let chaos = Command::new(bin)
        .args(["--scale", "0.02", "--jobs", "4", "--chaos", "5"])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(chaos.status.code(), Some(1));
    assert!(sweep::manifest_path(&dir).exists());
    assert_eq!(
        journal::load(&sweep::journal_path(&dir)).unwrap().len(),
        107
    );

    // Exit 0 on resume without the poison: only the victim re-runs and
    // the grid completes.
    let healed = Command::new(bin)
        .args(["--scale", "0.02", "--jobs", "4", "--resume"])
        .args(["--out-dir", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(healed.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&healed.stdout);
    assert!(
        stdout.contains("107 reused from journal, 1 run"),
        "stdout: {stdout}"
    );
    assert!(!sweep::manifest_path(&dir).exists(), "manifest cleared");
    assert_eq!(
        journal::load(&sweep::journal_path(&dir)).unwrap().len(),
        108
    );

    std::fs::remove_dir_all(&dir).ok();
}
