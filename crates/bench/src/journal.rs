//! Crash-safe sweep journal: one JSONL line per completed grid cell.
//!
//! The `sweep` binary appends a line here the moment each cell finishes,
//! so an interrupted sweep (SIGKILL, power loss, panic in an unrelated
//! cell) can resume without re-running work. The format is append-only
//! JSONL because it degrades gracefully: a torn final line — the only
//! corruption an append-only writer can suffer — simply fails to parse
//! and the cell it described re-runs on resume.
//!
//! Entries are keyed by the cell's global grid index *and* its label;
//! [`load`] drops any entry whose label disagrees with the caller's
//! expectation, which protects against resuming a journal written at a
//! different scale or against a different grid shape.

use std::io::Write as _;
use std::path::Path;

/// One completed grid cell, as journaled by the sweep engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The cell's index in the full benchmark-major grid.
    pub index: usize,
    /// `"{benchmark}/{technique}"`, the row label in `bench_grid.json`.
    pub label: String,
    /// Simulated cycles of the run.
    pub cycles: u64,
    /// Cycles covered by the event-driven fast-forward clock.
    pub ff_cycles: u64,
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Pulls `"key":<number>` out of a JSONL line.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Pulls `"key":"<escaped string>"` out of a JSONL line.
fn field_str(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    // Find the closing quote, skipping escaped ones.
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return unescape(&rest[..i]);
        }
    }
    None
}

impl JournalEntry {
    /// Renders the entry as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "{{\"index\":{},\"label\":\"{}\",\"cycles\":{},\"ff_cycles\":{}}}",
            self.index,
            escape(&self.label),
            self.cycles,
            self.ff_cycles
        )
    }

    /// Parses one journal line; `None` for torn or malformed lines.
    #[must_use]
    pub fn parse(line: &str) -> Option<JournalEntry> {
        let line = line.trim();
        if !line.starts_with('{') || !line.ends_with('}') {
            return None;
        }
        Some(JournalEntry {
            index: usize::try_from(field_u64(line, "index")?).ok()?,
            label: field_str(line, "label")?,
            cycles: field_u64(line, "cycles")?,
            ff_cycles: field_u64(line, "ff_cycles")?,
        })
    }

    /// Appends this entry as one line and flushes, so the entry is
    /// durable before the next cell is attempted.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write or flush.
    pub fn append(&self, file: &mut std::fs::File) -> std::io::Result<()> {
        writeln!(file, "{}", self.to_line())?;
        file.flush()
    }
}

/// Loads every parseable entry from a journal file.
///
/// A missing file is an empty journal (first run), and torn or
/// malformed lines are skipped — the cells they described simply
/// re-run. Later entries win over earlier ones with the same index,
/// so a journal that recorded a cell twice stays consistent.
///
/// # Errors
///
/// Returns an I/O error only for genuine read failures (permissions,
/// not `NotFound`).
pub fn load(path: &Path) -> std::io::Result<Vec<JournalEntry>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut entries: Vec<JournalEntry> = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(entry) = JournalEntry::parse(line) {
            entries.retain(|e| e.index != entry.index);
            entries.push(entry);
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> JournalEntry {
        JournalEntry {
            index: 42,
            label: "hotspot/Warped Gates".to_owned(),
            cycles: 123_456,
            ff_cycles: 7_890,
        }
    }

    #[test]
    fn round_trips_through_a_line() {
        let e = entry();
        assert_eq!(JournalEntry::parse(&e.to_line()), Some(e));
    }

    #[test]
    fn escaped_labels_round_trip() {
        let e = JournalEntry {
            label: "odd\"label\\with\tescapes".to_owned(),
            ..entry()
        };
        assert_eq!(JournalEntry::parse(&e.to_line()), Some(e));
    }

    #[test]
    fn torn_lines_are_rejected_not_fatal() {
        let line = entry().to_line();
        for cut in 1..line.len() {
            // A torn tail must never parse into a wrong entry; parsing
            // a strict prefix either fails or is impossible (no '}').
            assert_eq!(JournalEntry::parse(&line[..cut]), None, "cut at {cut}");
        }
        assert_eq!(JournalEntry::parse(""), None);
        assert_eq!(JournalEntry::parse("not json at all"), None);
    }

    #[test]
    fn load_tolerates_missing_file_and_garbage_lines() {
        let dir = std::env::temp_dir().join("warped_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("missing.jsonl");
        std::fs::remove_file(&path).ok();
        assert_eq!(load(&path).unwrap(), Vec::new());

        let good = entry();
        let mut text = format!("{}\n", good.to_line());
        text.push_str("{\"index\":1,\"label\":\"torn");
        std::fs::write(&path, &text).unwrap();
        assert_eq!(load(&path).unwrap(), vec![good]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_keeps_the_last_entry_per_index() {
        let dir = std::env::temp_dir().join("warped_journal_dup_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dup.jsonl");
        let old = entry();
        let new = JournalEntry {
            cycles: 999,
            ..entry()
        };
        std::fs::write(&path, format!("{}\n{}\n", old.to_line(), new.to_line())).unwrap();
        assert_eq!(load(&path).unwrap(), vec![new]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_is_line_oriented() {
        let dir = std::env::temp_dir().join("warped_journal_append_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.jsonl");
        std::fs::remove_file(&path).ok();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        let a = entry();
        let b = JournalEntry {
            index: 43,
            ..entry()
        };
        a.append(&mut f).unwrap();
        b.append(&mut f).unwrap();
        drop(f);
        assert_eq!(load(&path).unwrap(), vec![a, b]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
