//! Capture synthetic benchmark kernels as WGT1 workload traces.
//!
//! For each requested benchmark, `tracegen` records the generated
//! kernel, launch geometry, and memory behaviour as a versioned WGT1
//! text trace (see `warped-trace`) and writes it to
//! `<out>/<name>.wgt1`. Every capture is parsed straight back and the
//! lowered kernel compared structurally against the generator's — a
//! capture that does not round-trip never reaches disk.
//!
//! With `--verify`, each capture is additionally *replayed*: the trace
//! runs through the experiment engine under every technique (sanitizer
//! armed) and its cycle counts and gating reports are diffed
//! bit-for-bit against the native synthetic runs. This is the
//! round-trip gate `verify.sh` drives.
//!
//! Usage:
//! `tracegen [--out <dir>] [--bench <a,b,...>] [--scale <f>] [--verify]`

use std::path::PathBuf;
use std::process::ExitCode;
use warped_bench::{exit_usage, ArgError};
use warped_gates::{Experiment, Technique};
use warped_trace::{capture, parse_str, CaptureSpec};
use warped_workloads::Benchmark;

const USAGE: &str = "[--out <dir>] [--bench <name,name,...>] [--scale <f in (0,1]>] [--verify]";

/// The default corpus: six benchmarks spanning the paper's workload
/// space — compute-bound (sgemm, mri), memory-bound (lbm, bfs), and
/// barrier-phased (hotspot, nw).
const DEFAULT_BENCHES: [Benchmark; 6] = [
    Benchmark::Hotspot,
    Benchmark::Bfs,
    Benchmark::Sgemm,
    Benchmark::Nw,
    Benchmark::Lbm,
    Benchmark::Mri,
];

struct Args {
    out: PathBuf,
    benches: Vec<Benchmark>,
    scale: f64,
    verify: bool,
}

fn parse_args(args: &[String]) -> Result<Args, ArgError> {
    let mut out = Args {
        out: PathBuf::from("traces"),
        benches: DEFAULT_BENCHES.to_vec(),
        scale: 1.0,
        verify: false,
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, ArgError> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| ArgError::MissingValue(flag.to_owned()))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out.out = value(args, i, "--out")?.into();
                i += 2;
            }
            "--bench" => {
                let v = value(args, i, "--bench")?;
                out.benches = v
                    .split(',')
                    .map(|name| {
                        Benchmark::from_name(name.trim()).ok_or_else(|| ArgError::BadValue {
                            flag: "--bench".to_owned(),
                            value: name.trim().to_owned(),
                            expected: "a benchmark name from the catalog",
                        })
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--scale" => {
                let v = value(args, i, "--scale")?;
                let bad = || ArgError::BadValue {
                    flag: "--scale".to_owned(),
                    value: v.clone(),
                    expected: "a number in (0,1]",
                };
                let scale: f64 = v.parse().map_err(|_| bad())?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(bad());
                }
                out.scale = scale;
                i += 2;
            }
            "--verify" => {
                out.verify = true;
                i += 1;
            }
            other => return Err(ArgError::Unknown(other.to_owned())),
        }
    }
    Ok(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv).unwrap_or_else(|e| exit_usage(&e, USAGE));

    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("tracegen: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    for bench in &args.benches {
        // Capture the *pre-scaled* spec and replay at scale 1.0: spec
        // scaling divides loop trips before the generator splits them
        // across barrier rounds, so scaling a full-size capture is a
        // different workload than capturing a scaled spec.
        let spec = if args.scale < 1.0 {
            bench.spec().scaled(args.scale)
        } else {
            bench.spec()
        };
        let kernel = spec.kernel();
        let text = capture(&CaptureSpec {
            name: spec.name,
            kernel: &kernel,
            total_warps: spec.total_warps,
            block_warps: spec.block_warps,
            stagger: spec.body_len as u32,
            waves: spec.launches,
            l1_hit_rate: spec.l1_hit_rate,
            mem_seed: spec.seed ^ 0xdead_beef,
        });

        // Self-check: parse the capture back and compare the lowered
        // kernel structurally. This can only fail on a tracegen bug,
        // and then it must fail before anything reaches disk.
        let parsed = match parse_str(&text) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("tracegen: {}: capture does not parse: {e}", spec.name);
                failed = true;
                continue;
            }
        };
        if parsed.kernel != kernel {
            eprintln!(
                "tracegen: {}: parsed kernel differs from generated",
                spec.name
            );
            failed = true;
            continue;
        }

        if args.verify && !verify(&spec, &parsed) {
            failed = true;
            continue;
        }

        let path = args.out.join(format!("{}.wgt1", spec.name));
        let tmp = path.with_extension("wgt1.tmp");
        let write = std::fs::write(&tmp, &text).and_then(|()| std::fs::rename(&tmp, &path));
        match write {
            Ok(()) => println!(
                "tracegen: wrote {} ({} bytes, {} instrs{})",
                path.display(),
                text.len(),
                parsed.kernel.len(),
                if args.verify { ", verified" } else { "" }
            ),
            Err(e) => {
                eprintln!("tracegen: cannot write {}: {e}", path.display());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Replays the trace under every technique (sanitizer armed) and diffs
/// cycles and gating reports bit-for-bit against the native runs.
fn verify(spec: &warped_workloads::BenchmarkSpec, trace: &warped_trace::TraceWorkload) -> bool {
    let exp = Experiment::paper_defaults().with_sanitize(true);
    for technique in Technique::ALL {
        let native = exp.run(spec, technique);
        let replay = exp.run_trace(trace, technique);
        if native.report.cycles != replay.report.cycles
            || native.report.stats != replay.report.stats
            || native.report.gating != replay.report.gating
        {
            eprintln!(
                "tracegen: {}/{technique}: replay diverges (native {} cycles, trace {})",
                spec.name, native.report.cycles, replay.report.cycles
            );
            return false;
        }
    }
    true
}
