//! Diagnostic probe #3: isolate GATES' scheduling cost from gating
//! interactions by running GATES with gating disabled (AlwaysOn).

use warped_bench::{print_table, scale_from_args};
use warped_gates::{GatesScheduler, Technique};
use warped_sim::{AlwaysOn, Sm, TwoLevelScheduler};
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let spec = b.spec().scaled(scale);
        let base = Sm::new(
            spec.sm_config(),
            spec.launch(),
            Box::new(TwoLevelScheduler::new()),
            Box::new(AlwaysOn::new()),
        )
        .run();
        let gates = Sm::new(
            spec.sm_config(),
            spec.launch(),
            Box::new(GatesScheduler::with_max_hold(Technique::GATES_MAX_HOLD)),
            Box::new(AlwaysOn::new()),
        )
        .run();
        let gates_unbounded = Sm::new(
            spec.sm_config(),
            spec.launch(),
            Box::new(GatesScheduler::new()),
            Box::new(AlwaysOn::new()),
        )
        .run();
        rows.push((
            b.name().to_owned(),
            vec![
                base.stats.cycles as f64 / gates.stats.cycles as f64,
                base.stats.cycles as f64 / gates_unbounded.stats.cycles as f64,
            ],
        ));
    }
    print_table(
        "probe3: GATES scheduling cost, no gating (1.0 = two-level)",
        &["hold64", "unbounded"],
        &rows,
    );
}
