//! Diagnostic probe #4: cycle-accounting for one benchmark across all
//! techniques — issue-slot usage, wakeups, critical wakeups, gate
//! events. Not a paper figure.

use warped_bench::{print_table, scale_from_args};
use warped_gates::{Experiment, Technique};
use warped_isa::UnitType;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let exp = Experiment::paper_defaults().with_scale(scale);
    let bench = std::env::var("BENCH").unwrap_or_else(|_| "hotspot".to_owned());
    let b = Benchmark::from_name(&bench).expect("unknown benchmark");

    let mut rows = Vec::new();
    for t in Technique::ALL {
        let run = exp.run(&b.spec(), t);
        let int = run.gating_of(UnitType::Int);
        let fp = run.gating_of(UnitType::Fp);
        rows.push((
            t.name().to_owned(),
            vec![
                run.cycles as f64,
                run.stats.idle_issue_cycles as f64,
                run.stats.dual_issue_cycles as f64,
                (int.wakeups + fp.wakeups) as f64,
                (int.critical_wakeups + fp.critical_wakeups) as f64,
                (int.gate_events + fp.gate_events) as f64,
                (int.wakeup_cycles + fp.wakeup_cycles) as f64,
                (int.demand_blocked_cycles + fp.demand_blocked_cycles) as f64,
            ],
        ));
    }
    print_table(
        &format!("probe4: {bench} cycle accounting"),
        &[
            "cycles", "idleIss", "dualIss", "wakes", "critWk", "gates", "wakeCyc", "dmdBlk",
        ],
        &rows,
    );
}
