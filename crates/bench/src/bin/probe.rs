//! Diagnostic probe: per-benchmark pipeline utilisation, idle-period
//! structure, and occupancy under the baseline scheduler. Not a paper
//! figure — a model-calibration aid.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_isa::UnitType;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let grid = RunGrid::collect(scale, &[Technique::Baseline, Technique::ConvPg]);

    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let run = grid.get(b, Technique::Baseline);
        let s = &run.stats;
        let int_busy = 1.0 - s.idle_fraction(UnitType::Int);
        let fp_busy = 1.0 - s.idle_fraction(UnitType::Fp);
        let hist_int = run.idle_histogram(UnitType::Int);
        let (w, n, l) = hist_int.region_shares(5, 14);
        let conv = grid.get(b, Technique::ConvPg);
        let gated_share =
            conv.gating_of(UnitType::Int).gated_cycles as f64 / (2.0 * conv.cycles as f64);
        rows.push((
            b.name().to_owned(),
            vec![
                s.ipc(),
                s.avg_active_warps(),
                f64::from(s.active_warps_max),
                int_busy,
                fp_busy,
                w,
                n,
                l,
                gated_share,
            ],
        ));
    }
    print_table(
        "probe: baseline structure",
        &[
            "IPC", "avgActv", "maxActv", "INTbusy", "FPbusy", "id<=5", "mid", "long", "gatedShr",
        ],
        &rows,
    );
}
