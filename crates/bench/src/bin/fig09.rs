//! Figure 9: static energy savings of the integer (9a) and floating
//! point (9b) units, per benchmark and averaged, for the five gated
//! techniques, normalized to a no-power-gating baseline.
//!
//! Paper reference points: ConvPG saves 20.1% (INT) / 31.4% (FP);
//! Warped Gates saves 31.6% (INT) / 46.5% (FP) — about 1.5× more.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_isa::UnitType;
use warped_power::PowerParams;
use warped_sim::summary::mean;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let grid = RunGrid::collect(scale, &Technique::ALL);
    let power = PowerParams::default();

    for (unit, figure) in [(UnitType::Int, "9a"), (UnitType::Fp, "9b")] {
        let mut rows = Vec::new();
        let mut sums: Vec<Vec<f64>> = vec![Vec::new(); Technique::GATED.len()];
        for b in Benchmark::ALL {
            // Figure 9b excludes integer-only benchmarks.
            if unit == UnitType::Fp && b.spec().mix.is_integer_only() {
                continue;
            }
            let baseline = grid.get(b, Technique::Baseline);
            let mut vals = Vec::new();
            for (i, t) in Technique::GATED.into_iter().enumerate() {
                let run = grid.get(b, t);
                let s = run.static_savings(baseline, unit, &power).fraction();
                vals.push(s);
                sums[i].push(s);
            }
            rows.push((b.name().to_owned(), vals));
        }
        let avg: Vec<f64> = sums.iter().map(|v| mean(v)).collect();
        rows.push(("average".to_owned(), avg));
        print_table(
            &format!("Figure {figure}: {unit} static energy savings (fraction)"),
            &["ConvPG", "GATES", "NaiveBO", "CoordBO", "WarpedGates"],
            &rows,
        );
    }
}
