//! Gating-granularity study: whole-SM coarse gating (the related-work
//! approach of Wang et al.) vs the paper's per-execution-unit schemes.
//!
//! Quantifies the paper's motivating argument against coarse gating:
//! individual unit types idle long and often even while the SM as a
//! whole stays busy, so SM-level gating leaves most of the static
//! energy on the table.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_gating::{GatingParams, SmCoarseGating};
use warped_isa::UnitType;
use warped_power::PowerParams;
use warped_sim::parallel::par_map;
use warped_sim::summary::{geomean, mean};
use warped_sim::Sm;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let power = PowerParams::default();
    // The per-unit schemes are ordinary grid cells; the SM-coarse runs
    // use a gating controller outside the Technique enum, so they fan
    // over the same pool via par_map.
    let grid = RunGrid::collect(
        scale,
        &[
            Technique::Baseline,
            Technique::ConvPg,
            Technique::WarpedGates,
        ],
    );
    let coarse_outs = par_map(Benchmark::ALL.len(), warped_bench::workers_or_exit(), |i| {
        let b = Benchmark::ALL[i];
        let spec = b.spec().scaled(scale);
        let out = Sm::new(
            spec.sm_config(),
            spec.launch(),
            Technique::Baseline.make_scheduler(),
            Box::new(SmCoarseGating::new(GatingParams::default())),
        )
        .run();
        assert!(!out.timed_out, "{b} coarse run timed out");
        out
    });

    let mut rows = Vec::new();
    let mut coarse_savings = Vec::new();
    let mut conv_savings = Vec::new();
    let mut warped_savings = Vec::new();
    let mut coarse_perf = Vec::new();

    for (b, coarse) in Benchmark::ALL.into_iter().zip(coarse_outs) {
        let baseline = grid.get(b, Technique::Baseline);
        let conv = grid.get(b, Technique::ConvPg);
        let warped = grid.get(b, Technique::WarpedGates);

        let baseline_static = 2.0 * baseline.cycles as f64;
        let coarse_int = coarse
            .gating
            .sum_over(warped_sim::DomainId::domains_of(UnitType::Int));
        let coarse_spent = (2.0 * coarse.stats.cycles as f64 - coarse_int.gated_cycles as f64)
            + coarse_int.gate_events as f64 * power.gate_event_overhead(14);
        let coarse_frac = 1.0 - coarse_spent / baseline_static;

        let conv_frac = conv.int_static_savings(baseline).fraction();
        let warped_frac = warped.int_static_savings(baseline).fraction();
        coarse_savings.push(coarse_frac);
        conv_savings.push(conv_frac);
        warped_savings.push(warped_frac);
        coarse_perf.push(baseline.cycles as f64 / coarse.stats.cycles as f64);
        rows.push((
            b.name().to_owned(),
            vec![coarse_frac, conv_frac, warped_frac],
        ));
    }
    rows.push((
        "average".to_owned(),
        vec![
            mean(&coarse_savings),
            mean(&conv_savings),
            mean(&warped_savings),
        ],
    ));
    print_table(
        "Gating granularity: INT static energy savings",
        &["SM-Coarse", "ConvPG", "WarpedGates"],
        &rows,
    );
    println!(
        "\nSM-coarse performance geomean: {:.3} (it only gates a fully idle SM,\n\
         so it is nearly free — and nearly useless on busy SMs)",
        geomean(&coarse_perf)
    );
}
