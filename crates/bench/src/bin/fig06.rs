//! Figure 6: correlation between critical wakeups per 1000 cycles and
//! normalized runtime, across static idle-detect values 0..=10 under
//! Blackout power gating.
//!
//! Paper reference points: 11 of the 18 benchmarks show strong
//! correlation (Pearson r > 0.9); the benchmarks with low |r| are those
//! that never lose performance to Blackout in the first place, so the
//! idle-detect window neither helps nor hurts them.

use warped_bench::{print_table, scale_from_args};
use warped_gates::{CoordinatedBlackoutPolicy, Experiment, GatesScheduler, Technique};
use warped_gating::{Controller, GatingParams, StaticIdleDetect};
use warped_isa::UnitType;
use warped_sim::summary::pearson;
use warped_sim::Sm;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let spec = b.spec().scaled(scale);
        // Baseline runtime for normalisation.
        let baseline = Experiment::paper_defaults()
            .with_scale(1.0)
            .run(&spec, Technique::Baseline);

        let mut wakeups_per_kcycle = Vec::new();
        let mut normalized_runtime = Vec::new();
        for idle_detect in 0..=10u32 {
            let params = GatingParams::with_idle_detect(idle_detect);
            let sm = Sm::new(
                spec.sm_config(),
                spec.launch(),
                Box::new(GatesScheduler::with_max_hold(Technique::GATES_MAX_HOLD)),
                Box::new(Controller::new(
                    params,
                    CoordinatedBlackoutPolicy::new(),
                    StaticIdleDetect::new(),
                )),
            );
            let out = sm.run();
            assert!(!out.timed_out, "{b} timed out at idle-detect {idle_detect}");
            let crit: u64 = [UnitType::Int, UnitType::Fp]
                .iter()
                .flat_map(|u| warped_sim::DomainId::domains_of(*u))
                .map(|d| out.gating.domain(*d).critical_wakeups)
                .sum();
            wakeups_per_kcycle.push(crit as f64 * 1000.0 / out.stats.cycles as f64);
            normalized_runtime.push(out.stats.cycles as f64 / baseline.cycles as f64);
        }
        let r = pearson(&wakeups_per_kcycle, &normalized_runtime);
        let max_wk = wakeups_per_kcycle.iter().cloned().fold(0.0, f64::max);
        let max_rt = normalized_runtime.iter().cloned().fold(0.0, f64::max);
        rows.push((b.name().to_owned(), vec![r, max_wk, max_rt]));
        eprintln!("{b}: r={r:+.2}");
    }
    rows.sort_by(|a, b| b.1[0].partial_cmp(&a.1[0]).expect("finite r"));
    print_table(
        "Figure 6: critical-wakeup / runtime correlation over idle-detect 0..=10",
        &["Pearson r", "maxWk/kcyc", "maxNormRT"],
        &rows,
    );
    let strong = rows.iter().filter(|(_, v)| v[0] > 0.9).count();
    println!("\nbenchmarks with r > 0.9: {strong} (paper: 11)");
}
