//! Figure 6: correlation between critical wakeups per 1000 cycles and
//! normalized runtime, across static idle-detect values 0..=10 under
//! Blackout power gating.
//!
//! Paper reference points: 11 of the 18 benchmarks show strong
//! correlation (Pearson r > 0.9); the benchmarks with low |r| are those
//! that never lose performance to Blackout in the first place, so the
//! idle-detect window neither helps nor hurts them.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::{Experiment, Technique};
use warped_gating::GatingParams;
use warped_isa::UnitType;
use warped_sim::parallel::par_map;
use warped_sim::summary::pearson;
use warped_workloads::Benchmark;

const IDLE_DETECTS: usize = 11; // static windows 0..=10

fn main() {
    let scale = scale_from_args();
    // Baseline runtimes for normalisation, fanned across the pool.
    let baselines = RunGrid::collect(scale, &[Technique::Baseline]);

    // The sweep varies the gating parameters per point, so it cannot be
    // one `run_grid` call (a grid shares one Experiment); instead the
    // 18 × 11 (benchmark, idle-detect) points go straight onto the
    // worker pool.
    let n_points = Benchmark::ALL.len() * IDLE_DETECTS;
    eprintln!(
        "running {n_points} sweep points on {} workers",
        warped_bench::workers_or_exit()
    );
    let points = par_map(n_points, warped_bench::workers_or_exit(), |i| {
        let b = Benchmark::ALL[i / IDLE_DETECTS];
        let idle_detect = (i % IDLE_DETECTS) as u32;
        let params = GatingParams::with_idle_detect(idle_detect);
        let run = Experiment::new(params)
            .with_scale(scale)
            .run(&b.spec(), Technique::CoordinatedBlackout);
        assert!(!run.timed_out, "{b} timed out at idle-detect {idle_detect}");
        let crit = run.gating_of(UnitType::Int).critical_wakeups
            + run.gating_of(UnitType::Fp).critical_wakeups;
        let baseline = baselines.get(b, Technique::Baseline);
        (
            crit as f64 * 1000.0 / run.cycles as f64,
            run.cycles as f64 / baseline.cycles as f64,
        )
    });

    let mut rows = Vec::new();
    for (bi, b) in Benchmark::ALL.iter().enumerate() {
        let series = &points[bi * IDLE_DETECTS..(bi + 1) * IDLE_DETECTS];
        let wakeups_per_kcycle: Vec<f64> = series.iter().map(|p| p.0).collect();
        let normalized_runtime: Vec<f64> = series.iter().map(|p| p.1).collect();
        let r = pearson(&wakeups_per_kcycle, &normalized_runtime);
        let max_wk = wakeups_per_kcycle.iter().cloned().fold(0.0, f64::max);
        let max_rt = normalized_runtime.iter().cloned().fold(0.0, f64::max);
        rows.push((b.name().to_owned(), vec![r, max_wk, max_rt]));
        eprintln!("{b}: r={r:+.2}");
    }
    rows.sort_by(|a, b| b.1[0].partial_cmp(&a.1[0]).expect("finite r"));
    print_table(
        "Figure 6: critical-wakeup / runtime correlation over idle-detect 0..=10",
        &["Pearson r", "maxWk/kcyc", "maxNormRT"],
        &rows,
    );
    let strong = rows.iter().filter(|(_, v)| v[0] > 0.9).count();
    println!("\nbenchmarks with r > 0.9: {strong} (paper: 11)");
}
