//! Figure 8: how the proposed techniques increase power gating
//! opportunity for the integer units —
//! (a) fraction of idle cycles normalized to the two-level baseline,
//! (b) net compensated-cycle share (negative bars = more uncompensated
//!     than compensated gated time),
//! (c) wakeups normalized to conventional power gating.
//!
//! Paper reference points: GATES extracts ~3% more idle cycles;
//! compensated-cycle geomean rises from 20.9% (ConvPG) through 22.6%
//! (GATES) to 33.5% (Warped Gates); Coordinated Blackout cuts wakeups
//! 26% and Warped Gates 46% below conventional gating.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_isa::UnitType;
use warped_sim::summary::{geomean, mean};
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let grid = RunGrid::collect(scale, &Technique::ALL);
    let unit = UnitType::Int;

    // 8a: normalized fraction of idle cycles.
    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let techs_8a = [
        Technique::Gates,
        Technique::CoordinatedBlackout,
        Technique::WarpedGates,
    ];
    for b in Benchmark::ALL {
        let base = grid.get(b, Technique::Baseline).idle_fraction(unit);
        let vals: Vec<f64> = techs_8a
            .iter()
            .map(|t| grid.get(b, *t).idle_fraction(unit) / base)
            .collect();
        for (s, v) in series.iter_mut().zip(&vals) {
            s.push(*v);
        }
        rows.push((b.name().to_owned(), vals));
    }
    rows.push((
        "geomean".to_owned(),
        series.iter().map(|s| geomean(s)).collect(),
    ));
    print_table(
        "Figure 8a: INT idle-cycle fraction normalized to two-level baseline",
        &["GATES", "CoordBO", "WarpedGates"],
        &rows,
    );

    // 8b: net compensated-cycle share.
    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let techs_8b = [Technique::ConvPg, Technique::Gates, Technique::WarpedGates];
    for b in Benchmark::ALL {
        let vals: Vec<f64> = techs_8b
            .iter()
            .map(|t| grid.get(b, *t).net_compensated_share(unit))
            .collect();
        for (s, v) in series.iter_mut().zip(&vals) {
            s.push(*v);
        }
        rows.push((b.name().to_owned(), vals));
    }
    rows.push(("mean".to_owned(), series.iter().map(|s| mean(s)).collect()));
    print_table(
        "Figure 8b: net compensated cycles (compensated − uncompensated, share of unit-cycles)",
        &["ConvPG", "GATES", "WarpedGates"],
        &rows,
    );

    // 8c: wakeups normalized to ConvPG.
    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for b in Benchmark::ALL {
        let conv = grid.get(b, Technique::ConvPg).wakeups(unit).max(1) as f64;
        let vals: Vec<f64> = techs_8a
            .iter()
            .map(|t| (grid.get(b, *t).wakeups(unit).max(1)) as f64 / conv)
            .collect();
        for (s, v) in series.iter_mut().zip(&vals) {
            s.push(*v);
        }
        rows.push((b.name().to_owned(), vals));
    }
    rows.push((
        "geomean".to_owned(),
        series.iter().map(|s| geomean(s)).collect(),
    ));
    print_table(
        "Figure 8c: wakeups normalized to conventional power gating",
        &["GATES", "CoordBO", "WarpedGates"],
        &rows,
    );
}
