//! Full-grid sweep: every benchmark × every technique through the
//! fault-tolerant engine ([`warped_bench::sweep`]).
//!
//! Each completed cell is journaled to `<out-dir>/sweep_journal.jsonl`
//! the moment it lands, so an interrupted sweep picks up with
//! `--resume` and produces a bit-identical `<out-dir>/bench_grid.json`.
//! A cell that panics or trips the `--timeout-secs` watchdog is
//! isolated: the rest of the grid completes, the failure lands in
//! `<out-dir>/sweep_failures.json`, and the exit code is 1.
//!
//! Usage:
//! `sweep [--scale <f>] [--jobs <n>] [--core <clock>] [--resume] [--sanitize]
//!        [--out-dir <dir>] [--timeout-secs <s>] [--chaos <i,j,...>]`

use std::process::ExitCode;
use warped_bench::sweep::{self, SweepConfig};
use warped_bench::{exit_usage, workers_or_exit, ArgError};
use warped_gates::CoreClock;

const USAGE: &str = "[--scale <f in (0,1]>] [--jobs <n >= 1>] \
[--core event-queue|fast-forward|stepped] [--resume] [--sanitize] \
[--mem-hierarchy] [--out-dir <dir>] [--timeout-secs <s > 0>] \
[--chaos <i,j,...>] [--trace-cell <i>] [--trace-dir <dir of *.wgt1>]";

fn parse_args(args: &[String]) -> Result<SweepConfig, ArgError> {
    let mut config = SweepConfig::new("results", workers_or_exit());
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, ArgError> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| ArgError::MissingValue(flag.to_owned()))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = value(args, i, "--scale")?;
                let bad = || ArgError::BadValue {
                    flag: "--scale".to_owned(),
                    value: v.clone(),
                    expected: "a number in (0,1]",
                };
                let scale: f64 = v.parse().map_err(|_| bad())?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(bad());
                }
                config.scale = scale;
                i += 2;
            }
            "--jobs" => {
                let v = value(args, i, "--jobs")?;
                let workers: usize = v.parse().map_err(|_| ArgError::BadValue {
                    flag: "--jobs".to_owned(),
                    value: v.clone(),
                    expected: "a positive integer",
                })?;
                if workers == 0 {
                    return Err(ArgError::BadValue {
                        flag: "--jobs".to_owned(),
                        value: v,
                        expected: "a positive integer",
                    });
                }
                config.workers = workers;
                i += 2;
            }
            "--core" => {
                let v = value(args, i, "--core")?;
                config.core = CoreClock::parse(&v).map_err(|_| ArgError::BadValue {
                    flag: "--core".to_owned(),
                    value: v,
                    expected: "event-queue, fast-forward, or stepped",
                })?;
                i += 2;
            }
            "--resume" => {
                config.resume = true;
                i += 1;
            }
            "--sanitize" => {
                config.sanitize = true;
                i += 1;
            }
            "--mem-hierarchy" => {
                config.mem_hierarchy = Some(warped_sim::HierarchyConfig::default());
                i += 1;
            }
            "--out-dir" => {
                config.out_dir = value(args, i, "--out-dir")?.into();
                i += 2;
            }
            "--timeout-secs" => {
                let v = value(args, i, "--timeout-secs")?;
                let secs: f64 = v.parse().map_err(|_| ArgError::BadValue {
                    flag: "--timeout-secs".to_owned(),
                    value: v.clone(),
                    expected: "a positive number of seconds",
                })?;
                if secs <= 0.0 || !secs.is_finite() {
                    return Err(ArgError::BadValue {
                        flag: "--timeout-secs".to_owned(),
                        value: v,
                        expected: "a positive number of seconds",
                    });
                }
                config.job_timeout = Some(std::time::Duration::from_secs_f64(secs));
                i += 2;
            }
            "--trace-cell" => {
                let v = value(args, i, "--trace-cell")?;
                let cell: usize = v.parse().map_err(|_| ArgError::BadValue {
                    flag: "--trace-cell".to_owned(),
                    value: v.clone(),
                    expected: "a grid index below 108",
                })?;
                config.trace_cell = Some(cell);
                i += 2;
            }
            "--trace-dir" => {
                config.trace_dir = Some(value(args, i, "--trace-dir")?.into());
                i += 2;
            }
            "--chaos" => {
                let v = value(args, i, "--chaos")?;
                config.chaos = v
                    .split(',')
                    .map(|s| {
                        s.trim().parse::<usize>().map_err(|_| ArgError::BadValue {
                            flag: "--chaos".to_owned(),
                            value: v.clone(),
                            expected: "comma-separated grid indices",
                        })
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            other => return Err(ArgError::Unknown(other.to_owned())),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = parse_args(&args).unwrap_or_else(|e| exit_usage(&e, USAGE));
    if config.chaos.iter().any(|&i| i >= 108) {
        exit_usage(
            &ArgError::BadValue {
                flag: "--chaos".to_owned(),
                value: format!("{:?}", config.chaos),
                expected: "indices below 108 (18 benchmarks x 6 techniques)",
            },
            USAGE,
        );
    }
    if config.trace_cell.is_some_and(|i| i >= 108) {
        exit_usage(
            &ArgError::BadValue {
                flag: "--trace-cell".to_owned(),
                value: format!("{}", config.trace_cell.unwrap()),
                expected: "a grid index below 108 (18 benchmarks x 6 techniques)",
            },
            USAGE,
        );
    }

    println!(
        "sweep: full grid at scale {}, {} workers, {} core{}{}{}",
        config.scale,
        config.workers,
        config.core.name(),
        if config.sanitize { ", sanitized" } else { "" },
        if config.resume { ", resuming" } else { "" },
        if config.mem_hierarchy.is_some() {
            ", L1/L2 hierarchy"
        } else {
            ""
        },
    );

    let summary = match sweep::run(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sweep: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "sweep: {} cells ({} reused from journal, {} run), {} failed",
        summary.total,
        summary.reused,
        summary.ran,
        summary.failures.len()
    );
    println!("wrote {}", config.out_dir.join("bench_grid.json").display());
    println!("wrote {}", sweep::wall_path(&config.out_dir).display());
    if let Some(cell) = config.trace_cell {
        match sweep::trace_cell(&config, cell) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("sweep: cell trace failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(dir) = &config.trace_dir {
        match sweep::run_traces(&config, dir) {
            Ok(cells) => {
                println!(
                    "sweep: {cells} trace cells, wrote {}",
                    sweep::trace_grid_path(&config.out_dir).display()
                );
            }
            Err(e) => {
                eprintln!("sweep: trace corpus failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if summary.ok() {
        ExitCode::SUCCESS
    } else {
        for f in &summary.failures {
            eprintln!("sweep: cell {} ({}) failed: {}", f.index, f.label, f.reason);
        }
        eprintln!(
            "sweep: failure manifest at {}",
            sweep::manifest_path(&config.out_dir).display()
        );
        ExitCode::FAILURE
    }
}
