//! Full-grid sweep: every benchmark × every technique, fanned across
//! the worker pool, with per-job wall-clock timing.
//!
//! This is the perf-trajectory harness for the parallel experiment
//! engine: it prints each job's own runtime, the total wall-clock of the
//! whole grid, and the aggregate speedup (sum of per-job times over
//! wall-clock — the factor the pool actually bought). The table also
//! lands in `results/bench_grid.json` for regression tracking.
//!
//! Usage: `sweep [--scale <f>] [--jobs <n>]` — `--jobs` overrides the
//! `WARPED_JOBS` env var and the all-cores default.

use std::time::Instant;
use warped_bench::write_json;
use warped_gates::runner;
use warped_gates::Experiment;
use warped_sim::parallel::worker_count;

fn usage() -> ! {
    panic!("usage: sweep [--scale <f in (0,1]>] [--jobs <n >= 1>]")
}

fn parse_args() -> (f64, usize) {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 1.0;
    let mut jobs = worker_count();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                scale = v.parse().unwrap_or_else(|_| usage());
                if !(scale > 0.0 && scale <= 1.0) {
                    usage();
                }
                i += 2;
            }
            "--jobs" => {
                let v = args.get(i + 1).unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
                i += 2;
            }
            _ => usage(),
        }
    }
    (scale, jobs)
}

fn main() {
    let (scale, workers) = parse_args();
    let experiment = Experiment::paper_defaults().with_scale(scale);
    let grid = runner::full_grid();
    println!(
        "sweep: {} jobs (18 benchmarks x 6 techniques), scale {scale}, {workers} workers",
        grid.len()
    );

    let wall_start = Instant::now();
    let timed = runner::run_grid_timed(&experiment, &grid, workers);
    let wall = wall_start.elapsed();

    let mut rows = Vec::new();
    let mut cpu_total = 0.0f64;
    let mut ff_total = 0u64;
    for ((spec, technique), t) in grid.iter().zip(&timed) {
        let secs = t.elapsed.as_secs_f64();
        cpu_total += secs;
        let ff = t.run.stats.fast_forwarded_cycles;
        ff_total += ff;
        assert!(!t.run.timed_out, "{}/{technique} timed out", spec.name);
        println!(
            "  {:<14} {:<22} {:>12} cycles  {:>9.3}s  {:>12} skipped",
            spec.name,
            technique.name(),
            t.run.cycles,
            secs,
            ff
        );
        rows.push((
            format!("{}/{}", spec.name, technique.name()),
            vec![t.run.cycles as f64, secs, ff as f64],
        ));
    }

    // Summed per-job time over wall-clock. Per-job clocks include time
    // a descheduled worker spends waiting for a core, so this equals
    // the true core speedup only when workers <= physical cores; above
    // that it measures pool concurrency.
    let speedup = cpu_total / wall.as_secs_f64();
    println!(
        "\ntotal: {:.3}s wall-clock, {:.3}s summed job time, {:.2}x grid speedup on {} workers, {ff_total} cycles fast-forwarded",
        wall.as_secs_f64(),
        cpu_total,
        speedup,
        workers
    );
    rows.push((
        "TOTAL (wall_s, cpu_s, ff_cycles)".to_owned(),
        vec![wall.as_secs_f64(), cpu_total, ff_total as f64],
    ));

    match write_json(
        "results",
        "bench grid",
        &["cycles", "seconds", "ff_cycles"],
        &rows,
    ) {
        Ok(()) => println!("wrote results/bench_grid.json"),
        Err(e) => eprintln!("warning: could not write results/bench_grid.json: {e}"),
    }
}
