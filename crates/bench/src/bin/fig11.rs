//! Figure 11: sensitivity of energy savings and performance to the
//! power-gating circuit parameters — (a) break-even time ∈ {9, 14, 19}
//! and (b) wakeup delay ∈ {3, 6, 9} — for conventional power gating vs
//! Warped Gates, averaged over the benchmark suite.
//!
//! Paper reference points: Warped Gates beats ConvPG at every
//! break-even time and the gap widens as BET grows (at BET 19, ConvPG
//! keeps only 17% of INT static energy savings vs 33% for Warped
//! Gates). At a 9-cycle wakeup delay ConvPG collapses to 6%/10%
//! (INT/FP) savings with ~10% performance loss, while Warped Gates
//! sustains its savings with ~3% loss.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::{Experiment, Technique};
use warped_gating::GatingParams;

use warped_sim::summary::{geomean, mean};
use warped_workloads::Benchmark;

fn sweep(label: &str, scale: f64, params_of: impl Fn(u32) -> GatingParams, values: &[u32]) {
    let mut rows = Vec::new();
    for &v in values {
        // One grid per parameter value: each cell is an independent
        // job, so the whole 18 × 3 slice fans across the worker pool.
        let experiment = Experiment::new(params_of(v)).with_scale(scale);
        let grid = RunGrid::collect_with(
            experiment,
            &[
                Technique::Baseline,
                Technique::ConvPg,
                Technique::WarpedGates,
            ],
        );
        for technique in [Technique::ConvPg, Technique::WarpedGates] {
            let mut int_savings = Vec::new();
            let mut fp_savings = Vec::new();
            let mut perf = Vec::new();
            for b in Benchmark::ALL {
                let baseline = grid.get(b, Technique::Baseline);
                let run = grid.get(b, technique);
                int_savings.push(run.int_static_savings(baseline).fraction());
                if !b.spec().mix.is_integer_only() {
                    fp_savings.push(run.fp_static_savings(baseline).fraction());
                }
                perf.push(run.normalized_performance(baseline));
            }
            rows.push((
                format!("{label}={v} {technique}"),
                vec![mean(&int_savings), mean(&fp_savings), geomean(&perf)],
            ));
            eprintln!("done {label}={v} {technique}");
        }
    }
    print_table(
        &format!("Figure 11: sensitivity to {label}"),
        &["IntSavings", "FpSavings", "Perf"],
        &rows,
    );
}

fn main() {
    let scale = scale_from_args();
    sweep(
        "BET",
        scale,
        |bet| GatingParams {
            bet,
            ..GatingParams::default()
        },
        &[9, 14, 19],
    );
    sweep(
        "wakeup",
        scale,
        |wakeup_delay| GatingParams {
            wakeup_delay,
            ..GatingParams::default()
        },
        &[3, 6, 9],
    );
}
