//! Diagnostic probe #2: why does GATES differ from ConvPG per
//! benchmark? Compares runtime, wakeups, premature wakeups, and gated
//! cycles for the INT unit. Not a paper figure.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_isa::UnitType;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let grid = RunGrid::collect(
        scale,
        &[Technique::Baseline, Technique::ConvPg, Technique::Gates],
    );

    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let base = grid.get(b, Technique::Baseline);
        let conv = grid.get(b, Technique::ConvPg);
        let gates = grid.get(b, Technique::Gates);
        let gi = |r: &warped_gates::TechniqueRun| {
            let g = r.gating_of(UnitType::Int);
            (
                g.wakeups as f64,
                g.premature_wakeups as f64,
                g.gated_cycles as f64 / (2.0 * r.cycles as f64),
            )
        };
        let (cw, cp, cg) = gi(conv);
        let (gw, gp, gg) = gi(gates);
        rows.push((
            b.name().to_owned(),
            vec![
                conv.normalized_performance(base),
                gates.normalized_performance(base),
                cw,
                gw,
                cp,
                gp,
                cg,
                gg,
            ],
        ));
    }
    print_table(
        "probe2: ConvPG vs GATES (INT unit)",
        &[
            "perfConv",
            "perfGATES",
            "wkConv",
            "wkGATES",
            "preConv",
            "preGATES",
            "gatedConv",
            "gatedGATES",
        ],
        &rows,
    );
}
