//! Issue-width sensitivity: the paper motivates its clustered-Blackout
//! design with the trend toward wider GPUs (Kepler's six SPs, GCN's
//! four SIMDs). Our SM keeps two SP clusters but the front-end issue
//! width is configurable; widening it increases type interspersing in
//! the baseline — exactly the effect that makes gating-aware
//! scheduling matter more on wider machines.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::{Experiment, Technique};
use warped_isa::UnitType;
use warped_power::PowerParams;
use warped_sim::summary::{geomean, mean};
use warped_sim::DomainLayout;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args().min(0.3);
    let power = PowerParams::default();
    let mut rows = Vec::new();

    for width in [1usize, 2, 4] {
        // Same Fermi clusters, overridden front-end width; the 18 × 3
        // grid for this width fans across the worker pool.
        let exp = Experiment::paper_defaults()
            .with_scale(scale)
            .with_architecture(DomainLayout::fermi(), Some(width));
        let grid = RunGrid::collect_with(
            exp,
            &[
                Technique::Baseline,
                Technique::ConvPg,
                Technique::WarpedGates,
            ],
        );
        for technique in [Technique::ConvPg, Technique::WarpedGates] {
            let mut savings = Vec::new();
            let mut perf = Vec::new();
            for b in Benchmark::ALL {
                let baseline = grid.get(b, Technique::Baseline);
                let run = grid.get(b, technique);
                let baseline_static = 2.0 * baseline.cycles as f64;
                let g = run
                    .gating
                    .sum_over(warped_sim::DomainId::domains_of(UnitType::Int));
                let spent = (2.0 * run.cycles as f64 - g.gated_cycles as f64)
                    + g.gate_events as f64 * power.gate_event_overhead(14);
                savings.push(1.0 - spent / baseline_static);
                perf.push(baseline.cycles as f64 / run.cycles as f64);
            }
            rows.push((
                format!("width={width} {technique}"),
                vec![mean(&savings), geomean(&perf)],
            ));
            eprintln!("done width={width} {technique}");
        }
    }
    print_table(
        "Issue-width sensitivity (INT savings / perf)",
        &["IntSavings", "PerfGeomean"],
        &rows,
    );
}
