//! Issue-width sensitivity: the paper motivates its clustered-Blackout
//! design with the trend toward wider GPUs (Kepler's six SPs, GCN's
//! four SIMDs). Our SM keeps two SP clusters but the front-end issue
//! width is configurable; widening it increases type interspersing in
//! the baseline — exactly the effect that makes gating-aware
//! scheduling matter more on wider machines.

use warped_bench::{print_table, scale_from_args};
use warped_gates::Technique;
use warped_gating::GatingParams;
use warped_isa::UnitType;
use warped_power::PowerParams;
use warped_sim::summary::{geomean, mean};
use warped_sim::Sm;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args().min(0.3);
    let power = PowerParams::default();
    let mut rows = Vec::new();

    for width in [1usize, 2, 4] {
        for technique in [Technique::ConvPg, Technique::WarpedGates] {
            let mut savings = Vec::new();
            let mut perf = Vec::new();
            for b in Benchmark::ALL {
                let spec = b.spec().scaled(scale);
                let mut cfg = spec.sm_config();
                cfg.issue_width = width;
                let run_one = |t: Technique| {
                    let out = Sm::new(
                        cfg.clone(),
                        spec.launch(),
                        t.make_scheduler(),
                        t.make_gating(GatingParams::default()),
                    )
                    .run();
                    assert!(!out.timed_out, "{b} timed out at width {width}");
                    out
                };
                let baseline = run_one(Technique::Baseline);
                let run = run_one(technique);
                let baseline_static = 2.0 * baseline.stats.cycles as f64;
                let g = run
                    .gating
                    .sum_over(warped_sim::DomainId::domains_of(UnitType::Int));
                let spent = (2.0 * run.stats.cycles as f64 - g.gated_cycles as f64)
                    + g.gate_events as f64 * power.gate_event_overhead(14);
                savings.push(1.0 - spent / baseline_static);
                perf.push(baseline.stats.cycles as f64 / run.stats.cycles as f64);
            }
            rows.push((
                format!("width={width} {technique}"),
                vec![mean(&savings), geomean(&perf)],
            ));
            eprintln!("done width={width} {technique}");
        }
    }
    print_table(
        "Issue-width sensitivity (INT savings / perf)",
        &["IntSavings", "PerfGeomean"],
        &rows,
    );
}
