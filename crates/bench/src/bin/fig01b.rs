//! Figure 1b: normalized energy breakdown (dynamic / power-gating
//! overhead / static) of the integer and floating point units, for the
//! no-gating baseline and conventional power gating, averaged over the
//! benchmark suite.
//!
//! Paper reference points: in the baseline, static energy is ~50% of
//! INT unit energy and >90% of FP unit energy; after conventional power
//! gating, static still accounts for ~31% (INT) / ~61% (FP) and the
//! gating overhead itself is ~11% / ~29%.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_isa::UnitType;
use warped_power::PowerParams;
use warped_sim::summary::mean;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let grid = RunGrid::collect(scale, &[Technique::Baseline, Technique::ConvPg]);
    let power = PowerParams::default();

    let mut rows = Vec::new();
    for unit in [UnitType::Int, UnitType::Fp] {
        for technique in [Technique::Baseline, Technique::ConvPg] {
            let mut dyns = Vec::new();
            let mut ovhs = Vec::new();
            let mut stats = Vec::new();
            for b in Benchmark::ALL {
                if unit == UnitType::Fp && b.spec().mix.is_integer_only() {
                    continue;
                }
                let baseline_total = grid
                    .get(b, Technique::Baseline)
                    .energy(unit, &power)
                    .total();
                let e = grid.get(b, technique).energy(unit, &power);
                let (d, o, s) = e.normalized_to(baseline_total);
                dyns.push(d);
                ovhs.push(o);
                stats.push(s);
            }
            rows.push((
                format!("{unit} / {technique}"),
                vec![mean(&dyns), mean(&ovhs), mean(&stats)],
            ));
        }
    }
    print_table(
        "Figure 1b: normalized energy breakdown (fraction of baseline total)",
        &["Dynamic", "Overhead", "Static"],
        &rows,
    );
}
