//! Clustered-architecture study: the paper's Section 5 motivates its
//! coordinated Blackout with the trend toward more execution clusters
//! per SM — Kepler organises its CUDA cores into six SPs, AMD GCN into
//! four SIMDs. This study runs the generalized mechanisms (the
//! "last-awake-cluster" coordination rule reduces to the paper's
//! two-cluster description on Fermi) across the three layouts.
//!
//! With more clusters, each cluster sees a thinner instruction stream,
//! so per-cluster idle windows grow — more gating opportunity — while
//! the coordination rule still keeps one cluster of each type awake for
//! waiting warps.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::{Experiment, Technique};
use warped_isa::UnitType;
use warped_power::PowerParams;
use warped_sim::summary::{geomean, mean};
use warped_sim::DomainLayout;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args().min(0.3);
    let power = PowerParams::default();
    let mut rows = Vec::new();

    let architectures = [
        ("Fermi (2 SP, width 2)", DomainLayout::fermi(), 2usize),
        ("GCN-like (4 SIMD, width 3)", DomainLayout::gcn(), 3),
        ("Kepler-like (6 SP, width 4)", DomainLayout::kepler(), 4),
    ];

    let techniques = [
        Technique::ConvPg,
        Technique::NaiveBlackout,
        Technique::WarpedGates,
    ];

    for (label, layout, width) in architectures {
        // The 18 × 4 slice for this architecture fans across the pool.
        let exp = Experiment::paper_defaults()
            .with_scale(scale)
            .with_architecture(layout, Some(width));
        let grid = RunGrid::collect_with(
            exp,
            &[
                Technique::Baseline,
                Technique::ConvPg,
                Technique::NaiveBlackout,
                Technique::WarpedGates,
            ],
        );
        for technique in techniques {
            let mut savings = Vec::new();
            let mut perf = Vec::new();
            for b in Benchmark::ALL {
                let baseline = grid.get(b, Technique::Baseline);
                let run = grid.get(b, technique);
                savings.push(
                    run.static_savings(baseline, UnitType::Int, &power)
                        .fraction(),
                );
                perf.push(run.normalized_performance(baseline));
            }
            rows.push((
                format!("{label} {technique}"),
                vec![mean(&savings), geomean(&perf)],
            ));
            eprintln!("done {label} / {technique}");
        }
    }
    print_table(
        "Clustered architectures: INT static savings / performance",
        &["IntSavings", "PerfGeomean"],
        &rows,
    );
    println!(
        "\nReading: more clusters thin each cluster's instruction stream, so\n\
         per-cluster idle grows and every gating scheme saves more; the\n\
         generalized coordination keeps the performance cost bounded by\n\
         holding one cluster of each type awake whenever warps wait."
    );
}
