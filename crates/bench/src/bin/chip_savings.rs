//! Section 7.3's chip-level estimate: convert the measured
//! execution-unit static-energy savings into total on-chip power
//! savings using the GTX480 leakage figures from GPUWattch.
//!
//! Paper reference points: 30%–45% unit savings at a 33% chip leakage
//! share yield 1.62%–2.43% of total on-chip power; at a 50% leakage
//! share (future nodes), 2.46%–3.69%.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_isa::UnitType;
use warped_power::chip;
use warped_sim::summary::mean;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let grid = RunGrid::collect(scale, &[Technique::Baseline, Technique::WarpedGates]);
    let power = warped_power::PowerParams::default();

    let mut int_savings = Vec::new();
    let mut fp_savings = Vec::new();
    for b in Benchmark::ALL {
        let baseline = grid.get(b, Technique::Baseline);
        let run = grid.get(b, Technique::WarpedGates);
        int_savings.push(
            run.static_savings(baseline, UnitType::Int, &power)
                .fraction(),
        );
        if !b.spec().mix.is_integer_only() {
            fp_savings.push(
                run.static_savings(baseline, UnitType::Fp, &power)
                    .fraction(),
            );
        }
    }
    let int_avg = mean(&int_savings);
    let fp_avg = mean(&fp_savings);
    // Weight the overall unit savings by each unit type's leakage share.
    let total_unit_leak = chip::INT_UNITS_LEAKAGE_W + chip::FP_UNITS_LEAKAGE_W;
    let unit_savings =
        (int_avg * chip::INT_UNITS_LEAKAGE_W + fp_avg * chip::FP_UNITS_LEAKAGE_W) / total_unit_leak;

    println!(
        "\nmeasured Warped Gates savings: INT {:.1}%  FP {:.1}%",
        int_avg * 100.0,
        fp_avg * 100.0
    );
    println!(
        "leakage-weighted unit savings: {:.1}%",
        unit_savings * 100.0
    );
    println!(
        "execution units' share of chip leakage: {:.2}% (paper constant)",
        chip::EXEC_UNIT_LEAKAGE_SHARE * 100.0
    );

    let rows = vec![
        (
            "leakage = 33% of chip power".to_owned(),
            vec![
                chip::total_chip_savings(0.33, unit_savings) * 100.0,
                chip::total_chip_savings(0.33, 0.30) * 100.0,
                chip::total_chip_savings(0.33, 0.45) * 100.0,
            ],
        ),
        (
            "leakage = 50% of chip power".to_owned(),
            vec![
                chip::total_chip_savings(0.50, unit_savings) * 100.0,
                chip::total_chip_savings(0.50, 0.30) * 100.0,
                chip::total_chip_savings(0.50, 0.45) * 100.0,
            ],
        ),
    ];
    print_table(
        "Section 7.3: total on-chip power savings (%)",
        &["measured", "paper@30%", "paper@45%"],
        &rows,
    );
}
