//! Figure 3: idle-period length distribution of the integer unit for
//! hotspot under (a) conventional power gating with the two-level
//! scheduler, (b) GATES, and (c) GATES + Blackout, partitioned into the
//! three regions set by the 5-cycle idle-detect window and the 14-cycle
//! break-even time.
//!
//! Paper reference points (hotspot): (a) 83.4% / 10.1% / 6.5%,
//! (b) 59.0% / 22.1% / 18.9%, (c) 54.3% / 0.0% / 45.7% — Blackout
//! empties the middle (net-energy-loss) region by construction.

use warped_bench::scale_from_args;
use warped_gates::{runner, Experiment, Technique};
use warped_isa::UnitType;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let experiment = Experiment::paper_defaults().with_scale(scale);
    let spec = Benchmark::Hotspot.spec();
    let params = *experiment.params();

    // 3c uses Naive Blackout: with a fixed idle-detect window the
    // shortest gated idle period is idle_detect + BET + wakeup_delay,
    // which structurally empties the middle (net-energy-loss) region —
    // the paper's 0.0% bar. (Coordinated Blackout's immediate gating of
    // the second cluster can produce shorter, still fully-compensated
    // periods that a raw length histogram would misfile as "negative".)
    let cases = [
        ("3a ConvPG (two-level)", Technique::ConvPg),
        ("3b GATES", Technique::Gates),
        ("3c GATES+Blackout", Technique::NaiveBlackout),
    ];

    let jobs: Vec<runner::GridJob> = cases
        .iter()
        .map(|(_, technique)| (spec.clone(), *technique))
        .collect();
    let runs = runner::run_grid(&experiment, &jobs);

    for ((label, _), run) in cases.iter().zip(runs) {
        let hist = run.idle_histogram(UnitType::Int);
        // Region shares measure period *counts*; under Blackout the
        // mid region is structurally empty because a gated unit cannot
        // resume before idle_detect + BET cycles have passed.
        let (wasted, negative, positive) = hist.region_shares(params.idle_detect, params.bet);
        println!("\n== Figure {label}: hotspot INT idle-period distribution ==");
        println!(
            "regions: <=idle_detect {:.1}%  |  (idle_detect, idle_detect+BET] {:.1}%  |  beyond {:.1}%",
            wasted * 100.0,
            negative * 100.0,
            positive * 100.0
        );
        println!("length : frequency");
        for len in 1..=25u32 {
            let f = hist.frequency(len);
            let bar = "#".repeat((f * 200.0).round() as usize);
            println!("{len:>6} : {:>6.2}% {bar}", f * 100.0);
        }
        let beyond: f64 = 1.0 - (1..=25u32).map(|l| hist.frequency(l)).sum::<f64>();
        println!("   >25 : {:>6.2}%", beyond.max(0.0) * 100.0);
    }
}
