//! Section 7.5's hardware overhead: the area and power cost of the
//! counters GATES, Blackout, and adaptive idle detect add to each SM,
//! against GPUWattch's SM figures.
//!
//! Paper reference points: 0.003% area, 0.08% dynamic power, and
//! 0.0007% leakage power overhead per SM.

use warped_power::hardware;

fn main() {
    println!("== Section 7.5: hardware overhead of the added counters ==");
    println!();
    println!("counter inventory per SM:");
    println!(
        "{:<52} {:>5} {:>10} {:>6}  mechanism",
        "counter", "bits", "instances", "total"
    );
    for c in hardware::counter_inventory() {
        println!(
            "{:<52} {:>5} {:>10} {:>6}  {}",
            c.name,
            c.bits,
            c.instances,
            c.bits * c.instances,
            c.mechanism
        );
    }
    println!("total storage: {} bits per SM\n", hardware::total_bits());

    let o = hardware::overhead();
    println!(
        "synthesized counter area : {:>10.1} um^2 of {:>6.1} mm^2 SM  -> {:.4}% (paper: 0.003%)",
        hardware::COUNTERS_AREA_UM2,
        hardware::SM_AREA_MM2,
        o.area_fraction * 100.0
    );
    println!(
        "dynamic power            : {:>10.2e} W of {:>6.2} W SM      -> {:.4}% (paper: 0.08%)",
        hardware::COUNTERS_DYNAMIC_W,
        hardware::SM_DYNAMIC_W,
        o.dynamic_fraction * 100.0
    );
    println!(
        "leakage power            : {:>10.2e} W of {:>6.2} W SM      -> {:.5}% (paper: 0.0007%)",
        hardware::COUNTERS_LEAKAGE_W,
        hardware::SM_LEAKAGE_W,
        o.leakage_fraction * 100.0
    );
}
