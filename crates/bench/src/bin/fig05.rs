//! Figure 5: GPGPU workload characteristics under the baseline
//! scheduler — (a) the dynamic instruction-type mix per benchmark and
//! (b) the maximum and average active-warp-set size at runtime.
//!
//! Paper reference points: most benchmarks mix INT and FP substantially
//! (lavaMD is the pure-integer outlier), and only 5 of the 18
//! benchmarks average fewer than ten active warps.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_isa::UnitType;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let grid = RunGrid::collect(scale, &[Technique::Baseline]);

    // 5a: measured dynamic instruction mix.
    let mut rows = Vec::new();
    for b in Benchmark::ALL {
        let run = grid.get(b, Technique::Baseline);
        let total = run.stats.instructions() as f64;
        let vals: Vec<f64> = UnitType::ALL
            .iter()
            .map(|u| run.stats.issued(*u) as f64 / total)
            .collect();
        rows.push((b.name().to_owned(), vals));
    }
    print_table(
        "Figure 5a: dynamic instruction mix (fractions)",
        &["INT", "FP", "SFU", "LDST"],
        &rows,
    );

    // 5b: active warp set size, sorted descending by average as in the
    // paper's figure.
    let mut occ: Vec<(String, Vec<f64>)> = Benchmark::ALL
        .iter()
        .map(|b| {
            let run = grid.get(*b, Technique::Baseline);
            (
                b.name().to_owned(),
                vec![
                    f64::from(run.stats.active_warps_max),
                    run.stats.avg_active_warps(),
                ],
            )
        })
        .collect();
    occ.sort_by(|a, b| b.1[1].partial_cmp(&a.1[1]).expect("finite averages"));
    print_table(
        "Figure 5b: runtime active warps (sorted by average)",
        &["Max", "Average"],
        &occ,
    );

    let below_ten = occ.iter().filter(|(_, v)| v[1] < 10.0).count();
    println!("\nbenchmarks averaging fewer than ten active warps: {below_ten} (paper: 5)");
}
