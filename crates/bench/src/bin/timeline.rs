//! Timeline capture: run one benchmark × technique cell with telemetry
//! armed and export the recording as a Perfetto/Chrome trace plus a
//! per-epoch metrics stream.
//!
//! Writes `<out-dir>/trace.perfetto.json` (open at
//! <https://ui.perfetto.dev> or `chrome://tracing`) and
//! `<out-dir>/metrics.jsonl`, then prints a terminal summary. Output is
//! deterministic: timestamps are simulation cycles, so two captures of
//! the same cell are byte-identical.
//!
//! Usage:
//! `timeline --bench <name> --technique <t> [--scale <f>] [--out-dir <dir>]
//!           [--capacity <events>] [--epoch <cycles>] [--mem-hierarchy]`

use std::cell::RefCell;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::rc::Rc;

use warped_bench::{exit_usage, ArgError};
use warped_gates::Technique;
use warped_gating::GatingParams;
use warped_power::{EnergyTimeline, PowerParams};
use warped_sim::{DomainLayout, Sm};
use warped_telemetry::{perfetto, rollup, Recorder, RecorderConfig};
use warped_workloads::Benchmark;

const USAGE: &str = "--bench <name> --technique <t> [--scale <f in (0,1]>] \
[--out-dir <dir>] [--capacity <events >= 1>] [--epoch <cycles >= 1>] \
[--mem-hierarchy]";

struct Config {
    bench: Benchmark,
    technique: Technique,
    scale: f64,
    out_dir: PathBuf,
    capacity: usize,
    epoch_len: u64,
    mem_hierarchy: bool,
}

/// Case-insensitive technique lookup that also ignores spaces, dashes,
/// and underscores, so `warped-gates`, `Warped Gates`, and
/// `WARPED_GATES` all resolve.
fn technique_from_name(name: &str) -> Option<Technique> {
    let slug = |s: &str| -> String {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect()
    };
    let wanted = slug(name);
    Technique::ALL
        .into_iter()
        .find(|t| slug(t.name()) == wanted || slug(&format!("{t:?}")) == wanted)
}

fn parse_args(args: &[String]) -> Result<Config, ArgError> {
    let mut bench = None;
    let mut technique = None;
    let mut scale = 0.1_f64;
    let mut out_dir = PathBuf::from("results/timeline");
    let mut capacity = 1usize << 20;
    let mut epoch_len = 1000u64;
    let mut mem_hierarchy = false;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, ArgError> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| ArgError::MissingValue(flag.to_owned()))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                let v = value(args, i, "--bench")?;
                bench = Some(Benchmark::from_name(&v).ok_or_else(|| ArgError::BadValue {
                    flag: "--bench".to_owned(),
                    value: v,
                    expected: "one of the 18 benchmark names",
                })?);
                i += 2;
            }
            "--technique" => {
                let v = value(args, i, "--technique")?;
                technique = Some(technique_from_name(&v).ok_or_else(|| ArgError::BadValue {
                    flag: "--technique".to_owned(),
                    value: v,
                    expected: "baseline, convpg, gates, naive-blackout, \
                               coordinated-blackout, or warped-gates",
                })?);
                i += 2;
            }
            "--scale" => {
                let v = value(args, i, "--scale")?;
                let bad = || ArgError::BadValue {
                    flag: "--scale".to_owned(),
                    value: v.clone(),
                    expected: "a number in (0,1]",
                };
                scale = v.parse().map_err(|_| bad())?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(bad());
                }
                i += 2;
            }
            "--out-dir" => {
                out_dir = value(args, i, "--out-dir")?.into();
                i += 2;
            }
            "--capacity" => {
                let v = value(args, i, "--capacity")?;
                capacity = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| ArgError::BadValue {
                        flag: "--capacity".to_owned(),
                        value: v.clone(),
                        expected: "a positive event count",
                    })?;
                i += 2;
            }
            "--epoch" => {
                let v = value(args, i, "--epoch")?;
                epoch_len =
                    v.parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| ArgError::BadValue {
                            flag: "--epoch".to_owned(),
                            value: v.clone(),
                            expected: "a positive cycle count",
                        })?;
                i += 2;
            }
            "--mem-hierarchy" => {
                mem_hierarchy = true;
                i += 1;
            }
            other => return Err(ArgError::Unknown(other.to_owned())),
        }
    }
    let bench = bench.ok_or_else(|| ArgError::MissingValue("--bench".to_owned()))?;
    let technique = technique.ok_or_else(|| ArgError::MissingValue("--technique".to_owned()))?;
    Ok(Config {
        bench,
        technique,
        scale,
        out_dir,
        capacity,
        epoch_len,
        mem_hierarchy,
    })
}

/// Writes via a sibling temp file + rename, so a crash never leaves a
/// truncated artifact behind.
fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = parse_args(&args).unwrap_or_else(|e| exit_usage(&e, USAGE));

    let spec = config.bench.spec().scaled(config.scale);
    let params = GatingParams::default();
    let recorder = Recorder::new(RecorderConfig {
        capacity: config.capacity,
        epoch_len: config.epoch_len,
    });

    let mut cfg = spec.sm_config();
    cfg.telemetry = Some(recorder.clone());
    if config.mem_hierarchy {
        cfg.memory.hierarchy = Some(warped_sim::HierarchyConfig::default());
    }
    let layout = DomainLayout::new(cfg.sp_clusters);
    let energy = Rc::new(RefCell::new(EnergyTimeline::new(
        PowerParams::default(),
        layout,
        params.bet,
        config.epoch_len,
    )));

    let mut sm = Sm::new(
        cfg,
        spec.launch(),
        config.technique.make_scheduler(),
        config.technique.make_gating(params),
    );
    sm.set_observer(Box::new(Rc::clone(&energy)));
    let outcome = sm.run();
    if outcome.timed_out {
        eprintln!("timeline: cell hit the cycle cap; trace covers the truncated run");
    }

    // Drain the ring in bounded chunks (the same incremental path the
    // service layer streams over HTTP), then take() the epoch/baseline
    // metadata and reassemble the full log. Draining a finished
    // recording chunk-by-chunk yields exactly `take()`'s event order,
    // so the artifacts stay byte-identical.
    let mut events = Vec::new();
    for chunk in recorder.drain_chunks(64 * 1024) {
        events.extend(chunk);
    }
    let mut log = recorder.take();
    log.events = events;
    let title = format!("{} × {}", config.bench.name(), config.technique.name());
    let trace = perfetto::render_with_energy(&log, layout, &title, Some(&energy.borrow()));
    let rows = rollup::rows_with_energy(&log, &energy.borrow());
    let mut metrics = Vec::new();
    if let Err(e) = rollup::write_jsonl(&rows, &mut metrics) {
        eprintln!("timeline: metrics encoding failed: {e}");
        return ExitCode::FAILURE;
    }

    if let Err(e) = fs::create_dir_all(&config.out_dir) {
        eprintln!("timeline: cannot create {}: {e}", config.out_dir.display());
        return ExitCode::FAILURE;
    }
    let trace_path = config.out_dir.join("trace.perfetto.json");
    let metrics_path = config.out_dir.join("metrics.jsonl");
    for (path, bytes) in [
        (&trace_path, trace.as_bytes()),
        (&metrics_path, &metrics[..]),
    ] {
        if let Err(e) = write_atomic(path, bytes) {
            eprintln!("timeline: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let totals =
        log.epochs
            .iter()
            .fold(warped_telemetry::EpochCounters::default(), |mut acc, e| {
                acc.gate_events += e.gate_events;
                acc.wakeups += e.wakeups;
                acc.critical_wakeups += e.critical_wakeups;
                acc.wasted_gates += e.wasted_gates;
                acc.blackout_holds += e.blackout_holds;
                acc.ff_spans += e.ff_spans;
                acc.ff_cycles += e.ff_cycles;
                acc
            });
    println!("timeline: {title}");
    println!(
        "  cycles {}   issued {}   ipc {:.3}",
        outcome.stats.cycles,
        outcome.stats.instructions(),
        outcome.stats.ipc()
    );
    println!(
        "  events {} recorded, {} dropped   epochs {} x {} cycles",
        log.events.len(),
        log.dropped,
        log.epochs.len(),
        log.epoch_len
    );
    println!(
        "  gating: {} gates, {} wakeups ({} critical, {} wasted), {} blackout holds",
        totals.gate_events,
        totals.wakeups,
        totals.critical_wakeups,
        totals.wasted_gates,
        totals.blackout_holds
    );
    println!(
        "  clock: {} fast-forward spans covering {} cycles",
        totals.ff_spans, totals.ff_cycles
    );
    println!(
        "  event core: {} events dispatched, queue peak {}, {} idle cycles skipped",
        outcome.stats.events_dispatched, outcome.stats.heap_peak, outcome.stats.idle_cycles_skipped
    );
    let mem = outcome.stats.mem;
    if mem.hierarchy {
        println!(
            "  memory: {} accesses, L1 hit {:.1}%, L2 miss {:.1}%, {} merges, \
             {} fills, MSHR peak {}/{}",
            mem.accesses,
            100.0 * mem.l1_hit_rate(),
            100.0 * mem.l2_miss_rate(),
            mem.mshr_merges,
            mem.fills,
            mem.mshr_peak,
            mem.mshr_capacity
        );
    } else {
        println!(
            "  memory: flat latency model, {} loads, outstanding peak {}/{}",
            mem.accesses, mem.mshr_peak, mem.mshr_capacity
        );
    }
    println!("wrote {}", trace_path.display());
    println!("wrote {}", metrics_path.display());
    println!("open the trace at https://ui.perfetto.dev (or chrome://tracing)");
    ExitCode::SUCCESS
}
