//! Memory-gating ablation: LDST static leakage savings as a function
//! of the realized L1 miss rate, for all six techniques.
//!
//! The cycle-accurate L1/L2 hierarchy is armed on the three most
//! LDST-bound workloads (bfs, mum, nw) while the fallback address
//! footprint sweeps from cache-resident to thrashing. A larger
//! footprint lowers L1 locality, stretches load latency through the
//! MSHR/DRAM path, and opens longer idle windows on the compute units
//! — the row labels report the miss rate each footprint actually
//! produced, so the table reads as savings-vs-miss-rate.
//!
//! Output is deterministic: same binary, same scale, same table.
//!
//! Usage: `fig_mem_gating [--scale <f in (0,1]>]`

use warped_bench::{print_table, scale_from_args, workers_or_exit};
use warped_gates::{runner, Experiment, Technique};
use warped_isa::UnitType;
use warped_power::PowerParams;
use warped_sim::summary::mean;
use warped_sim::HierarchyConfig;
use warped_workloads::Benchmark;

/// The LDST-heaviest benchmarks in the catalog (45%, 42%, and 38%
/// memory instructions) — the workloads the hierarchy was built for.
const BENCHES: [Benchmark; 3] = [Benchmark::Bfs, Benchmark::Mum, Benchmark::Nw];

/// Fallback footprints in cache lines, cache-resident to thrashing.
const FOOTPRINTS: [u64; 4] = [64, 512, 4096, 32768];

fn main() {
    let scale = scale_from_args();
    let workers = workers_or_exit();
    let power = PowerParams::default();
    let jobs = runner::grid_of(&BENCHES, &Technique::ALL);

    let mut rows = Vec::new();
    for footprint in FOOTPRINTS {
        let hierarchy = HierarchyConfig {
            fallback_footprint: footprint,
            ..HierarchyConfig::default()
        };
        let experiment = Experiment::paper_defaults()
            .with_scale(scale)
            .with_memory_hierarchy(Some(hierarchy));
        let runs = runner::run_grid_with(&experiment, &jobs, workers);

        // `grid_of` is benchmark-major: runs[b * 6 + t].
        let mut miss_rates = Vec::new();
        let mut savings: Vec<Vec<f64>> = vec![Vec::new(); Technique::ALL.len()];
        for (b, _) in BENCHES.iter().enumerate() {
            let cell = |t: usize| &runs[b * Technique::ALL.len() + t];
            let baseline = cell(0);
            assert!(baseline.stats.mem.hierarchy, "hierarchy must be armed");
            miss_rates.push(baseline.stats.mem.l1_miss_rate());
            for (t, values) in savings.iter_mut().enumerate() {
                values.push(
                    cell(t)
                        .static_savings(baseline, UnitType::Ldst, &power)
                        .fraction(),
                );
            }
        }
        let miss = mean(&miss_rates);
        let mut values = vec![miss];
        values.extend(savings.iter().map(|v| mean(v)));
        rows.push((format!("fp={footprint}"), values));
    }

    print_table(
        "fig_mem_gating: LDST static leakage savings vs L1 miss rate",
        &[
            "l1_miss",
            "Baseline",
            "ConvPG",
            "GATES",
            "NaiveBO",
            "CoordBO",
            "WarpedGates",
        ],
        &rows,
    );
}
