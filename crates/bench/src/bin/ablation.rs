//! Ablation study of the design choices DESIGN.md §3a calls out:
//! GATES' maximum priority hold, the lazy-wakeup hysteresis, and the
//! backlog-wake threshold. Each row runs the full benchmark suite under
//! GATES + Coordinated Blackout with one knob varied and reports the
//! suite-average INT savings and geomean performance.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::{CoordinatedBlackoutPolicy, GatesScheduler, Technique};
use warped_gating::{Controller, GatingParams, StaticIdleDetect};
use warped_isa::UnitType;
use warped_power::PowerParams;
use warped_sim::parallel::par_map;
use warped_sim::summary::{geomean, mean};
use warped_sim::Sm;
use warped_workloads::Benchmark;

/// Runs the whole suite with a custom-built GATES scheduler, fanning the
/// 18 single-SM simulations across the worker pool (a custom scheduler
/// constructor is not a [`Technique`], so this bypasses `run_grid` but
/// shares its pool).
fn evaluate(
    scale: f64,
    baselines: &RunGrid,
    make: impl Fn() -> GatesScheduler + Sync,
) -> (f64, f64) {
    let power = PowerParams::default();
    let outs = par_map(Benchmark::ALL.len(), warped_bench::workers_or_exit(), |i| {
        let b = Benchmark::ALL[i];
        let spec = b.spec().scaled(scale);
        let out = Sm::new(
            spec.sm_config(),
            spec.launch(),
            Box::new(make()),
            Box::new(Controller::new(
                GatingParams::default(),
                CoordinatedBlackoutPolicy::new(),
                StaticIdleDetect::new(),
            )),
        )
        .run();
        assert!(!out.timed_out);
        out
    });
    let mut savings = Vec::new();
    let mut perf = Vec::new();
    for (b, out) in Benchmark::ALL.into_iter().zip(outs) {
        let baseline = baselines.get(b, Technique::Baseline);
        let baseline_static = 2.0 * baseline.cycles as f64;
        let g = out
            .gating
            .sum_over(warped_sim::DomainId::domains_of(UnitType::Int));
        let spent = (2.0 * out.stats.cycles as f64 - g.gated_cycles as f64)
            + g.gate_events as f64 * power.gate_event_overhead(14);
        savings.push(1.0 - spent / baseline_static);
        perf.push(baseline.cycles as f64 / out.stats.cycles as f64);
    }
    (mean(&savings), geomean(&perf))
}

fn main() {
    let scale = scale_from_args().min(0.3); // the grid is 18 benchmarks per row
    let baselines = RunGrid::collect(scale, &[Technique::Baseline]);
    let mut rows = Vec::new();

    for (label, hold) in [
        ("max_hold = 16", Some(16)),
        ("max_hold = 64 (default)", Some(64)),
        ("max_hold = 512", Some(512)),
        ("max_hold = none", None),
    ] {
        let (s, p) = evaluate(scale, &baselines, || match hold {
            Some(h) => GatesScheduler::with_max_hold(h),
            None => GatesScheduler::new(),
        });
        rows.push((label.to_owned(), vec![s, p]));
        eprintln!("done {label}");
    }
    for lazy in [0u32, 1, 3, 8] {
        let (s, p) = evaluate(scale, &baselines, || {
            GatesScheduler::with_max_hold(64).with_lazy_wake(lazy)
        });
        rows.push((format!("lazy_wake = {lazy}"), vec![s, p]));
        eprintln!("done lazy {lazy}");
    }
    for backlog in [2u32, 4, 8, u32::MAX] {
        let label = if backlog == u32::MAX {
            "backlog = off".to_owned()
        } else {
            format!("backlog = {backlog}")
        };
        let (s, p) = evaluate(scale, &baselines, || {
            GatesScheduler::with_max_hold(64).with_wake_backlog(backlog)
        });
        rows.push((label, vec![s, p]));
        eprintln!("done backlog {backlog}");
    }

    print_table(
        "Ablation: GATES heuristics under Coordinated Blackout",
        &["IntSavings", "PerfGeomean"],
        &rows,
    );
}
