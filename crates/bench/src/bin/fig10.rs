//! Figure 10: performance normalized to the no-gating baseline for the
//! five gated techniques, per benchmark plus the geometric mean.
//!
//! Paper reference points: ConvPG and GATES lose ~1%, Naive Blackout
//! ~5% (the worst), Coordinated Blackout ~2%, and Warped Gates is back
//! to ~1% — virtually the same as conventional gating.

use warped_bench::{print_table, scale_from_args, RunGrid};
use warped_gates::Technique;
use warped_sim::summary::geomean;
use warped_workloads::Benchmark;

fn main() {
    let scale = scale_from_args();
    let grid = RunGrid::collect(scale, &Technique::ALL);

    let mut rows = Vec::new();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); Technique::GATED.len()];
    for b in Benchmark::ALL {
        let baseline = grid.get(b, Technique::Baseline);
        let mut vals = Vec::new();
        for (i, t) in Technique::GATED.into_iter().enumerate() {
            let perf = grid.get(b, t).normalized_performance(baseline);
            vals.push(perf);
            series[i].push(perf);
        }
        rows.push((b.name().to_owned(), vals));
    }
    rows.push((
        "geomean".to_owned(),
        series.iter().map(|v| geomean(v)).collect(),
    ));
    print_table(
        "Figure 10: normalized performance (1.0 = baseline)",
        &["ConvPG", "GATES", "NaiveBO", "CoordBO", "WarpedGates"],
        &rows,
    );
}
