//! # warped-bench
//!
//! Shared machinery for the figure-regeneration binaries and Criterion
//! benchmarks of the Warped Gates reproduction.
//!
//! Every figure in the paper's evaluation has a binary under
//! `src/bin/` that re-runs the corresponding experiment and prints the
//! same rows/series the paper plots (see `DESIGN.md` §4 for the index).
//! This library hosts the pieces they share: a fixed-width table
//! printer, a scale-factor argument parser, and a cached runner over the
//! benchmark × technique grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;

use std::collections::BTreeMap;
use warped_gates::{runner, Experiment, Technique, TechniqueRun};
use warped_sim::parallel::worker_count;
use warped_workloads::Benchmark;

/// Parses `--scale <f>` from the command line (default 1.0).
///
/// All figure binaries accept it so that a fast smoke run
/// (`--scale 0.1`) and the full-size experiment use the same code path.
///
/// # Panics
///
/// Panics with a usage message on malformed arguments.
#[must_use]
pub fn scale_from_args() -> f64 {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = 1.0;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = args
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("--scale needs a value"));
                scale = v
                    .parse::<f64>()
                    .unwrap_or_else(|_| panic!("--scale value '{v}' is not a number"));
                assert!(scale > 0.0 && scale <= 1.0, "--scale must be in (0,1]");
                i += 2;
            }
            other => panic!("unknown argument '{other}' (supported: --scale <f>)"),
        }
    }
    scale
}

/// Prints a fixed-width table: a label column plus numeric columns.
///
/// When the `WARPED_BENCH_JSON` environment variable names a directory,
/// the same table is also written there as
/// `<slugified-title>.json` for machine consumption (plotting scripts,
/// regression tracking).
pub fn print_table(title: &str, headers: &[&str], rows: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{:<22}", "");
    for h in headers {
        print!("{h:>14}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<22}");
        for v in values {
            print!("{v:>14.4}");
        }
        println!();
    }
    if let Ok(dir) = std::env::var("WARPED_BENCH_JSON") {
        if let Err(e) = write_json(&dir, title, headers, rows) {
            eprintln!("warning: could not write JSON table: {e}");
        }
    }
}

/// Serialises one table as JSON into `dir/<slug>.json`.
///
/// The format is deliberately simple:
/// `{"title": ..., "headers": [...], "rows": [{"label": ..., "values": [...]}]}`.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the
/// file.
pub fn write_json(
    dir: &str,
    title: &str,
    headers: &[&str],
    rows: &[(String, Vec<f64>)],
) -> std::io::Result<()> {
    use std::fmt::Write as _;

    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }

    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_owned()
        }
    }

    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");

    let mut out = String::new();
    let _ = write!(out, "{{\"title\":\"{}\",\"headers\":[", escape(title));
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(h));
    }
    out.push_str("],\"rows\":[");
    for (i, (label, values)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"label\":\"{}\",\"values\":[", escape(label));
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&num(*v));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");

    std::fs::create_dir_all(dir)?;
    std::fs::write(std::path::Path::new(dir).join(format!("{slug}.json")), out)
}

/// A cached grid of runs over the 18 benchmarks and the requested
/// techniques, keyed by `(benchmark, technique)`.
pub struct RunGrid {
    experiment: Experiment,
    runs: BTreeMap<(Benchmark, Technique), TechniqueRun>,
}

impl RunGrid {
    /// Runs `techniques` on every benchmark at the given scale, fanning
    /// the grid across the worker pool (`WARPED_JOBS` workers, default
    /// all cores).
    #[must_use]
    pub fn collect(scale: f64, techniques: &[Technique]) -> Self {
        Self::collect_with(Experiment::paper_defaults().with_scale(scale), techniques)
    }

    /// [`RunGrid::collect`] for a custom experiment configuration
    /// (non-default gating parameters or architectures).
    #[must_use]
    pub fn collect_with(experiment: Experiment, techniques: &[Technique]) -> Self {
        let jobs = runner::grid_of(&Benchmark::ALL, techniques);
        eprintln!(
            "running {} jobs ({} benchmarks x {} techniques) on {} workers",
            jobs.len(),
            Benchmark::ALL.len(),
            techniques.len(),
            worker_count()
        );
        let results = runner::run_grid(&experiment, &jobs);
        let mut runs = BTreeMap::new();
        let keys = Benchmark::ALL
            .iter()
            .flat_map(|b| techniques.iter().map(move |t| (*b, *t)));
        for ((b, t), run) in keys.zip(results) {
            assert!(!run.timed_out, "{b}/{t} timed out");
            runs.insert((b, t), run);
        }
        RunGrid { experiment, runs }
    }

    /// The experiment configuration behind this grid.
    #[must_use]
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// The cached run for one benchmark × technique pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of the collected grid.
    #[must_use]
    pub fn get(&self, b: Benchmark, t: Technique) -> &TechniqueRun {
        self.runs
            .get(&(b, t))
            .unwrap_or_else(|| panic!("run {b}/{t} not collected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_isa::UnitType;

    #[test]
    fn grid_collects_requested_pairs() {
        let grid = RunGrid::collect(0.05, &[Technique::Baseline, Technique::ConvPg]);
        for b in Benchmark::ALL {
            assert!(grid.get(b, Technique::Baseline).cycles > 0);
            assert!(grid.get(b, Technique::ConvPg).cycles > 0);
        }
    }

    #[test]
    #[should_panic(expected = "not collected")]
    fn missing_pair_panics() {
        let grid = RunGrid::collect(0.05, &[Technique::Baseline]);
        let _ = grid.get(Benchmark::Nw, Technique::WarpedGates);
    }

    #[test]
    fn write_json_produces_parseable_output() {
        let dir = std::env::temp_dir().join("warped_bench_json_test");
        let rows = vec![
            ("hotspot".to_owned(), vec![1.0, 0.5]),
            ("quote\"d".to_owned(), vec![f64::NAN]),
        ];
        write_json(dir.to_str().unwrap(), "A \"Title\"", &["x", "y"], &rows).unwrap();
        let path = dir.join("a_title.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"label\":\"hotspot\""));
        assert!(text.contains("null"), "NaN becomes null");
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_runs_have_sensible_stats() {
        let grid = RunGrid::collect(0.05, &[Technique::Baseline]);
        let run = grid.get(Benchmark::Hotspot, Technique::Baseline);
        assert!(run.stats.issued(UnitType::Int) > 0);
        assert!(run.stats.issued(UnitType::Fp) > 0);
    }
}
