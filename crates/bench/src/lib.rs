//! # warped-bench
//!
//! Shared machinery for the figure-regeneration binaries and Criterion
//! benchmarks of the Warped Gates reproduction.
//!
//! Every figure in the paper's evaluation has a binary under
//! `src/bin/` that re-runs the corresponding experiment and prints the
//! same rows/series the paper plots (see `DESIGN.md` §4 for the index).
//! This library hosts the pieces they share: a fixed-width table
//! printer, a scale-factor argument parser, and a cached runner over the
//! benchmark × technique grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grid;
pub mod journal;
pub mod sweep;
pub mod timing;

use std::collections::BTreeMap;
use warped_gates::{runner, Experiment, Technique, TechniqueRun};
use warped_sim::parallel::try_worker_count;
use warped_workloads::Benchmark;

/// A malformed command line, as every binary in this crate reports it:
/// the error plus a usage line on stderr, exit code 2 — never an
/// unwinding panic with a backtrace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag was given without its required value.
    MissingValue(String),
    /// A flag's value failed to parse or fell outside its range.
    BadValue {
        /// The flag (or environment variable) at fault.
        flag: String,
        /// The offending value as given.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// An argument no binary recognises.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag} value '{value}' is invalid (expected {expected})"),
            ArgError::Unknown(arg) => write!(f, "unknown argument '{arg}'"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses `--scale <f>` from an argument list (default 1.0).
///
/// # Errors
///
/// Returns an [`ArgError`] for a missing value, a non-numeric or
/// out-of-range scale, or any unrecognised argument.
pub fn parse_scale_args(args: &[String]) -> Result<f64, ArgError> {
    let mut scale = 1.0;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| ArgError::MissingValue("--scale".to_owned()))?;
                scale = v.parse::<f64>().map_err(|_| ArgError::BadValue {
                    flag: "--scale".to_owned(),
                    value: v.clone(),
                    expected: "a number in (0,1]",
                })?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(ArgError::BadValue {
                        flag: "--scale".to_owned(),
                        value: v.clone(),
                        expected: "a number in (0,1]",
                    });
                }
                i += 2;
            }
            other => return Err(ArgError::Unknown(other.to_owned())),
        }
    }
    Ok(scale)
}

/// Parses `--scale <f>` from the command line (default 1.0).
///
/// All figure binaries accept it so that a fast smoke run
/// (`--scale 0.1`) and the full-size experiment use the same code path.
/// On a malformed command line this prints the error plus usage to
/// stderr and exits with code 2.
#[must_use]
pub fn scale_from_args() -> f64 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    parse_scale_args(&args).unwrap_or_else(|e| exit_usage(&e, "[--scale <f in (0,1]>]"))
}

/// Reports a command-line error the way every binary here does: the
/// error and a usage line on stderr, then exit code 2.
pub fn exit_usage(err: &ArgError, usage: &str) -> ! {
    let bin = std::env::args()
        .next()
        .map(|p| {
            std::path::Path::new(&p)
                .file_name()
                .map_or_else(|| p.clone(), |n| n.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_owned());
    eprintln!("{bin}: {err}");
    eprintln!("usage: {bin} {usage}");
    std::process::exit(2)
}

/// The effective worker count, like
/// [`warped_sim::parallel::worker_count`] but reporting a malformed
/// `WARPED_JOBS` as a proper CLI error (stderr + exit 2) instead of a
/// panic backtrace.
#[must_use]
pub fn workers_or_exit() -> usize {
    try_worker_count().unwrap_or_else(|e| {
        exit_usage(
            &ArgError::BadValue {
                flag: "WARPED_JOBS".to_owned(),
                value: e,
                expected: "a positive integer",
            },
            "(set WARPED_JOBS to a positive integer or unset it)",
        )
    })
}

/// Prints a fixed-width table: a label column plus numeric columns.
///
/// When the `WARPED_BENCH_JSON` environment variable names a directory,
/// the same table is also written there as
/// `<slugified-title>.json` for machine consumption (plotting scripts,
/// regression tracking).
pub fn print_table(title: &str, headers: &[&str], rows: &[(String, Vec<f64>)]) {
    println!("\n== {title} ==");
    print!("{:<22}", "");
    for h in headers {
        print!("{h:>14}");
    }
    println!();
    for (label, values) in rows {
        print!("{label:<22}");
        for v in values {
            print!("{v:>14.4}");
        }
        println!();
    }
    if let Ok(dir) = std::env::var("WARPED_BENCH_JSON") {
        if let Err(e) = write_json(&dir, title, headers, rows) {
            eprintln!("warning: could not write JSON table: {e}");
        }
    }
}

/// Serialises one table as JSON into `dir/<slug>.json`.
///
/// The format is deliberately simple:
/// `{"title": ..., "headers": [...], "rows": [{"label": ..., "values": [...]}]}`.
///
/// The write is atomic: the table lands in `<slug>.json.tmp` first and
/// is renamed into place, so a crash mid-write never leaves a truncated
/// `<slug>.json` behind.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or writing the
/// file.
pub fn write_json(
    dir: impl AsRef<std::path::Path>,
    title: &str,
    headers: &[&str],
    rows: &[(String, Vec<f64>)],
) -> std::io::Result<()> {
    use std::fmt::Write as _;

    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }

    fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_owned()
        }
    }

    let slug: String = title
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect::<String>()
        .split('_')
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("_");

    let mut out = String::new();
    let _ = write!(out, "{{\"title\":\"{}\",\"headers\":[", escape(title));
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(h));
    }
    out.push_str("],\"rows\":[");
    for (i, (label, values)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"label\":\"{}\",\"values\":[", escape(label));
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&num(*v));
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");

    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{slug}.json.tmp"));
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, dir.join(format!("{slug}.json")))
}

/// A cached grid of runs over the 18 benchmarks and the requested
/// techniques, keyed by `(benchmark, technique)`.
pub struct RunGrid {
    experiment: Experiment,
    runs: BTreeMap<(Benchmark, Technique), TechniqueRun>,
}

impl RunGrid {
    /// Runs `techniques` on every benchmark at the given scale, fanning
    /// the grid across the worker pool (`WARPED_JOBS` workers, default
    /// all cores).
    #[must_use]
    pub fn collect(scale: f64, techniques: &[Technique]) -> Self {
        Self::collect_with(Experiment::paper_defaults().with_scale(scale), techniques)
    }

    /// [`RunGrid::collect`] for a custom experiment configuration
    /// (non-default gating parameters or architectures).
    #[must_use]
    pub fn collect_with(experiment: Experiment, techniques: &[Technique]) -> Self {
        let jobs = runner::grid_of(&Benchmark::ALL, techniques);
        let workers = workers_or_exit();
        eprintln!(
            "running {} jobs ({} benchmarks x {} techniques) on {workers} workers",
            jobs.len(),
            Benchmark::ALL.len(),
            techniques.len(),
        );
        let results = runner::run_grid_with(&experiment, &jobs, workers);
        let mut runs = BTreeMap::new();
        let keys = Benchmark::ALL
            .iter()
            .flat_map(|b| techniques.iter().map(move |t| (*b, *t)));
        for ((b, t), run) in keys.zip(results) {
            assert!(!run.timed_out, "{b}/{t} timed out");
            runs.insert((b, t), run);
        }
        RunGrid { experiment, runs }
    }

    /// The experiment configuration behind this grid.
    #[must_use]
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }

    /// The cached run for one benchmark × technique pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of the collected grid.
    #[must_use]
    pub fn get(&self, b: Benchmark, t: Technique) -> &TechniqueRun {
        self.runs
            .get(&(b, t))
            .unwrap_or_else(|| panic!("run {b}/{t} not collected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_isa::UnitType;

    #[test]
    fn grid_collects_requested_pairs() {
        let grid = RunGrid::collect(0.05, &[Technique::Baseline, Technique::ConvPg]);
        for b in Benchmark::ALL {
            assert!(grid.get(b, Technique::Baseline).cycles > 0);
            assert!(grid.get(b, Technique::ConvPg).cycles > 0);
        }
    }

    #[test]
    #[should_panic(expected = "not collected")]
    fn missing_pair_panics() {
        let grid = RunGrid::collect(0.05, &[Technique::Baseline]);
        let _ = grid.get(Benchmark::Nw, Technique::WarpedGates);
    }

    #[test]
    fn write_json_produces_parseable_output() {
        let dir = std::env::temp_dir().join("warped_bench_json_test");
        let rows = vec![
            ("hotspot".to_owned(), vec![1.0, 0.5]),
            ("quote\"d".to_owned(), vec![f64::NAN]),
        ];
        write_json(dir.to_str().unwrap(), "A \"Title\"", &["x", "y"], &rows).unwrap();
        let path = dir.join("a_title.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"label\":\"hotspot\""));
        assert!(text.contains("null"), "NaN becomes null");
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_scale_args_defaults_and_parses() {
        assert_eq!(parse_scale_args(&[]), Ok(1.0));
        let args = vec!["--scale".to_owned(), "0.25".to_owned()];
        assert_eq!(parse_scale_args(&args), Ok(0.25));
    }

    #[test]
    fn parse_scale_args_rejects_bad_input_without_panicking() {
        let missing = parse_scale_args(&["--scale".to_owned()]);
        assert_eq!(missing, Err(ArgError::MissingValue("--scale".to_owned())));

        let garbage = parse_scale_args(&["--scale".to_owned(), "fast".to_owned()]);
        assert!(matches!(garbage, Err(ArgError::BadValue { .. })));

        let out_of_range = parse_scale_args(&["--scale".to_owned(), "1.5".to_owned()]);
        assert!(matches!(out_of_range, Err(ArgError::BadValue { .. })));

        let unknown = parse_scale_args(&["--speed".to_owned()]);
        assert_eq!(unknown, Err(ArgError::Unknown("--speed".to_owned())));
    }

    #[test]
    fn arg_errors_render_for_humans() {
        let e = ArgError::BadValue {
            flag: "--scale".to_owned(),
            value: "two".to_owned(),
            expected: "a number in (0,1]",
        };
        let msg = e.to_string();
        assert!(msg.contains("--scale") && msg.contains("two") && msg.contains("(0,1]"));
    }

    #[test]
    fn write_json_leaves_no_temp_file_behind() {
        let dir = std::env::temp_dir().join("warped_bench_atomic_test");
        let rows = vec![("row".to_owned(), vec![1.0])];
        write_json(&dir, "Atomic Check", &["x"], &rows).unwrap();
        assert!(dir.join("atomic_check.json").exists());
        assert!(!dir.join("atomic_check.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_runs_have_sensible_stats() {
        let grid = RunGrid::collect(0.05, &[Technique::Baseline]);
        let run = grid.get(Benchmark::Hotspot, Technique::Baseline);
        assert!(run.stats.issued(UnitType::Int) > 0);
        assert!(run.stats.issued(UnitType::Fp) > 0);
    }
}
