//! The fault-tolerant sweep engine behind the `sweep` binary.
//!
//! A sweep runs the full benchmark × technique grid through the
//! fallible runner ([`warped_gates::runner::run_grid_fallible_with`])
//! and survives three kinds of trouble:
//!
//! * **a panicking cell** — isolated on its worker; every other cell
//!   completes bit-identically and the failure lands in a manifest;
//! * **a hung cell** — cut off by the per-job wall-clock watchdog and
//!   reported as timed out;
//! * **an interrupted process** — every completed cell was already
//!   journaled to `sweep_journal.jsonl`, so `resume: true` re-runs only
//!   the missing cells and merges to a bit-identical `bench_grid.json`.
//!
//! Degraded cells are deliberately *not* journaled: on resume they run
//! again, so a transient failure heals itself.

use crate::journal::{self, JournalEntry};
use crate::write_json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use warped_gates::runner::{self, GridJob, RunOutcome};
use warped_gates::{CoreClock, Experiment};
use warped_trace::TraceWorkload;

/// Everything a sweep needs to know, CLI-independent.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workload scale factor in `(0, 1]`.
    pub scale: f64,
    /// Worker-pool size (must be at least 1).
    pub workers: usize,
    /// Arm the gating invariant sanitizer inside every run.
    pub sanitize: bool,
    /// Reuse journaled cells instead of starting from scratch.
    pub resume: bool,
    /// SM clock backend. All backends produce bit-identical grids (the
    /// equivalence suite pins this down), so resuming a journal written
    /// under a different backend is sound; only wall time differs,
    /// which is why `bench_wall.json` totals are keyed per backend.
    pub core: CoreClock,
    /// Directory for `bench_grid.json`, the journal, and the failure
    /// manifest.
    pub out_dir: PathBuf,
    /// Per-job wall-clock watchdog.
    pub job_timeout: Option<std::time::Duration>,
    /// Grid indices to poison so they panic mid-run (fault-injection
    /// hook for the chaos tests and `verify.sh`'s chaos smoke).
    pub chaos: Vec<usize>,
    /// Suppress per-cell progress lines on stderr.
    pub quiet: bool,
    /// Replay this grid cell with telemetry armed after the sweep and
    /// write its Perfetto trace into the output directory.
    pub trace_cell: Option<usize>,
    /// Run every cell through the cycle-accurate L1/L2 + MSHR memory
    /// hierarchy instead of the legacy latency model. Hierarchical rows
    /// are a *different* grid (different fingerprints, different cycle
    /// counts), so point `out_dir` somewhere other than the committed
    /// default-model results.
    pub mem_hierarchy: Option<warped_sim::HierarchyConfig>,
    /// A directory of captured `*.wgt1` workload traces to run (each
    /// crossed with every technique) after the synthetic grid, written
    /// to `bench_trace_grid.json`. Trace cells are stateless: no
    /// journal, no resume — the corpus is small and each cell replays
    /// in milliseconds.
    pub trace_dir: Option<PathBuf>,
}

impl SweepConfig {
    /// A sweep over `out_dir` with everything else at its default:
    /// full scale, the given worker count, sanitizer off, no resume,
    /// no watchdog, no chaos.
    #[must_use]
    pub fn new(out_dir: impl Into<PathBuf>, workers: usize) -> Self {
        SweepConfig {
            scale: 1.0,
            workers,
            sanitize: false,
            resume: false,
            core: CoreClock::default(),
            out_dir: out_dir.into(),
            job_timeout: None,
            chaos: Vec::new(),
            quiet: false,
            trace_cell: None,
            mem_hierarchy: None,
            trace_dir: None,
        }
    }
}

/// One grid cell that did not produce a clean result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The cell's index in the full grid.
    pub index: usize,
    /// `"{benchmark}/{technique}"`.
    pub label: String,
    /// What went wrong, as reported by
    /// [`RunOutcome::degradation`].
    pub reason: String,
}

/// What a sweep accomplished.
#[derive(Debug)]
pub struct SweepSummary {
    /// Total cells in the grid.
    pub total: usize,
    /// Cells reused from the journal (resume).
    pub reused: usize,
    /// Cells actually executed this run.
    pub ran: usize,
    /// Cells that panicked or timed out this run.
    pub failures: Vec<CellFailure>,
}

impl SweepSummary {
    /// True when every cell of the grid completed cleanly.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The row label every sweep artifact keys on.
#[must_use]
pub fn cell_label(job: &GridJob) -> String {
    format!("{}/{}", job.0.name, job.1.name())
}

/// The journal path inside an output directory.
#[must_use]
pub fn journal_path(out_dir: &Path) -> PathBuf {
    out_dir.join("sweep_journal.jsonl")
}

/// The failure-manifest path inside an output directory.
#[must_use]
pub fn manifest_path(out_dir: &Path) -> PathBuf {
    out_dir.join("sweep_failures.json")
}

/// The wall-clock report path inside an output directory.
#[must_use]
pub fn wall_path(out_dir: &Path) -> PathBuf {
    out_dir.join("bench_wall.json")
}

/// Reads the `TOTAL/<core>` aggregate rows back out of an existing
/// `bench_wall.json`, so a sweep under one clock backend preserves the
/// totals measured under the others. Missing or malformed files read
/// as empty — wall numbers are diagnostics, never inputs.
fn read_wall_totals(path: &Path) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut rest = text.as_str();
    while let Some(p) = rest.find("{\"label\":\"") {
        rest = &rest[p + 10..];
        let Some(q) = rest.find('"') else { break };
        let label = rest[..q].to_owned();
        rest = &rest[q..];
        let Some(v) = rest.find("\"values\":[") else {
            break;
        };
        rest = &rest[v + 10..];
        let end = rest.find([',', ']']).unwrap_or(rest.len());
        if label.starts_with("TOTAL/") {
            if let Ok(secs) = rest[..end].parse::<f64>() {
                out.push((label, secs));
            }
        }
    }
    out
}

/// Runs the full 18 × 6 grid under `config`.
///
/// # Errors
///
/// Returns an I/O error if the journal or output files cannot be
/// written. Cell-level trouble is *not* an error — it lands in the
/// summary's `failures`.
///
/// # Panics
///
/// Panics if a chaos index is outside the grid.
pub fn run(config: &SweepConfig) -> std::io::Result<SweepSummary> {
    run_on(config, runner::full_grid())
}

/// [`run`] on an explicit job list (the tests use tiny grids).
///
/// # Errors
///
/// Returns an I/O error if the journal or output files cannot be
/// written.
///
/// # Panics
///
/// Panics if a chaos index is outside the grid or `workers` is zero.
pub fn run_on(config: &SweepConfig, mut jobs: Vec<GridJob>) -> std::io::Result<SweepSummary> {
    let labels: Vec<String> = jobs.iter().map(cell_label).collect();
    let total = jobs.len();
    for &i in &config.chaos {
        assert!(i < total, "chaos index {i} outside the {total}-cell grid");
        // An out-of-range hit rate fails MemoryConfig validation inside
        // the run, so the injected panic travels the real code path.
        jobs[i].0.l1_hit_rate = 2.0;
    }

    std::fs::create_dir_all(&config.out_dir)?;
    let journal_file = journal_path(&config.out_dir);
    let mut done: BTreeMap<usize, JournalEntry> = BTreeMap::new();
    if config.resume {
        for entry in journal::load(&journal_file)? {
            // Ignore entries from a different grid shape or labeling.
            if labels.get(entry.index) == Some(&entry.label) {
                done.insert(entry.index, entry);
            }
        }
    } else {
        match std::fs::remove_file(&journal_file) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }

    let pending: Vec<usize> = (0..total).filter(|i| !done.contains_key(i)).collect();
    let pending_jobs: Vec<GridJob> = pending.iter().map(|&i| jobs[i].clone()).collect();
    if !config.quiet {
        eprintln!(
            "sweep: {total} cells, {} journaled, {} to run on {} workers",
            done.len(),
            pending.len(),
            config.workers
        );
    }

    let experiment = Experiment::paper_defaults()
        .with_scale(config.scale)
        .with_sanitize(config.sanitize)
        .with_job_timeout(config.job_timeout)
        .with_core(config.core)
        .with_memory_hierarchy(config.mem_hierarchy.clone());

    let sink = Mutex::new(
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_file)?,
    );
    let outcomes = runner::run_grid_fallible_with(
        &experiment,
        &pending_jobs,
        config.workers,
        |local, outcome| {
            let global = pending[local];
            // Only clean cells are durable; degraded ones re-run on
            // resume.
            if let RunOutcome::Ok(timed) = outcome {
                let entry = JournalEntry {
                    index: global,
                    label: labels[global].clone(),
                    cycles: timed.run.cycles,
                    ff_cycles: timed.run.stats.fast_forwarded_cycles,
                };
                let mut file = sink.lock().expect("journal writer poisoned");
                if let Err(e) = entry.append(&mut file) {
                    eprintln!("warning: could not journal cell {global}: {e}");
                }
            }
            if !config.quiet {
                match outcome {
                    RunOutcome::Ok(t) => eprintln!(
                        "  {:<38} {:>12} cycles  {:>9.3}s",
                        labels[global],
                        t.run.cycles,
                        t.elapsed.as_secs_f64()
                    ),
                    degraded => eprintln!(
                        "  {:<38} FAILED: {}",
                        labels[global],
                        degraded.degradation().unwrap_or_default()
                    ),
                }
            }
        },
    );

    let mut failures = Vec::new();
    let mut wall: BTreeMap<usize, f64> = BTreeMap::new();
    for (local, outcome) in outcomes.into_iter().enumerate() {
        let global = pending[local];
        match outcome {
            RunOutcome::Ok(timed) => {
                wall.insert(global, timed.elapsed.as_secs_f64());
                done.insert(
                    global,
                    JournalEntry {
                        index: global,
                        label: labels[global].clone(),
                        cycles: timed.run.cycles,
                        ff_cycles: timed.run.stats.fast_forwarded_cycles,
                    },
                );
            }
            degraded => failures.push(CellFailure {
                index: global,
                label: labels[global].clone(),
                reason: degraded.degradation().unwrap_or_default(),
            }),
        }
    }

    // The merged grid: journal-reused and freshly-run cells in global
    // index order, so a resumed sweep is bit-identical to an
    // uninterrupted one. Failed cells have no row.
    let rows: Vec<(String, Vec<f64>)> = done
        .values()
        .map(|e| (e.label.clone(), vec![e.cycles as f64, e.ff_cycles as f64]))
        .collect();
    write_json(
        &config.out_dir,
        "bench grid",
        &["cycles", "ff_cycles"],
        &rows,
    )?;

    // Wall-clock sidecar (diagnostic, never journaled): one row of
    // wall seconds per cell executed this invocation, plus a
    // `TOTAL/<core>` aggregate per clock backend. A backend's TOTAL is
    // only (re)written by a clean, complete, from-scratch sweep — a
    // resumed or failing run would under-count — while totals measured
    // under the *other* backends are carried over verbatim, so one
    // artifact accumulates the before/after comparison.
    let mut wall_rows: Vec<(String, Vec<f64>)> = wall
        .iter()
        .map(|(&i, &secs)| (labels[i].clone(), vec![secs]))
        .collect();
    let mut totals: BTreeMap<String, f64> = read_wall_totals(&wall_path(&config.out_dir))
        .into_iter()
        .collect();
    if failures.is_empty() && pending.len() == total {
        totals.insert(format!("TOTAL/{}", config.core.name()), wall.values().sum());
    }
    wall_rows.extend(totals.into_iter().map(|(label, secs)| (label, vec![secs])));
    write_json(&config.out_dir, "bench wall", &["seconds"], &wall_rows)?;

    let manifest = manifest_path(&config.out_dir);
    if failures.is_empty() {
        match std::fs::remove_file(&manifest) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    } else {
        write_manifest(&manifest, &failures)?;
    }

    Ok(SweepSummary {
        total,
        reused: total - pending.len(),
        ran: pending.len(),
        failures,
    })
}

/// The trace-grid artifact path inside an output directory.
#[must_use]
pub fn trace_grid_path(out_dir: &Path) -> PathBuf {
    out_dir.join("bench_trace_grid.json")
}

/// Loads every `*.wgt1` file under `dir`, sorted by file name so the
/// resulting grid order is stable across filesystems.
///
/// # Errors
///
/// Returns an I/O error if the directory is unreadable or any trace
/// fails to parse (the parse diagnostic, with its file name, becomes
/// the error message) — a corrupt corpus should fail the sweep loudly,
/// not silently shrink the grid.
pub fn load_trace_dir(dir: &Path) -> std::io::Result<Vec<std::sync::Arc<TraceWorkload>>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wgt1"))
        .collect();
    paths.sort();
    let mut traces = Vec::with_capacity(paths.len());
    for path in paths {
        let file = std::fs::File::open(&path)?;
        let workload = warped_trace::parse_reader(std::io::BufReader::new(file))
            .map_err(|e| std::io::Error::other(format!("{}: {e}", path.display())))?;
        traces.push(std::sync::Arc::new(workload));
    }
    Ok(traces)
}

/// Runs a trace corpus — every loaded trace crossed with every
/// technique — under the sweep's experiment settings and writes the
/// rows to `bench_trace_grid.json` (labels `trace:<name>/<technique>`,
/// values `[cycles, ff_cycles]`). Returns the number of cells run.
///
/// # Errors
///
/// Returns an I/O error if the corpus or the output file cannot be
/// read/written.
///
/// # Panics
///
/// Panics if a trace cell itself panics — trace cells skip the
/// fault-tolerant runner (no journal to protect; the corpus gate wants
/// loud failures).
pub fn run_traces(config: &SweepConfig, dir: &Path) -> std::io::Result<usize> {
    let traces = load_trace_dir(dir)?;
    let experiment = Experiment::paper_defaults()
        .with_scale(config.scale)
        .with_sanitize(config.sanitize)
        .with_job_timeout(config.job_timeout)
        .with_core(config.core)
        .with_memory_hierarchy(config.mem_hierarchy.clone());
    let jobs = runner::trace_grid_of(&traces, &warped_gates::Technique::ALL);
    let runs = runner::run_trace_grid_with(&experiment, &jobs, config.workers);
    let rows: Vec<(String, Vec<f64>)> = jobs
        .iter()
        .zip(&runs)
        .map(|((trace, technique), run)| {
            (
                format!("trace:{}/{}", trace.name, technique.name()),
                vec![run.cycles as f64, run.stats.fast_forwarded_cycles as f64],
            )
        })
        .collect();
    if !config.quiet {
        for ((_, _), row) in jobs.iter().zip(&rows) {
            eprintln!("  {:<38} {:>12} cycles", row.0, row.1[0]);
        }
    }
    std::fs::create_dir_all(&config.out_dir)?;
    write_json(
        &config.out_dir,
        "bench trace grid",
        &["cycles", "ff_cycles"],
        &rows,
    )?;
    Ok(rows.len())
}

/// The Perfetto trace path [`trace_cell`] writes for a grid index.
#[must_use]
pub fn trace_path(out_dir: &Path, index: usize) -> PathBuf {
    out_dir.join(format!("trace_cell_{index}.perfetto.json"))
}

/// Replays one grid cell with telemetry armed and writes its Perfetto
/// trace into the output directory (see [`trace_path`]), returning the
/// path.
///
/// The replay runs the cell exactly as the sweep did (same scale,
/// sanitizer, and watchdog settings) — recording is observe-only, so
/// the traced run's cycle count matches the journaled one — and drains
/// the recorder through the bounded-chunk path the service layer
/// streams over HTTP.
///
/// # Errors
///
/// Returns an I/O error if the trace cannot be written.
///
/// # Panics
///
/// Panics if `index` is outside the 108-cell grid or the replayed cell
/// itself panics (no worker isolation here: a trace of a crashing cell
/// should crash loudly).
pub fn trace_cell(config: &SweepConfig, index: usize) -> std::io::Result<PathBuf> {
    let jobs = runner::full_grid();
    assert!(
        index < jobs.len(),
        "trace cell {index} outside the {}-cell grid",
        jobs.len()
    );
    let (spec, technique) = &jobs[index];
    let label = cell_label(&jobs[index]);
    let recorder = warped_telemetry::Recorder::new(warped_telemetry::RecorderConfig {
        capacity: 1 << 20,
        epoch_len: 1000,
    });
    let experiment = Experiment::paper_defaults()
        .with_scale(config.scale)
        .with_sanitize(config.sanitize)
        .with_job_timeout(config.job_timeout)
        .with_core(config.core)
        .with_memory_hierarchy(config.mem_hierarchy.clone())
        .with_telemetry(Some(recorder.clone()));
    let run = experiment.run(spec, *technique);

    // Bounded-chunk drain, then take() for the epoch/baseline metadata.
    let mut events = Vec::new();
    for chunk in recorder.drain_chunks(64 * 1024) {
        events.extend(chunk);
    }
    let mut log = recorder.take();
    log.events = events;
    let title = format!("{label} @ scale {}", config.scale);
    let trace = warped_telemetry::perfetto::render(&log, experiment.layout(), &title);

    std::fs::create_dir_all(&config.out_dir)?;
    let path = trace_path(&config.out_dir, index);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, trace)?;
    std::fs::rename(&tmp, &path)?;
    if !config.quiet {
        eprintln!(
            "sweep: traced cell {index} ({label}), {} cycles, {} events",
            run.cycles,
            log.events.len()
        );
    }
    Ok(path)
}

/// Writes the failure manifest atomically (temp file + rename).
fn write_manifest(path: &Path, failures: &[CellFailure]) -> std::io::Result<()> {
    fn escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }

    let mut out = String::from("{\"failures\":[");
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"index\":{},\"label\":\"{}\",\"reason\":\"{}\"}}",
            f.index,
            escape(&f.label),
            escape(&f.reason)
        ));
    }
    out.push_str("]}\n");
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warped_gates::Technique;
    use warped_workloads::Benchmark;

    fn tiny_config(dir: &str) -> SweepConfig {
        let out = std::env::temp_dir().join(dir);
        std::fs::remove_dir_all(&out).ok();
        SweepConfig {
            scale: 0.05,
            quiet: true,
            ..SweepConfig::new(out, 2)
        }
    }

    fn tiny_grid() -> Vec<GridJob> {
        runner::grid_of(
            &[Benchmark::Hotspot, Benchmark::Srad],
            &[Technique::Baseline, Technique::WarpedGates],
        )
    }

    #[test]
    fn clean_sweep_journals_every_cell_and_writes_the_grid() {
        let config = tiny_config("warped_sweep_clean_test");
        let summary = run_on(&config, tiny_grid()).unwrap();
        assert!(summary.ok());
        assert_eq!((summary.total, summary.reused, summary.ran), (4, 0, 4));
        let entries = journal::load(&journal_path(&config.out_dir)).unwrap();
        assert_eq!(entries.len(), 4);
        assert!(config.out_dir.join("bench_grid.json").exists());
        assert!(!manifest_path(&config.out_dir).exists());
        std::fs::remove_dir_all(&config.out_dir).ok();
    }

    #[test]
    fn wall_file_accumulates_totals_per_core() {
        let config = tiny_config("warped_sweep_wall_test");
        assert!(run_on(&config, tiny_grid()).unwrap().ok());
        let text = std::fs::read_to_string(wall_path(&config.out_dir)).unwrap();
        assert!(text.contains("hotspot/Baseline"), "per-cell row: {text}");
        assert!(text.contains("TOTAL/event-queue"), "aggregate row: {text}");

        // Re-sweeping under another backend adds its TOTAL without
        // clobbering the event-queue one.
        let mut ff = config.clone();
        ff.core = CoreClock::FastForward;
        assert!(run_on(&ff, tiny_grid()).unwrap().ok());
        let text = std::fs::read_to_string(wall_path(&config.out_dir)).unwrap();
        assert!(text.contains("TOTAL/event-queue"), "preserved: {text}");
        assert!(text.contains("TOTAL/fast-forward"), "added: {text}");

        // A resumed (partial) sweep must not rewrite a full-sweep
        // total from a subset of cells.
        let jpath = journal_path(&config.out_dir);
        let kept: Vec<String> = std::fs::read_to_string(&jpath)
            .unwrap()
            .lines()
            .take(3)
            .map(str::to_owned)
            .collect();
        std::fs::write(&jpath, format!("{}\n", kept.join("\n"))).unwrap();
        let before = read_wall_totals(&wall_path(&config.out_dir));
        let mut resumed = ff.clone();
        resumed.resume = true;
        assert!(run_on(&resumed, tiny_grid()).unwrap().ok());
        assert_eq!(
            read_wall_totals(&wall_path(&config.out_dir)),
            before,
            "partial sweeps leave totals alone"
        );
        std::fs::remove_dir_all(&config.out_dir).ok();
    }

    #[test]
    fn hierarchical_sweep_completes_and_diverges_from_the_default_grid() {
        let config = tiny_config("warped_sweep_hier_test");
        assert!(run_on(&config, tiny_grid()).unwrap().ok());
        let legacy = std::fs::read_to_string(config.out_dir.join("bench_grid.json")).unwrap();

        let mut hier = tiny_config("warped_sweep_hier_test_armed");
        hier.sanitize = true; // conservation invariants checked in-run
        hier.mem_hierarchy = Some(warped_sim::HierarchyConfig::default());
        assert!(run_on(&hier, tiny_grid()).unwrap().ok());
        let armed = std::fs::read_to_string(hier.out_dir.join("bench_grid.json")).unwrap();

        assert_ne!(
            legacy, armed,
            "real cache state must reshape at least one cell's cycle count"
        );
        std::fs::remove_dir_all(&config.out_dir).ok();
        std::fs::remove_dir_all(&hier.out_dir).ok();
    }

    #[test]
    fn chaos_cell_fails_alone_and_lands_in_the_manifest() {
        let mut config = tiny_config("warped_sweep_chaos_test");
        config.chaos = vec![1];
        let summary = run_on(&config, tiny_grid()).unwrap();
        assert!(!summary.ok());
        assert_eq!(summary.failures.len(), 1);
        assert_eq!(summary.failures[0].index, 1);
        assert!(
            summary.failures[0].reason.contains("l1_hit_rate"),
            "reason: {}",
            summary.failures[0].reason
        );
        let manifest = std::fs::read_to_string(manifest_path(&config.out_dir)).unwrap();
        assert!(manifest.contains("l1_hit_rate"));
        // The other three cells completed and were journaled.
        assert_eq!(
            journal::load(&journal_path(&config.out_dir)).unwrap().len(),
            3
        );
        std::fs::remove_dir_all(&config.out_dir).ok();
    }

    #[test]
    fn resume_reuses_the_journal_and_merges_bit_identically() {
        let config = tiny_config("warped_sweep_resume_test");
        let jobs = tiny_grid();
        let clean = run_on(&config, jobs.clone()).unwrap();
        assert!(clean.ok());
        let reference = std::fs::read(config.out_dir.join("bench_grid.json")).unwrap();

        // Forge an interruption: drop the last two journal lines.
        let jpath = journal_path(&config.out_dir);
        let text = std::fs::read_to_string(&jpath).unwrap();
        let kept: Vec<&str> = text.lines().take(2).collect();
        std::fs::write(&jpath, format!("{}\n", kept.join("\n"))).unwrap();

        let mut resumed_config = config.clone();
        resumed_config.resume = true;
        let resumed = run_on(&resumed_config, jobs).unwrap();
        assert!(resumed.ok());
        assert_eq!((resumed.reused, resumed.ran), (2, 2));
        let merged = std::fs::read(config.out_dir.join("bench_grid.json")).unwrap();
        assert_eq!(merged, reference, "resume must be bit-identical");
        std::fs::remove_dir_all(&config.out_dir).ok();
    }

    #[test]
    fn run_traces_writes_the_trace_grid() {
        let config = tiny_config("warped_sweep_trace_dir_test");
        let corpus = config.out_dir.join("corpus");
        std::fs::create_dir_all(&corpus).unwrap();
        // Capture a pre-scaled benchmark so the corpus cells replay in
        // milliseconds at the sweep's own scale 1.0... the tiny_config
        // scale (0.05) would re-scale trace trips differently from the
        // spec path, so pin scale 1.0 here and shrink via the capture.
        let spec = Benchmark::Nw.spec().scaled(0.05);
        let kernel = spec.kernel();
        let text = warped_trace::capture(&warped_trace::CaptureSpec {
            name: spec.name,
            kernel: &kernel,
            total_warps: spec.total_warps,
            block_warps: spec.block_warps,
            stagger: spec.body_len as u32,
            waves: spec.launches,
            l1_hit_rate: spec.l1_hit_rate,
            mem_seed: spec.seed ^ 0xdead_beef,
        });
        std::fs::write(corpus.join("nw.wgt1"), &text).unwrap();
        std::fs::write(corpus.join("ignored.txt"), "not a trace").unwrap();

        let mut config = config;
        config.scale = 1.0;
        let cells = run_traces(&config, &corpus).unwrap();
        assert_eq!(cells, 6, "one trace x six techniques");
        let grid = std::fs::read_to_string(trace_grid_path(&config.out_dir)).unwrap();
        assert!(grid.contains("trace:nw/Baseline"), "{grid}");
        assert!(grid.contains("trace:nw/Warped Gates"), "{grid}");

        // A corrupt trace fails the whole corpus loudly.
        std::fs::write(corpus.join("bad.wgt1"), "WGTX nope\n").unwrap();
        let err = run_traces(&config, &corpus).unwrap_err();
        assert!(err.to_string().contains("bad.wgt1"), "{err}");
        std::fs::remove_dir_all(&config.out_dir).ok();
    }

    #[test]
    fn trace_cell_writes_a_perfetto_trace() {
        let config = tiny_config("warped_sweep_trace_cell_test");
        let path = trace_cell(&config, 0).unwrap();
        assert_eq!(path, trace_path(&config.out_dir, 0));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(
            text.contains("backprop/Baseline @ scale 0.05"),
            "cell 0 is backprop/Baseline"
        );
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_dir_all(&config.out_dir).ok();
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn trace_cell_index_must_be_in_the_grid() {
        let config = tiny_config("warped_sweep_trace_oob_test");
        let _ = trace_cell(&config, 108);
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn chaos_index_must_be_in_the_grid() {
        let mut config = tiny_config("warped_sweep_chaos_oob_test");
        config.chaos = vec![99];
        let _ = run_on(&config, tiny_grid());
    }
}
