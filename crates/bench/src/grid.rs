//! Reading `write_json` tables (notably `bench_grid.json`) back in.
//!
//! [`write_json`](crate::write_json) is the single serializer every
//! sweep and figure artifact goes through; [`GridTable::parse`] is its
//! inverse. Consumers — the `warped-serve` `/grid` endpoint, the
//! verification scripts, future plotting tools — load the committed
//! `results/bench_grid.json` and query cells by the same
//! `"{benchmark}/{technique}"` row labels the sweep engine writes, so
//! a freshly simulated cell can be diffed against the checked-in grid
//! without a Python round trip.
//!
//! The parser is a small recursive-descent scanner over exactly the
//! shape `write_json` emits (`title`/`headers`/`rows`, each row a
//! `label` plus numeric `values`, `null` for non-finite numbers). It
//! tolerates arbitrary inter-token whitespace but rejects unknown
//! keys, so drift between writer and reader fails loudly.

use std::io;
use std::path::Path;

/// One row of a table: the label plus one value per header column.
/// A JSON `null` (how [`write_json`](crate::write_json) spells a
/// non-finite number) loads as [`f64::NAN`].
#[derive(Debug, Clone, PartialEq)]
pub struct GridRow {
    /// The row label, e.g. `"nw/Baseline"`.
    pub label: String,
    /// The numeric columns, in header order.
    pub values: Vec<f64>,
}

/// An in-memory `write_json` table.
#[derive(Debug, Clone, PartialEq)]
pub struct GridTable {
    /// The table title, e.g. `"bench grid"`.
    pub title: String,
    /// Column names, e.g. `["cycles", "ff_cycles"]`.
    pub headers: Vec<String>,
    /// The rows, in file order.
    pub rows: Vec<GridRow>,
}

/// Why a table failed to load.
#[derive(Debug)]
pub enum GridError {
    /// The file could not be read.
    Io(io::Error),
    /// The bytes are not a `write_json` table.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What the parser expected there.
        message: String,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::Io(e) => write!(f, "cannot read grid: {e}"),
            GridError::Parse { offset, message } => {
                write!(f, "malformed grid at byte {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for GridError {}

impl From<io::Error> for GridError {
    fn from(e: io::Error) -> Self {
        GridError::Io(e)
    }
}

impl GridTable {
    /// Loads and parses a table from disk.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::Io`] if the file cannot be read and
    /// [`GridError::Parse`] if it is not a `write_json` table.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, GridError> {
        GridTable::parse(&std::fs::read_to_string(path)?)
    }

    /// Parses a table from its JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::Parse`] (with a byte offset) on any
    /// structural mismatch.
    pub fn parse(text: &str) -> Result<Self, GridError> {
        let mut p = Parser {
            b: text.as_bytes(),
            pos: 0,
        };
        p.token("{")?;
        p.key("title")?;
        let title = p.string()?;
        p.token(",")?;
        p.key("headers")?;
        let headers = p.string_array()?;
        p.token(",")?;
        p.key("rows")?;
        p.token("[")?;
        let mut rows = Vec::new();
        if !p.try_token("]") {
            loop {
                p.token("{")?;
                p.key("label")?;
                let label = p.string()?;
                p.token(",")?;
                p.key("values")?;
                let values = p.number_array()?;
                p.token("}")?;
                rows.push(GridRow { label, values });
                if !p.try_token(",") {
                    break;
                }
            }
            p.token("]")?;
        }
        p.token("}")?;
        p.ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing bytes after the table"));
        }
        Ok(GridTable {
            title,
            headers,
            rows,
        })
    }

    /// The row with the given label, if present.
    #[must_use]
    pub fn row(&self, label: &str) -> Option<&GridRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// One cell, addressed by row label and column header.
    #[must_use]
    pub fn value(&self, label: &str, header: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.row(label)?.values.get(col).copied()
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> GridError {
        GridError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    /// Consumes a literal token (after whitespace) or errors.
    fn token(&mut self, t: &str) -> Result<(), GridError> {
        if self.try_token(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{t}'")))
        }
    }

    /// Consumes a literal token (after whitespace) if present.
    fn try_token(&mut self, t: &str) -> bool {
        self.ws();
        if self.b[self.pos..].starts_with(t.as_bytes()) {
            self.pos += t.len();
            true
        } else {
            false
        }
    }

    /// Consumes `"name":`.
    fn key(&mut self, name: &str) -> Result<(), GridError> {
        let got = self.string()?;
        if got != name {
            return Err(self.err(format!("expected key \"{name}\", found \"{got}\"")));
        }
        self.token(":")
    }

    /// Consumes a JSON string, decoding the escapes `write_json` emits
    /// (`\"`, `\\`, `\uXXXX`) plus the standard short forms.
    fn string(&mut self) -> Result<String, GridError> {
        self.token("\"")?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-borrow the original UTF-8 for multi-byte chars.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.b.len() && (self.b[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.b[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    /// Consumes a JSON number or `null` (→ NaN).
    fn number(&mut self) -> Result<f64, GridError> {
        if self.try_token("null") {
            return Ok(f64::NAN);
        }
        self.ws();
        let start = self.pos;
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| matches!(c, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("expected a number or null"))
    }

    fn string_array(&mut self) -> Result<Vec<String>, GridError> {
        self.array(Parser::string)
    }

    fn number_array(&mut self) -> Result<Vec<f64>, GridError> {
        self.array(Parser::number)
    }

    fn array<T>(
        &mut self,
        mut elem: impl FnMut(&mut Self) -> Result<T, GridError>,
    ) -> Result<Vec<T>, GridError> {
        self.token("[")?;
        let mut out = Vec::new();
        if self.try_token("]") {
            return Ok(out);
        }
        loop {
            out.push(elem(self)?);
            if !self.try_token(",") {
                break;
            }
        }
        self.token("]")?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\"title\":\"bench grid\",\"headers\":[\"cycles\",\"ff_cycles\"],\
         \"rows\":[{\"label\":\"nw/Baseline\",\"values\":[130559,59691]},\
         {\"label\":\"nw/ConvPG\",\"values\":[131072,null]}]}\n";

    #[test]
    fn parses_the_sweep_format() {
        let t = GridTable::parse(SAMPLE).unwrap();
        assert_eq!(t.title, "bench grid");
        assert_eq!(t.headers, vec!["cycles", "ff_cycles"]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.value("nw/Baseline", "cycles"), Some(130559.0));
        assert_eq!(t.value("nw/Baseline", "ff_cycles"), Some(59691.0));
        assert!(t.value("nw/ConvPG", "ff_cycles").unwrap().is_nan());
        assert_eq!(t.value("nw/Baseline", "ipc"), None);
        assert_eq!(t.value("lud/Baseline", "cycles"), None);
    }

    #[test]
    fn round_trips_write_json_output() {
        let dir = std::env::temp_dir().join("warped_grid_roundtrip_test");
        std::fs::remove_dir_all(&dir).ok();
        let rows = vec![
            ("hotspot/GATES".to_owned(), vec![123.0, 4.5]),
            ("quote\"d\\label".to_owned(), vec![f64::NAN, -2e3]),
        ];
        crate::write_json(&dir, "Round Trip", &["a", "b"], &rows).unwrap();
        let t = GridTable::load(dir.join("round_trip.json")).unwrap();
        assert_eq!(t.title, "Round Trip");
        assert_eq!(t.rows[0].values, vec![123.0, 4.5]);
        assert_eq!(t.rows[1].label, "quote\"d\\label");
        assert!(t.rows[1].values[0].is_nan());
        assert_eq!(t.rows[1].values[1], -2000.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loads_the_committed_bench_grid_when_present() {
        let path =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench_grid.json");
        let Ok(t) = GridTable::load(&path) else {
            // Fresh checkouts without regenerated results skip here.
            return;
        };
        assert_eq!(t.title, "bench grid");
        assert_eq!(t.headers, vec!["cycles", "ff_cycles"]);
        assert_eq!(t.rows.len(), 108, "18 benchmarks x 6 techniques");
        assert!(t.value("nw/Baseline", "cycles").unwrap() > 0.0);
    }

    #[test]
    fn rejects_malformed_tables_with_an_offset() {
        for bad in [
            "",
            "{",
            "{\"title\":\"x\"}",
            "{\"headers\":[],\"title\":\"x\",\"rows\":[]}",
            "{\"title\":\"x\",\"headers\":[],\"rows\":[]} extra",
            "{\"title\":\"x\",\"headers\":[],\"rows\":[{\"label\":\"a\",\"values\":[oops]}]}",
        ] {
            match GridTable::parse(bad) {
                Err(GridError::Parse { .. }) => {}
                other => panic!("{bad:?} should fail to parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn parses_unicode_and_escape_heavy_labels() {
        let text = "{ \"title\" : \"t\\u00e9st\" , \"headers\" : [ ] , \
                    \"rows\" : [ { \"label\" : \"a\\nb\" , \"values\" : [ ] } ] }";
        let t = GridTable::parse(text).unwrap();
        assert_eq!(t.title, "t\u{e9}st");
        assert_eq!(t.rows[0].label, "a\nb");
    }
}
