//! A minimal wall-clock benchmark harness for the `benches/` targets.
//!
//! The original Criterion harness needs a registry download, which is
//! unavailable offline; these benches only need "did this hot path get
//! slower", so a warmup + median-of-samples loop over
//! [`std::time::Instant`] is enough and keeps the workspace
//! dependency-free. Each `[[bench]]` target is a plain `fn main()` that
//! calls [`bench`] per case (run them with `cargo bench`).

use std::time::{Duration, Instant};

/// Number of timed samples per case.
const SAMPLES: usize = 15;

/// Minimum wall-clock per sample; iterations scale until a sample takes
/// at least this long, so per-iteration noise stays bounded.
const MIN_SAMPLE: Duration = Duration::from_millis(20);

/// Times `f`, printing `label: <median> per iter (<iters> iters x <samples> samples)`.
///
/// Returns the median per-iteration duration so callers can derive
/// throughput numbers. The result of `f` is consumed with
/// [`std::hint::black_box`] so the optimizer cannot delete the work.
pub fn bench<T>(label: &str, mut f: impl FnMut() -> T) -> Duration {
    // Warm up and calibrate the per-sample iteration count.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        if start.elapsed() >= MIN_SAMPLE {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX)
        })
        .collect();
    per_iter.sort();
    let median = per_iter[SAMPLES / 2];
    println!("{label:<42} {median:>12.2?} per iter ({iters} iters x {SAMPLES} samples)");
    median
}

/// Prints a bench-group heading.
pub fn group(title: &str) {
    println!("\n-- {title} --");
}

/// The `q`-quantile (0.0 ≤ q ≤ 1.0) of a set of latency samples by the
/// nearest-rank method, so p99 of 100 samples is the 99th-smallest
/// sample, not an interpolated value that nobody measured. Returns
/// [`Duration::ZERO`] on an empty set.
#[must_use]
pub fn percentile(samples: &mut [Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    let rank = (q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize;
    samples[rank.saturating_sub(1).min(samples.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_nearest_rank() {
        let mut samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&mut samples, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&mut samples, 0.99), Duration::from_millis(99));
        assert_eq!(percentile(&mut samples, 1.0), Duration::from_millis(100));
        assert_eq!(percentile(&mut samples, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&mut [], 0.5), Duration::ZERO);
        let mut one = [Duration::from_millis(7)];
        assert_eq!(percentile(&mut one, 0.99), Duration::from_millis(7));
    }

    #[test]
    fn bench_returns_a_positive_median() {
        let d = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(d > Duration::ZERO);
    }
}
