//! Benchmark: synthetic kernel generation cost (runs once per
//! experiment; cheap generation keeps parameter sweeps interactive).

use warped_bench::timing::{bench, group};
use warped_workloads::Benchmark;

fn main() {
    group("kernel_generation");
    for b in [Benchmark::Hotspot, Benchmark::Srad, Benchmark::Nw] {
        let spec = b.spec();
        bench(b.name(), || spec.kernel());
    }

    group("full_catalogue_specs");
    bench("all_18_kernels", || {
        Benchmark::ALL
            .iter()
            .map(|b| b.spec().kernel().dynamic_len())
            .sum::<u64>()
    });
}
