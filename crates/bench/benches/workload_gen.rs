//! Criterion benchmark: synthetic kernel generation cost (runs once per
//! experiment; cheap generation keeps parameter sweeps interactive).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use warped_workloads::Benchmark;

fn workload_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_generation");
    for bench in [Benchmark::Hotspot, Benchmark::Srad, Benchmark::Nw] {
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name()),
            &bench,
            |b, bench| {
                let spec = bench.spec();
                b.iter(|| spec.kernel());
            },
        );
    }
    group.finish();
}

fn spec_catalogue(c: &mut Criterion) {
    c.bench_function("full_catalogue_specs", |b| {
        b.iter(|| {
            Benchmark::ALL
                .iter()
                .map(|bench| bench.spec().kernel().dynamic_len())
                .sum::<u64>()
        });
    });
}

criterion_group!(benches, workload_gen, spec_catalogue);
criterion_main!(benches);
