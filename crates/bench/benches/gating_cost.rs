//! Benchmark: per-cycle cost of the gating controllers' `observe` step
//! (runs once per simulated cycle, so it must be cheap).

use warped_bench::timing::{bench, group};
use warped_gates::{AdaptiveIdleDetect, CoordinatedBlackoutPolicy, NaiveBlackoutPolicy};
use warped_gating::{conventional, Controller, GatingParams, StaticIdleDetect};
use warped_sim::{CycleObservation, PowerGating, NUM_DOMAINS};

/// A stimulus with a mix of busy and idle cycles plus occasional demand.
fn stimulus(cycle: u64) -> CycleObservation {
    let mut busy = [false; NUM_DOMAINS];
    busy[(cycle % 6) as usize] = !cycle.is_multiple_of(3);
    let mut demand = [0u32; 4];
    if cycle.is_multiple_of(17) {
        demand[(cycle % 4) as usize] = 1;
    }
    CycleObservation {
        cycle,
        busy,
        blocked_demand: demand,
        active_subset: [(cycle % 9) as u32; 4],
    }
}

fn drive(ctl: &mut dyn PowerGating, cycles: u64) {
    for c in 0..cycles {
        let mut obs = stimulus(c);
        // Keep the stimulus legal: a gated/waking domain is never busy.
        for d in warped_sim::DomainId::ALL {
            if !ctl.is_on(d) {
                obs.busy[d.index()] = false;
            }
        }
        ctl.observe(&obs);
    }
}

fn main() {
    const CYCLES: u64 = 10_000;
    group("controller_observe_10k");
    bench("conventional", || {
        let mut ctl = conventional(GatingParams::default());
        drive(&mut ctl, CYCLES);
        ctl.report()
    });
    bench("naive_blackout", || {
        let mut ctl = Controller::new(
            GatingParams::default(),
            NaiveBlackoutPolicy::new(),
            StaticIdleDetect::new(),
        );
        drive(&mut ctl, CYCLES);
        ctl.report()
    });
    bench("warped_gates", || {
        let mut ctl = Controller::new(
            GatingParams::default(),
            CoordinatedBlackoutPolicy::new(),
            AdaptiveIdleDetect::new(),
        );
        drive(&mut ctl, CYCLES);
        ctl.report()
    });
}
